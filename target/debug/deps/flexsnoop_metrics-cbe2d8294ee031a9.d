/root/repo/target/debug/deps/flexsnoop_metrics-cbe2d8294ee031a9.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/flexsnoop_metrics-cbe2d8294ee031a9: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
