/root/repo/target/debug/deps/calibration-e2d3f85bdd49278f.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-e2d3f85bdd49278f: tests/calibration.rs

tests/calibration.rs:
