/root/repo/target/debug/deps/flexsnoop_net-48c7c25f0a15b97f.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/debug/deps/flexsnoop_net-48c7c25f0a15b97f: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
