/root/repo/target/debug/deps/flexsnoop_directory-ba5c9de1b7d982d7.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs crates/directory/src/sim_tests.rs

/root/repo/target/debug/deps/flexsnoop_directory-ba5c9de1b7d982d7: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs crates/directory/src/sim_tests.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
crates/directory/src/sim_tests.rs:
