/root/repo/target/debug/deps/flexsnoop_engine-4614d6be7a70b206.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_engine-4614d6be7a70b206.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/resource.rs:
crates/engine/src/rng.rs:
crates/engine/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
