/root/repo/target/debug/deps/flexsnoop_repro-be417a9e7939fc7d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_repro-be417a9e7939fc7d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
