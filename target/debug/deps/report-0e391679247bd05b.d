/root/repo/target/debug/deps/report-0e391679247bd05b.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-0e391679247bd05b.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
