/root/repo/target/debug/deps/flexsnoop_repro-279b62cd4e3f6017.d: src/lib.rs

/root/repo/target/debug/deps/flexsnoop_repro-279b62cd4e3f6017: src/lib.rs

src/lib.rs:
