/root/repo/target/debug/deps/fig4_design_space-28dc3189a1373cd5.d: crates/bench/benches/fig4_design_space.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_design_space-28dc3189a1373cd5.rmeta: crates/bench/benches/fig4_design_space.rs Cargo.toml

crates/bench/benches/fig4_design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
