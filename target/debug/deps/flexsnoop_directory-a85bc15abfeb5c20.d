/root/repo/target/debug/deps/flexsnoop_directory-a85bc15abfeb5c20.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/debug/deps/libflexsnoop_directory-a85bc15abfeb5c20.rlib: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/debug/deps/libflexsnoop_directory-a85bc15abfeb5c20.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
