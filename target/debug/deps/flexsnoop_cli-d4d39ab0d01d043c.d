/root/repo/target/debug/deps/flexsnoop_cli-d4d39ab0d01d043c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_cli-d4d39ab0d01d043c.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
