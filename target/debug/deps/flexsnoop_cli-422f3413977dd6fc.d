/root/repo/target/debug/deps/flexsnoop_cli-422f3413977dd6fc.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/debug/deps/flexsnoop_cli-422f3413977dd6fc: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
