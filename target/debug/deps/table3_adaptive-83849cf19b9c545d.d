/root/repo/target/debug/deps/table3_adaptive-83849cf19b9c545d.d: crates/bench/benches/table3_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_adaptive-83849cf19b9c545d.rmeta: crates/bench/benches/table3_adaptive.rs Cargo.toml

crates/bench/benches/table3_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
