/root/repo/target/debug/deps/flexsnoop_predictor-0c545303ebc41fcc.d: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/exact.rs crates/predictor/src/fault.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_predictor-0c545303ebc41fcc.rmeta: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/exact.rs crates/predictor/src/fault.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/accuracy.rs:
crates/predictor/src/bloom.rs:
crates/predictor/src/exact.rs:
crates/predictor/src/fault.rs:
crates/predictor/src/perfect.rs:
crates/predictor/src/spec.rs:
crates/predictor/src/subset.rs:
crates/predictor/src/superset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
