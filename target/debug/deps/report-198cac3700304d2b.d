/root/repo/target/debug/deps/report-198cac3700304d2b.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-198cac3700304d2b: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
