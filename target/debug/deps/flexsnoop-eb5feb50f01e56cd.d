/root/repo/target/debug/deps/flexsnoop-eb5feb50f01e56cd.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/debug/deps/libflexsnoop-eb5feb50f01e56cd.rlib: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/debug/deps/libflexsnoop-eb5feb50f01e56cd.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/arena.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
