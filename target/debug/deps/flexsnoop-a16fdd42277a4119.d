/root/repo/target/debug/deps/flexsnoop-a16fdd42277a4119.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/debug/deps/libflexsnoop-a16fdd42277a4119.rlib: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/debug/deps/libflexsnoop-a16fdd42277a4119.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
