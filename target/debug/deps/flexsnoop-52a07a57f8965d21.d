/root/repo/target/debug/deps/flexsnoop-52a07a57f8965d21.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/sim_tests.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/debug/deps/flexsnoop-52a07a57f8965d21: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/sim_tests.rs crates/core/src/stats.rs crates/core/src/timeline.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/sim_tests.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
