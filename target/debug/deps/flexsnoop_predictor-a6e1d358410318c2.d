/root/repo/target/debug/deps/flexsnoop_predictor-a6e1d358410318c2.d: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/fault.rs crates/predictor/src/exact.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

/root/repo/target/debug/deps/libflexsnoop_predictor-a6e1d358410318c2.rlib: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/fault.rs crates/predictor/src/exact.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

/root/repo/target/debug/deps/libflexsnoop_predictor-a6e1d358410318c2.rmeta: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/fault.rs crates/predictor/src/exact.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

crates/predictor/src/lib.rs:
crates/predictor/src/accuracy.rs:
crates/predictor/src/bloom.rs:
crates/predictor/src/fault.rs:
crates/predictor/src/exact.rs:
crates/predictor/src/perfect.rs:
crates/predictor/src/spec.rs:
crates/predictor/src/subset.rs:
crates/predictor/src/superset.rs:
