/root/repo/target/debug/deps/flexsnoop_cli-9b4d350bd7bbe98e.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_cli-9b4d350bd7bbe98e.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
