/root/repo/target/debug/deps/flexsnoop_repro-524f0dd38ddc442f.d: src/lib.rs

/root/repo/target/debug/deps/flexsnoop_repro-524f0dd38ddc442f: src/lib.rs

src/lib.rs:
