/root/repo/target/debug/deps/flexsnoop_engine-c0276c5e4ba218df.d: crates/engine/src/lib.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/debug/deps/flexsnoop_engine-c0276c5e4ba218df: crates/engine/src/lib.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

crates/engine/src/lib.rs:
crates/engine/src/queue.rs:
crates/engine/src/resource.rs:
crates/engine/src/rng.rs:
crates/engine/src/time.rs:
