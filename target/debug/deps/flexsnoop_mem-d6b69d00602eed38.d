/root/repo/target/debug/deps/flexsnoop_mem-d6b69d00602eed38.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

/root/repo/target/debug/deps/flexsnoop_mem-d6b69d00602eed38: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/cmp.rs:
crates/mem/src/ids.rs:
crates/mem/src/l2.rs:
crates/mem/src/state.rs:
