/root/repo/target/debug/deps/flexsnoop_metrics-1eba0cb984729a5f.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libflexsnoop_metrics-1eba0cb984729a5f.rlib: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libflexsnoop_metrics-1eba0cb984729a5f.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
