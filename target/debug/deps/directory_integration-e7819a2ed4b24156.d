/root/repo/target/debug/deps/directory_integration-e7819a2ed4b24156.d: tests/directory_integration.rs

/root/repo/target/debug/deps/directory_integration-e7819a2ed4b24156: tests/directory_integration.rs

tests/directory_integration.rs:
