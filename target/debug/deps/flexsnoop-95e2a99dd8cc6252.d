/root/repo/target/debug/deps/flexsnoop-95e2a99dd8cc6252.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop-95e2a99dd8cc6252.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
