/root/repo/target/debug/deps/flexsnoop_directory-8d2b14954a3feaee.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_directory-8d2b14954a3feaee.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs Cargo.toml

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
