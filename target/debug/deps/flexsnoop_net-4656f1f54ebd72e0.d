/root/repo/target/debug/deps/flexsnoop_net-4656f1f54ebd72e0.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/debug/deps/libflexsnoop_net-4656f1f54ebd72e0.rlib: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/debug/deps/libflexsnoop_net-4656f1f54ebd72e0.rmeta: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
