/root/repo/target/debug/deps/flexsnoop-860cc7b9f7ed1102.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/sim_tests.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/debug/deps/flexsnoop-860cc7b9f7ed1102: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/sim_tests.rs crates/core/src/stats.rs crates/core/src/timeline.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/arena.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/sim_tests.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
