/root/repo/target/debug/deps/directory_integration-9e98a322bbe8d3d4.d: tests/directory_integration.rs Cargo.toml

/root/repo/target/debug/deps/libdirectory_integration-9e98a322bbe8d3d4.rmeta: tests/directory_integration.rs Cargo.toml

tests/directory_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
