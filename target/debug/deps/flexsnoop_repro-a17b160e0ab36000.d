/root/repo/target/debug/deps/flexsnoop_repro-a17b160e0ab36000.d: src/lib.rs

/root/repo/target/debug/deps/libflexsnoop_repro-a17b160e0ab36000.rlib: src/lib.rs

/root/repo/target/debug/deps/libflexsnoop_repro-a17b160e0ab36000.rmeta: src/lib.rs

src/lib.rs:
