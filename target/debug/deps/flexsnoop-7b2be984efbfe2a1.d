/root/repo/target/debug/deps/flexsnoop-7b2be984efbfe2a1.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/flexsnoop-7b2be984efbfe2a1: crates/cli/src/main.rs

crates/cli/src/main.rs:
