/root/repo/target/debug/deps/flexsnoop_workload-33267c760e70447f.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libflexsnoop_workload-33267c760e70447f.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libflexsnoop_workload-33267c760e70447f.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
