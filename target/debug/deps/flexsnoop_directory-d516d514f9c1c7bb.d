/root/repo/target/debug/deps/flexsnoop_directory-d516d514f9c1c7bb.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs crates/directory/src/sim_tests.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_directory-d516d514f9c1c7bb.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs crates/directory/src/sim_tests.rs Cargo.toml

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
crates/directory/src/sim_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
