/root/repo/target/debug/deps/calibrate-a60ebcb9dff04def.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-a60ebcb9dff04def: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
