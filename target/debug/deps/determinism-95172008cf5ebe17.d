/root/repo/target/debug/deps/determinism-95172008cf5ebe17.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-95172008cf5ebe17: tests/determinism.rs

tests/determinism.rs:
