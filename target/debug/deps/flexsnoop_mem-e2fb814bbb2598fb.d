/root/repo/target/debug/deps/flexsnoop_mem-e2fb814bbb2598fb.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_mem-e2fb814bbb2598fb.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/cmp.rs:
crates/mem/src/ids.rs:
crates/mem/src/l2.rs:
crates/mem/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
