/root/repo/target/debug/deps/fig9_energy-db8a984e381bee41.d: crates/bench/benches/fig9_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_energy-db8a984e381bee41.rmeta: crates/bench/benches/fig9_energy.rs Cargo.toml

crates/bench/benches/fig9_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
