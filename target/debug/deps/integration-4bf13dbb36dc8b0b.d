/root/repo/target/debug/deps/integration-4bf13dbb36dc8b0b.d: tests/integration.rs

/root/repo/target/debug/deps/integration-4bf13dbb36dc8b0b: tests/integration.rs

tests/integration.rs:
