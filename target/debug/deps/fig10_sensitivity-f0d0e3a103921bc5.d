/root/repo/target/debug/deps/fig10_sensitivity-f0d0e3a103921bc5.d: crates/bench/benches/fig10_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_sensitivity-f0d0e3a103921bc5.rmeta: crates/bench/benches/fig10_sensitivity.rs Cargo.toml

crates/bench/benches/fig10_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
