/root/repo/target/debug/deps/flexsnoop_bench-48147ee0b1d15a0f.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/flexsnoop_bench-48147ee0b1d15a0f: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
