/root/repo/target/debug/deps/flexsnoop_repro-b76e75ef570cd547.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_repro-b76e75ef570cd547.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
