/root/repo/target/debug/deps/flexsnoop_net-14a5672676a1c65d.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/debug/deps/libflexsnoop_net-14a5672676a1c65d.rlib: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/debug/deps/libflexsnoop_net-14a5672676a1c65d.rmeta: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
