/root/repo/target/debug/deps/flexsnoop_directory-d22c7a6f59b7e294.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/debug/deps/libflexsnoop_directory-d22c7a6f59b7e294.rlib: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/debug/deps/libflexsnoop_directory-d22c7a6f59b7e294.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
