/root/repo/target/debug/deps/flexsnoop_repro-67ca0ed51a89f9dd.d: src/lib.rs

/root/repo/target/debug/deps/libflexsnoop_repro-67ca0ed51a89f9dd.rlib: src/lib.rs

/root/repo/target/debug/deps/libflexsnoop_repro-67ca0ed51a89f9dd.rmeta: src/lib.rs

src/lib.rs:
