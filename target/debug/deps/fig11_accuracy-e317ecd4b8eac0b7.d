/root/repo/target/debug/deps/fig11_accuracy-e317ecd4b8eac0b7.d: crates/bench/benches/fig11_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_accuracy-e317ecd4b8eac0b7.rmeta: crates/bench/benches/fig11_accuracy.rs Cargo.toml

crates/bench/benches/fig11_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
