/root/repo/target/debug/deps/flexsnoop-442621cacd9e6553.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop-442621cacd9e6553.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/arena.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
