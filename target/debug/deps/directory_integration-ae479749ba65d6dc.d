/root/repo/target/debug/deps/directory_integration-ae479749ba65d6dc.d: tests/directory_integration.rs

/root/repo/target/debug/deps/directory_integration-ae479749ba65d6dc: tests/directory_integration.rs

tests/directory_integration.rs:
