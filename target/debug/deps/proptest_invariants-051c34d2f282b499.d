/root/repo/target/debug/deps/proptest_invariants-051c34d2f282b499.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-051c34d2f282b499: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
