/root/repo/target/debug/deps/fig6_snoops_per_request-0d2938eb9bc34349.d: crates/bench/benches/fig6_snoops_per_request.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_snoops_per_request-0d2938eb9bc34349.rmeta: crates/bench/benches/fig6_snoops_per_request.rs Cargo.toml

crates/bench/benches/fig6_snoops_per_request.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
