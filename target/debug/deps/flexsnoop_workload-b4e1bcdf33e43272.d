/root/repo/target/debug/deps/flexsnoop_workload-b4e1bcdf33e43272.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libflexsnoop_workload-b4e1bcdf33e43272.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libflexsnoop_workload-b4e1bcdf33e43272.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
