/root/repo/target/debug/deps/calibration-b9e2868fd031c5d3.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-b9e2868fd031c5d3.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
