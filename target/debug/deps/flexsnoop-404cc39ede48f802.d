/root/repo/target/debug/deps/flexsnoop-404cc39ede48f802.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop-404cc39ede48f802.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
