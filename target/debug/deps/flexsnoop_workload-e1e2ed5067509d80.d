/root/repo/target/debug/deps/flexsnoop_workload-e1e2ed5067509d80.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/flexsnoop_workload-e1e2ed5067509d80: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
