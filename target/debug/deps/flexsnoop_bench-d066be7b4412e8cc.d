/root/repo/target/debug/deps/flexsnoop_bench-d066be7b4412e8cc.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_bench-d066be7b4412e8cc.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
