/root/repo/target/debug/deps/integration-a05f9f4851a7822e.d: tests/integration.rs

/root/repo/target/debug/deps/integration-a05f9f4851a7822e: tests/integration.rs

tests/integration.rs:
