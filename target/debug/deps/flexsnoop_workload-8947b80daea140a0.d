/root/repo/target/debug/deps/flexsnoop_workload-8947b80daea140a0.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_workload-8947b80daea140a0.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
