/root/repo/target/debug/deps/flexsnoop_net-bc031094b99c1c7b.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_net-bc031094b99c1c7b.rmeta: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
