/root/repo/target/debug/deps/fig7_ring_messages-afa4ee8c37574be7.d: crates/bench/benches/fig7_ring_messages.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_ring_messages-afa4ee8c37574be7.rmeta: crates/bench/benches/fig7_ring_messages.rs Cargo.toml

crates/bench/benches/fig7_ring_messages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
