/root/repo/target/debug/deps/flexsnoop_engine-f307250c5025e946.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/debug/deps/libflexsnoop_engine-f307250c5025e946.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/debug/deps/libflexsnoop_engine-f307250c5025e946.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/resource.rs:
crates/engine/src/rng.rs:
crates/engine/src/time.rs:
