/root/repo/target/debug/deps/flexsnoop_bench-8278329154720c6c.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libflexsnoop_bench-8278329154720c6c.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libflexsnoop_bench-8278329154720c6c.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
