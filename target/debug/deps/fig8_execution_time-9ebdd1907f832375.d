/root/repo/target/debug/deps/fig8_execution_time-9ebdd1907f832375.d: crates/bench/benches/fig8_execution_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_execution_time-9ebdd1907f832375.rmeta: crates/bench/benches/fig8_execution_time.rs Cargo.toml

crates/bench/benches/fig8_execution_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
