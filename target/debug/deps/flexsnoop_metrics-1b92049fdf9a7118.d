/root/repo/target/debug/deps/flexsnoop_metrics-1b92049fdf9a7118.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libflexsnoop_metrics-1b92049fdf9a7118.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
