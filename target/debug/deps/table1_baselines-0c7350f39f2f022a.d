/root/repo/target/debug/deps/table1_baselines-0c7350f39f2f022a.d: crates/bench/benches/table1_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_baselines-0c7350f39f2f022a.rmeta: crates/bench/benches/table1_baselines.rs Cargo.toml

crates/bench/benches/table1_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
