/root/repo/target/debug/deps/flexsnoop_cli-4997e7d63a65f4ec.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/debug/deps/libflexsnoop_cli-4997e7d63a65f4ec.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/debug/deps/libflexsnoop_cli-4997e7d63a65f4ec.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
