/root/repo/target/debug/deps/proptest_invariants-e113417c91f3451c.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-e113417c91f3451c: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
