/root/repo/target/debug/deps/calibration-74b60aa3b2778da0.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-74b60aa3b2778da0: tests/calibration.rs

tests/calibration.rs:
