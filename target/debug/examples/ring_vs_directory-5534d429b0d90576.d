/root/repo/target/debug/examples/ring_vs_directory-5534d429b0d90576.d: examples/ring_vs_directory.rs

/root/repo/target/debug/examples/ring_vs_directory-5534d429b0d90576: examples/ring_vs_directory.rs

examples/ring_vs_directory.rs:
