/root/repo/target/debug/examples/quickstart-4bdad0259d5f7da2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4bdad0259d5f7da2: examples/quickstart.rs

examples/quickstart.rs:
