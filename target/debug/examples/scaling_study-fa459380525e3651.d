/root/repo/target/debug/examples/scaling_study-fa459380525e3651.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-fa459380525e3651: examples/scaling_study.rs

examples/scaling_study.rs:
