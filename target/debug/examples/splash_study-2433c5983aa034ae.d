/root/repo/target/debug/examples/splash_study-2433c5983aa034ae.d: examples/splash_study.rs

/root/repo/target/debug/examples/splash_study-2433c5983aa034ae: examples/splash_study.rs

examples/splash_study.rs:
