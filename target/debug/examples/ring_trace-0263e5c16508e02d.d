/root/repo/target/debug/examples/ring_trace-0263e5c16508e02d.d: examples/ring_trace.rs Cargo.toml

/root/repo/target/debug/examples/libring_trace-0263e5c16508e02d.rmeta: examples/ring_trace.rs Cargo.toml

examples/ring_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
