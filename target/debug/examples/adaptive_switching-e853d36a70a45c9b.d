/root/repo/target/debug/examples/adaptive_switching-e853d36a70a45c9b.d: examples/adaptive_switching.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_switching-e853d36a70a45c9b.rmeta: examples/adaptive_switching.rs Cargo.toml

examples/adaptive_switching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
