/root/repo/target/debug/examples/ring_vs_directory-c8f13962b84ce776.d: examples/ring_vs_directory.rs Cargo.toml

/root/repo/target/debug/examples/libring_vs_directory-c8f13962b84ce776.rmeta: examples/ring_vs_directory.rs Cargo.toml

examples/ring_vs_directory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
