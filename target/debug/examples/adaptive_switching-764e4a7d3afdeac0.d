/root/repo/target/debug/examples/adaptive_switching-764e4a7d3afdeac0.d: examples/adaptive_switching.rs

/root/repo/target/debug/examples/adaptive_switching-764e4a7d3afdeac0: examples/adaptive_switching.rs

examples/adaptive_switching.rs:
