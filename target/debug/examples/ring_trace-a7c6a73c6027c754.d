/root/repo/target/debug/examples/ring_trace-a7c6a73c6027c754.d: examples/ring_trace.rs

/root/repo/target/debug/examples/ring_trace-a7c6a73c6027c754: examples/ring_trace.rs

examples/ring_trace.rs:
