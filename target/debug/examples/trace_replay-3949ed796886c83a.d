/root/repo/target/debug/examples/trace_replay-3949ed796886c83a.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-3949ed796886c83a: examples/trace_replay.rs

examples/trace_replay.rs:
