/root/repo/target/debug/examples/predictor_anatomy-082297409d94f4d6.d: examples/predictor_anatomy.rs

/root/repo/target/debug/examples/predictor_anatomy-082297409d94f4d6: examples/predictor_anatomy.rs

examples/predictor_anatomy.rs:
