/root/repo/target/debug/examples/ring_vs_directory-dc38665cf8aa8d09.d: examples/ring_vs_directory.rs

/root/repo/target/debug/examples/ring_vs_directory-dc38665cf8aa8d09: examples/ring_vs_directory.rs

examples/ring_vs_directory.rs:
