/root/repo/target/debug/examples/splash_study-71d089f851a1c171.d: examples/splash_study.rs Cargo.toml

/root/repo/target/debug/examples/libsplash_study-71d089f851a1c171.rmeta: examples/splash_study.rs Cargo.toml

examples/splash_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
