/root/repo/target/debug/examples/quickstart-72cbb6c9563b4b8b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-72cbb6c9563b4b8b: examples/quickstart.rs

examples/quickstart.rs:
