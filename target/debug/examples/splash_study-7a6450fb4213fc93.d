/root/repo/target/debug/examples/splash_study-7a6450fb4213fc93.d: examples/splash_study.rs

/root/repo/target/debug/examples/splash_study-7a6450fb4213fc93: examples/splash_study.rs

examples/splash_study.rs:
