/root/repo/target/debug/examples/adaptive_switching-e3729b71f863421e.d: examples/adaptive_switching.rs

/root/repo/target/debug/examples/adaptive_switching-e3729b71f863421e: examples/adaptive_switching.rs

examples/adaptive_switching.rs:
