/root/repo/target/debug/examples/scaling_study-0b1fa506953d8cf9.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-0b1fa506953d8cf9: examples/scaling_study.rs

examples/scaling_study.rs:
