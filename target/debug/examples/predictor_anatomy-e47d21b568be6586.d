/root/repo/target/debug/examples/predictor_anatomy-e47d21b568be6586.d: examples/predictor_anatomy.rs

/root/repo/target/debug/examples/predictor_anatomy-e47d21b568be6586: examples/predictor_anatomy.rs

examples/predictor_anatomy.rs:
