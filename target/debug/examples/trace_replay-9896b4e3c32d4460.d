/root/repo/target/debug/examples/trace_replay-9896b4e3c32d4460.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-9896b4e3c32d4460: examples/trace_replay.rs

examples/trace_replay.rs:
