/root/repo/target/debug/examples/ring_trace-47519e5539ba6c68.d: examples/ring_trace.rs

/root/repo/target/debug/examples/ring_trace-47519e5539ba6c68: examples/ring_trace.rs

examples/ring_trace.rs:
