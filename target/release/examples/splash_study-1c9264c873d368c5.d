/root/repo/target/release/examples/splash_study-1c9264c873d368c5.d: examples/splash_study.rs

/root/repo/target/release/examples/splash_study-1c9264c873d368c5: examples/splash_study.rs

examples/splash_study.rs:
