/root/repo/target/release/examples/scaling_study-13c253679994556f.d: examples/scaling_study.rs

/root/repo/target/release/examples/scaling_study-13c253679994556f: examples/scaling_study.rs

examples/scaling_study.rs:
