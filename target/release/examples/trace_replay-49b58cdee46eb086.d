/root/repo/target/release/examples/trace_replay-49b58cdee46eb086.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-49b58cdee46eb086: examples/trace_replay.rs

examples/trace_replay.rs:
