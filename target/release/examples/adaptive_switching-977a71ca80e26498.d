/root/repo/target/release/examples/adaptive_switching-977a71ca80e26498.d: examples/adaptive_switching.rs

/root/repo/target/release/examples/adaptive_switching-977a71ca80e26498: examples/adaptive_switching.rs

examples/adaptive_switching.rs:
