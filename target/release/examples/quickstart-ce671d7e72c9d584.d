/root/repo/target/release/examples/quickstart-ce671d7e72c9d584.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ce671d7e72c9d584: examples/quickstart.rs

examples/quickstart.rs:
