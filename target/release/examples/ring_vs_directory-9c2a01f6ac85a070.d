/root/repo/target/release/examples/ring_vs_directory-9c2a01f6ac85a070.d: examples/ring_vs_directory.rs

/root/repo/target/release/examples/ring_vs_directory-9c2a01f6ac85a070: examples/ring_vs_directory.rs

examples/ring_vs_directory.rs:
