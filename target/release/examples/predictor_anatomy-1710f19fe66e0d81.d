/root/repo/target/release/examples/predictor_anatomy-1710f19fe66e0d81.d: examples/predictor_anatomy.rs

/root/repo/target/release/examples/predictor_anatomy-1710f19fe66e0d81: examples/predictor_anatomy.rs

examples/predictor_anatomy.rs:
