/root/repo/target/release/examples/ring_trace-f4472391f0d7427e.d: examples/ring_trace.rs

/root/repo/target/release/examples/ring_trace-f4472391f0d7427e: examples/ring_trace.rs

examples/ring_trace.rs:
