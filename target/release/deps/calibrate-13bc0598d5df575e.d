/root/repo/target/release/deps/calibrate-13bc0598d5df575e.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-13bc0598d5df575e: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
