/root/repo/target/release/deps/flexsnoop_net-3ef9059dd2b828a8.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/flexsnoop_net-3ef9059dd2b828a8: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
