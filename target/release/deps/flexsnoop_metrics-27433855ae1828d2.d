/root/repo/target/release/deps/flexsnoop_metrics-27433855ae1828d2.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libflexsnoop_metrics-27433855ae1828d2.rlib: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libflexsnoop_metrics-27433855ae1828d2.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
