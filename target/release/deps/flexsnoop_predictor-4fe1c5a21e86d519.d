/root/repo/target/release/deps/flexsnoop_predictor-4fe1c5a21e86d519.d: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/exact.rs crates/predictor/src/fault.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

/root/repo/target/release/deps/libflexsnoop_predictor-4fe1c5a21e86d519.rlib: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/exact.rs crates/predictor/src/fault.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

/root/repo/target/release/deps/libflexsnoop_predictor-4fe1c5a21e86d519.rmeta: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/exact.rs crates/predictor/src/fault.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

crates/predictor/src/lib.rs:
crates/predictor/src/accuracy.rs:
crates/predictor/src/bloom.rs:
crates/predictor/src/exact.rs:
crates/predictor/src/fault.rs:
crates/predictor/src/perfect.rs:
crates/predictor/src/spec.rs:
crates/predictor/src/subset.rs:
crates/predictor/src/superset.rs:
