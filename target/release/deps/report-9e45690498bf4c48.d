/root/repo/target/release/deps/report-9e45690498bf4c48.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-9e45690498bf4c48: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
