/root/repo/target/release/deps/integration-6c3553f52713304b.d: tests/integration.rs

/root/repo/target/release/deps/integration-6c3553f52713304b: tests/integration.rs

tests/integration.rs:
