/root/repo/target/release/deps/determinism-8fa16b464ca95e9e.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-8fa16b464ca95e9e: tests/determinism.rs

tests/determinism.rs:
