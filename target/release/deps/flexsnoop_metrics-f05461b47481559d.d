/root/repo/target/release/deps/flexsnoop_metrics-f05461b47481559d.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libflexsnoop_metrics-f05461b47481559d.rlib: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libflexsnoop_metrics-f05461b47481559d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
