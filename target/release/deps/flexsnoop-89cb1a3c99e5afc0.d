/root/repo/target/release/deps/flexsnoop-89cb1a3c99e5afc0.d: crates/cli/src/main.rs

/root/repo/target/release/deps/flexsnoop-89cb1a3c99e5afc0: crates/cli/src/main.rs

crates/cli/src/main.rs:
