/root/repo/target/release/deps/flexsnoop_net-92c5d3482568efaf.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/libflexsnoop_net-92c5d3482568efaf.rlib: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/libflexsnoop_net-92c5d3482568efaf.rmeta: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
