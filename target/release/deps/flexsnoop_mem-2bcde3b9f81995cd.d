/root/repo/target/release/deps/flexsnoop_mem-2bcde3b9f81995cd.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

/root/repo/target/release/deps/flexsnoop_mem-2bcde3b9f81995cd: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/cmp.rs:
crates/mem/src/ids.rs:
crates/mem/src/l2.rs:
crates/mem/src/state.rs:
