/root/repo/target/release/deps/throughput-1641a2fe2d5df928.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-1641a2fe2d5df928: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
