/root/repo/target/release/deps/flexsnoop_predictor-e1936d9c76e66457.d: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/fault.rs crates/predictor/src/exact.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

/root/repo/target/release/deps/flexsnoop_predictor-e1936d9c76e66457: crates/predictor/src/lib.rs crates/predictor/src/accuracy.rs crates/predictor/src/bloom.rs crates/predictor/src/fault.rs crates/predictor/src/exact.rs crates/predictor/src/perfect.rs crates/predictor/src/spec.rs crates/predictor/src/subset.rs crates/predictor/src/superset.rs

crates/predictor/src/lib.rs:
crates/predictor/src/accuracy.rs:
crates/predictor/src/bloom.rs:
crates/predictor/src/fault.rs:
crates/predictor/src/exact.rs:
crates/predictor/src/perfect.rs:
crates/predictor/src/spec.rs:
crates/predictor/src/subset.rs:
crates/predictor/src/superset.rs:
