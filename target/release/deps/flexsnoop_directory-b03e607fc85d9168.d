/root/repo/target/release/deps/flexsnoop_directory-b03e607fc85d9168.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/release/deps/libflexsnoop_directory-b03e607fc85d9168.rlib: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/release/deps/libflexsnoop_directory-b03e607fc85d9168.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
