/root/repo/target/release/deps/flexsnoop_bench-ad903eb51f3fdcce.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-ad903eb51f3fdcce.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-ad903eb51f3fdcce.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
