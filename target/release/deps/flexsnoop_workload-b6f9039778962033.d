/root/repo/target/release/deps/flexsnoop_workload-b6f9039778962033.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libflexsnoop_workload-b6f9039778962033.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libflexsnoop_workload-b6f9039778962033.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
