/root/repo/target/release/deps/flexsnoop_metrics-94d3cb2db7ed4771.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/flexsnoop_metrics-94d3cb2db7ed4771: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
