/root/repo/target/release/deps/flexsnoop_engine-4a1b4cf095a11d86.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/release/deps/libflexsnoop_engine-4a1b4cf095a11d86.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/release/deps/libflexsnoop_engine-4a1b4cf095a11d86.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/resource.rs:
crates/engine/src/rng.rs:
crates/engine/src/time.rs:
