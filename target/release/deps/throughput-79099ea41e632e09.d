/root/repo/target/release/deps/throughput-79099ea41e632e09.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-79099ea41e632e09: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
