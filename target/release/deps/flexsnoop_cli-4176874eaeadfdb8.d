/root/repo/target/release/deps/flexsnoop_cli-4176874eaeadfdb8.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/release/deps/libflexsnoop_cli-4176874eaeadfdb8.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/release/deps/libflexsnoop_cli-4176874eaeadfdb8.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
