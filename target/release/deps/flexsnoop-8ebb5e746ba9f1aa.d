/root/repo/target/release/deps/flexsnoop-8ebb5e746ba9f1aa.d: crates/cli/src/main.rs

/root/repo/target/release/deps/flexsnoop-8ebb5e746ba9f1aa: crates/cli/src/main.rs

crates/cli/src/main.rs:
