/root/repo/target/release/deps/flexsnoop_engine-b7c5ffe63f062981.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/release/deps/flexsnoop_engine-b7c5ffe63f062981: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/resource.rs:
crates/engine/src/rng.rs:
crates/engine/src/time.rs:
