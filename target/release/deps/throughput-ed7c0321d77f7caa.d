/root/repo/target/release/deps/throughput-ed7c0321d77f7caa.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-ed7c0321d77f7caa: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
