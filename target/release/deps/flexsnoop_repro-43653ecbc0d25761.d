/root/repo/target/release/deps/flexsnoop_repro-43653ecbc0d25761.d: src/lib.rs

/root/repo/target/release/deps/flexsnoop_repro-43653ecbc0d25761: src/lib.rs

src/lib.rs:
