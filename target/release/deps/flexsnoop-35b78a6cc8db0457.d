/root/repo/target/release/deps/flexsnoop-35b78a6cc8db0457.d: crates/cli/src/main.rs

/root/repo/target/release/deps/flexsnoop-35b78a6cc8db0457: crates/cli/src/main.rs

crates/cli/src/main.rs:
