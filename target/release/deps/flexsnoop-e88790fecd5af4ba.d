/root/repo/target/release/deps/flexsnoop-e88790fecd5af4ba.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/release/deps/libflexsnoop-e88790fecd5af4ba.rlib: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/release/deps/libflexsnoop-e88790fecd5af4ba.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
