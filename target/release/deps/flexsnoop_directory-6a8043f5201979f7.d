/root/repo/target/release/deps/flexsnoop_directory-6a8043f5201979f7.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/release/deps/libflexsnoop_directory-6a8043f5201979f7.rlib: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/release/deps/libflexsnoop_directory-6a8043f5201979f7.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
