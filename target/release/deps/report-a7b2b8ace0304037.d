/root/repo/target/release/deps/report-a7b2b8ace0304037.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-a7b2b8ace0304037: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
