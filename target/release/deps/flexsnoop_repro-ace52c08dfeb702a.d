/root/repo/target/release/deps/flexsnoop_repro-ace52c08dfeb702a.d: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-ace52c08dfeb702a.rlib: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-ace52c08dfeb702a.rmeta: src/lib.rs

src/lib.rs:
