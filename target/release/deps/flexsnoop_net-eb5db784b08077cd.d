/root/repo/target/release/deps/flexsnoop_net-eb5db784b08077cd.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/libflexsnoop_net-eb5db784b08077cd.rlib: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/libflexsnoop_net-eb5db784b08077cd.rmeta: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
