/root/repo/target/release/deps/flexsnoop_repro-a76dc955bbfef447.d: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-a76dc955bbfef447.rlib: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-a76dc955bbfef447.rmeta: src/lib.rs

src/lib.rs:
