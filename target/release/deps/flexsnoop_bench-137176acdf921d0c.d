/root/repo/target/release/deps/flexsnoop_bench-137176acdf921d0c.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-137176acdf921d0c.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-137176acdf921d0c.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
