/root/repo/target/release/deps/flexsnoop_net-19a05bbbc197186d.d: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/libflexsnoop_net-19a05bbbc197186d.rlib: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

/root/repo/target/release/deps/libflexsnoop_net-19a05bbbc197186d.rmeta: crates/net/src/lib.rs crates/net/src/ring.rs crates/net/src/torus.rs

crates/net/src/lib.rs:
crates/net/src/ring.rs:
crates/net/src/torus.rs:
