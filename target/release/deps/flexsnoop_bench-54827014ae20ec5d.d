/root/repo/target/release/deps/flexsnoop_bench-54827014ae20ec5d.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/flexsnoop_bench-54827014ae20ec5d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
