/root/repo/target/release/deps/flexsnoop_directory-f948a3056b2724cf.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs crates/directory/src/sim_tests.rs

/root/repo/target/release/deps/flexsnoop_directory-f948a3056b2724cf: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs crates/directory/src/sim_tests.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
crates/directory/src/sim_tests.rs:
