/root/repo/target/release/deps/flexsnoop_repro-8dd5ae8bc99452ac.d: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-8dd5ae8bc99452ac.rlib: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-8dd5ae8bc99452ac.rmeta: src/lib.rs

src/lib.rs:
