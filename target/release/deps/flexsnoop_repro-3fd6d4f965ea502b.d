/root/repo/target/release/deps/flexsnoop_repro-3fd6d4f965ea502b.d: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-3fd6d4f965ea502b.rlib: src/lib.rs

/root/repo/target/release/deps/libflexsnoop_repro-3fd6d4f965ea502b.rmeta: src/lib.rs

src/lib.rs:
