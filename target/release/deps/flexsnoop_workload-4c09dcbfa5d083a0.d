/root/repo/target/release/deps/flexsnoop_workload-4c09dcbfa5d083a0.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libflexsnoop_workload-4c09dcbfa5d083a0.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libflexsnoop_workload-4c09dcbfa5d083a0.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
