/root/repo/target/release/deps/flexsnoop_cli-de9aa4cec87a3abe.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/release/deps/flexsnoop_cli-de9aa4cec87a3abe: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
