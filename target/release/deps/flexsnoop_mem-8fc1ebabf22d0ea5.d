/root/repo/target/release/deps/flexsnoop_mem-8fc1ebabf22d0ea5.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

/root/repo/target/release/deps/libflexsnoop_mem-8fc1ebabf22d0ea5.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

/root/repo/target/release/deps/libflexsnoop_mem-8fc1ebabf22d0ea5.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/cmp.rs:
crates/mem/src/ids.rs:
crates/mem/src/l2.rs:
crates/mem/src/state.rs:
