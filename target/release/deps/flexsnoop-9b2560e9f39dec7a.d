/root/repo/target/release/deps/flexsnoop-9b2560e9f39dec7a.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/release/deps/libflexsnoop-9b2560e9f39dec7a.rlib: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

/root/repo/target/release/deps/libflexsnoop-9b2560e9f39dec7a.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/arena.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/message.rs crates/core/src/sim.rs crates/core/src/stats.rs crates/core/src/timeline.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/arena.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/message.rs:
crates/core/src/sim.rs:
crates/core/src/stats.rs:
crates/core/src/timeline.rs:
