/root/repo/target/release/deps/flexsnoop_engine-ba101d6ef8acaad1.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/release/deps/libflexsnoop_engine-ba101d6ef8acaad1.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

/root/repo/target/release/deps/libflexsnoop_engine-ba101d6ef8acaad1.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/fxhash.rs crates/engine/src/queue.rs crates/engine/src/resource.rs crates/engine/src/rng.rs crates/engine/src/time.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/fxhash.rs:
crates/engine/src/queue.rs:
crates/engine/src/resource.rs:
crates/engine/src/rng.rs:
crates/engine/src/time.rs:
