/root/repo/target/release/deps/calibration-4211fc60a44b214b.d: tests/calibration.rs

/root/repo/target/release/deps/calibration-4211fc60a44b214b: tests/calibration.rs

tests/calibration.rs:
