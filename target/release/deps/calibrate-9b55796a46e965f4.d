/root/repo/target/release/deps/calibrate-9b55796a46e965f4.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-9b55796a46e965f4: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
