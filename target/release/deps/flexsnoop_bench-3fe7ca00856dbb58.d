/root/repo/target/release/deps/flexsnoop_bench-3fe7ca00856dbb58.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-3fe7ca00856dbb58.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-3fe7ca00856dbb58.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
