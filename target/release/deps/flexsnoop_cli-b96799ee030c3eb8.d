/root/repo/target/release/deps/flexsnoop_cli-b96799ee030c3eb8.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/release/deps/libflexsnoop_cli-b96799ee030c3eb8.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

/root/repo/target/release/deps/libflexsnoop_cli-b96799ee030c3eb8.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/names.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/names.rs:
