/root/repo/target/release/deps/directory_integration-078f1ffce8719116.d: tests/directory_integration.rs

/root/repo/target/release/deps/directory_integration-078f1ffce8719116: tests/directory_integration.rs

tests/directory_integration.rs:
