/root/repo/target/release/deps/flexsnoop_bench-5922c11b9965ba25.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-5922c11b9965ba25.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libflexsnoop_bench-5922c11b9965ba25.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
