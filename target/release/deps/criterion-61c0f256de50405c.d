/root/repo/target/release/deps/criterion-61c0f256de50405c.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-61c0f256de50405c: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
