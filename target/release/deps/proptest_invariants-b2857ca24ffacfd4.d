/root/repo/target/release/deps/proptest_invariants-b2857ca24ffacfd4.d: tests/proptest_invariants.rs

/root/repo/target/release/deps/proptest_invariants-b2857ca24ffacfd4: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
