/root/repo/target/release/deps/throughput-5a229f07d7681894.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-5a229f07d7681894: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
