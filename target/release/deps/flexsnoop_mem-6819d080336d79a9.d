/root/repo/target/release/deps/flexsnoop_mem-6819d080336d79a9.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

/root/repo/target/release/deps/libflexsnoop_mem-6819d080336d79a9.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

/root/repo/target/release/deps/libflexsnoop_mem-6819d080336d79a9.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/cache.rs crates/mem/src/cmp.rs crates/mem/src/ids.rs crates/mem/src/l2.rs crates/mem/src/state.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/cache.rs:
crates/mem/src/cmp.rs:
crates/mem/src/ids.rs:
crates/mem/src/l2.rs:
crates/mem/src/state.rs:
