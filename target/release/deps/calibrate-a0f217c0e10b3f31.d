/root/repo/target/release/deps/calibrate-a0f217c0e10b3f31.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-a0f217c0e10b3f31: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
