/root/repo/target/release/deps/flexsnoop_workload-53830e0002edb94e.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libflexsnoop_workload-53830e0002edb94e.rlib: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libflexsnoop_workload-53830e0002edb94e.rmeta: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
