/root/repo/target/release/deps/report-0eff659c068005c2.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-0eff659c068005c2: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
