/root/repo/target/release/deps/throughput-364e6c006d6209b2.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-364e6c006d6209b2: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
