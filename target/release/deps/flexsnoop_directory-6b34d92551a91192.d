/root/repo/target/release/deps/flexsnoop_directory-6b34d92551a91192.d: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/release/deps/libflexsnoop_directory-6b34d92551a91192.rlib: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

/root/repo/target/release/deps/libflexsnoop_directory-6b34d92551a91192.rmeta: crates/directory/src/lib.rs crates/directory/src/dirstate.rs crates/directory/src/sim.rs

crates/directory/src/lib.rs:
crates/directory/src/dirstate.rs:
crates/directory/src/sim.rs:
