/root/repo/target/release/deps/flexsnoop_workload-23ad864e3567cd87.d: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/flexsnoop_workload-23ad864e3567cd87: crates/workload/src/lib.rs crates/workload/src/gen.rs crates/workload/src/profiles.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/gen.rs:
crates/workload/src/profiles.rs:
crates/workload/src/trace.rs:
