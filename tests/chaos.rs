//! Chaos-campaign integration tests: the unreliable-ring fault model plus
//! timeout/retry recovery (DESIGN.md §8).
//!
//! The fast tests gate CI; the `#[ignore]`d full campaign is the
//! acceptance-scale sweep (≥1000 schedules × the four Table 3 algorithms):
//!
//! ```text
//! cargo test --release --test chaos -- --ignored
//! ```

use flexsnoop::{Algorithm, FaultPlan, RunStats, Simulator};
use flexsnoop_checker::{run_chaos, ChaosOptions};
use flexsnoop_engine::executor::set_default_threads;
use flexsnoop_engine::QueueKind;
use flexsnoop_workload::profiles;

const SEED: u64 = 20060617;

/// One faulted run with probes attached; returns the stats and the probe
/// counter report so determinism checks cover the observability layer too.
fn faulted_run(
    algorithm: Algorithm,
    plan: &FaultPlan,
    kind: QueueKind,
) -> (RunStats, flexsnoop::ProbeReport) {
    let workload = profiles::specjbb().with_accesses(250);
    let mut sim = Simulator::for_workload(&workload, algorithm, None, SEED).expect("valid config");
    sim.use_event_queue(kind);
    sim.enable_invariant_checks();
    sim.enable_probe();
    sim.set_fault_plan(plan.clone());
    sim.set_recovery_enabled(true);
    let stats = sim.run();
    assert!(
        sim.violations().is_empty(),
        "{algorithm}: {}",
        sim.violations()[0]
    );
    assert_eq!(sim.in_flight(), 0, "{algorithm}: transactions lost");
    (stats, sim.probe_report().expect("probe attached"))
}

#[test]
fn same_plan_same_seed_is_bit_identical() {
    // Acceptance: the same (seed, plan) must reproduce identical stats AND
    // identical probe counters across repeats, queue backends, and
    // executor widths. Faults draw only from the plan's own SplitMix64
    // stream, so nothing about scheduling may leak in.
    let plan = FaultPlan::random(7, 8, 2);
    for algorithm in [Algorithm::Subset, Algorithm::SupersetAgg] {
        let (heap_a, probe_a) = faulted_run(algorithm, &plan, QueueKind::Heap);
        let (heap_b, probe_b) = faulted_run(algorithm, &plan, QueueKind::Heap);
        assert_eq!(heap_a, heap_b, "{algorithm}: repeat drifted");
        assert_eq!(probe_a, probe_b, "{algorithm}: probe counters drifted");

        let (bucketed, probe_c) = faulted_run(algorithm, &plan, QueueKind::Bucketed);
        assert_eq!(heap_a, bucketed, "{algorithm}: queue kind changed results");
        assert_eq!(probe_a, probe_c, "{algorithm}: queue kind changed probes");

        set_default_threads(1);
        let (narrow, _) = faulted_run(algorithm, &plan, QueueKind::Heap);
        set_default_threads(4);
        let (wide, _) = faulted_run(algorithm, &plan, QueueKind::Heap);
        set_default_threads(0);
        assert_eq!(narrow, wide, "{algorithm}: executor width changed results");
    }
}

#[test]
fn faulted_runs_actually_inject_and_recover() {
    // A deliberately lossy plan must produce observable fault activity and
    // observable recovery work — otherwise the campaign tests nothing.
    let mut plan = FaultPlan::random(3, 8, 2);
    plan.drop = 0.05;
    plan.duplicate = 0.05;
    plan.budget = 40;
    let (stats, _) = faulted_run(Algorithm::SupersetAgg, &plan, QueueKind::Heap);
    let r = &stats.robustness;
    assert!(r.ring_drops > 0, "plan injected no drops: {r:?}");
    assert!(r.retries > 0, "drops happened but nothing retried: {r:?}");
    assert!(
        r.duplicates_suppressed > 0,
        "duplicates never reached the dedup filter: {r:?}"
    );
    assert_eq!(r.unfinished_cores, 0, "recovery left cores stranded");
}

#[test]
fn lossless_plan_changes_nothing() {
    // Installing the default (lossless) FaultPlan with recovery armed must
    // be invisible: bit-identical stats versus a plain run.
    let workload = profiles::specweb().with_accesses(300);
    for algorithm in [Algorithm::Lazy, Algorithm::Exact] {
        let mut plain =
            Simulator::for_workload(&workload, algorithm, None, SEED).expect("valid config");
        let baseline = plain.run();

        let mut faulted =
            Simulator::for_workload(&workload, algorithm, None, SEED).expect("valid config");
        faulted.set_fault_plan(FaultPlan::default());
        faulted.set_recovery_enabled(true);
        let with_plan = faulted.run();
        assert_eq!(baseline, with_plan, "{algorithm}: lossless plan drifted");
    }
}

#[test]
fn smoke_campaign_is_clean() {
    let workload = profiles::specjbb();
    let opts = ChaosOptions {
        schedules: 4,
        accesses_per_core: 80,
        threads: 2,
        ..ChaosOptions::default()
    };
    let report = run_chaos(&workload, &opts).expect("campaign runs");
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        report.totals.drops + report.totals.duplicates + report.totals.delays > 0,
        "smoke campaign injected nothing:\n{}",
        report.render()
    );
}

#[test]
fn no_retry_schedule_fails_and_shrinks() {
    // Self-test: with recovery off, lossy schedules must strand
    // transactions, and the shrinker must hand back a smaller reproducer.
    let workload = profiles::specjbb();
    let opts = ChaosOptions {
        schedules: 8,
        accesses_per_core: 80,
        threads: 2,
        recovery: false,
        ..ChaosOptions::default()
    };
    let report = run_chaos(&workload, &opts).expect("campaign runs");
    assert!(!report.is_clean(), "faults with no recovery stayed clean");
    let failure = &report.failures[0];
    let minimized = failure
        .minimized
        .as_ref()
        .expect("shrinker produced a plan");
    assert!(minimized.budget <= failure.plan.budget);
    assert!(report.render().contains("--no-retry"));
}

/// Acceptance-scale campaign: ≥1000 seeded schedules across the four
/// Table 3 algorithms, zero violations, zero divergence. Run with
/// `cargo test --release --test chaos -- --ignored`.
#[test]
#[ignore = "acceptance scale; minutes in release mode"]
fn full_campaign_is_clean() {
    let workload = profiles::specjbb();
    let opts = ChaosOptions::full();
    assert!(opts.schedules >= 1000);
    let report = run_chaos(&workload, &opts).expect("campaign runs");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.runs, opts.schedules * 4);
}

#[test]
fn degradation_engages_under_sustained_loss() {
    // A link that drops most traffic on one ring forces the retry cap,
    // after which the affected lines must fall back to Lazy forwarding
    // (degraded mode) rather than retrying forever.
    let mut plan = FaultPlan::random(11, 8, 2);
    plan.link_drops = vec![flexsnoop::LinkDrop {
        ring: 0,
        node: 3,
        prob: 0.9,
    }];
    plan.budget = 200;
    let (stats, probe) = faulted_run(Algorithm::Subset, &plan, QueueKind::Heap);
    let r = &stats.robustness;
    assert!(r.timeouts > 0, "sustained loss fired no timeouts: {r:?}");
    assert_eq!(
        probe.degraded_entries, r.degraded_entries,
        "probe and stats disagree on degraded-mode entries"
    );
    assert_eq!(probe.timeouts, r.timeouts, "probe missed timeouts");
    assert_eq!(probe.retries, r.retries, "probe missed retries");
    assert_eq!(
        probe.probation_exits, r.probation_exits,
        "probe and stats disagree on probation exits"
    );
    assert_eq!(
        probe.probation_resets, r.probation_resets,
        "probe and stats disagree on probation resets"
    );
}

#[test]
fn campaign_covers_every_fault_kind() {
    // Coverage ratchet (satellite of DESIGN.md §8): a healthy campaign
    // must both arm and actually inject every fault kind the plan
    // language can express — a kind that silently stops firing would
    // turn its recovery path into dead, untested code.
    let workload = profiles::specjbb();
    let opts = ChaosOptions {
        schedules: 12,
        accesses_per_core: 100,
        threads: 2,
        ..ChaosOptions::default()
    };
    let report = run_chaos(&workload, &opts).expect("campaign runs");
    assert!(report.is_clean(), "{}", report.render());
    for (i, kind) in flexsnoop_checker::FAULT_KINDS.iter().enumerate() {
        let [armed, injected] = report.coverage.kinds[i];
        // Partition windows are scenario-scheduled, never randomly
        // drawn: a random campaign must report the kind at zero (the
        // ratchet still tracks it when scenarios feed the table).
        if *kind == "partition" {
            assert_eq!(armed, 0, "a random plan drew a partition window");
            continue;
        }
        // Bridge drops only exist on hierarchical machines; this is a
        // flat campaign, so coverage must report the kind unarmed (the
        // checker's hier campaign test proves it fires when bridges do
        // exist).
        if *kind == "bridge" {
            assert_eq!(armed, 0, "a flat campaign armed bridge faults");
            continue;
        }
        assert!(armed > 0, "no schedule armed {kind}:\n{}", report.render());
        assert!(
            injected > 0,
            "{kind} was armed but never injected:\n{}",
            report.render()
        );
    }
    assert!(report.coverage.starved_kinds().is_empty());
    // The render carries the per-kind table the CI artifact is built from.
    assert!(
        report.render().contains("Fault coverage"),
        "{}",
        report.render()
    );
}

#[test]
fn torus_lossless_default_changes_nothing() {
    // Torus mirror of `lossless_plan_changes_nothing`: arming a plan
    // whose torus fields cannot fire (zero budget, like the default)
    // must leave ring and memory paths bit-identical to a plain run.
    let workload = profiles::specweb().with_accesses(300);
    for algorithm in [Algorithm::Lazy, Algorithm::Exact] {
        let mut plain =
            Simulator::for_workload(&workload, algorithm, None, SEED).expect("valid config");
        let baseline = plain.run();

        let mut plan = FaultPlan::lossless();
        plan.torus_drop = 0.8; // nonzero probability, but...
        plan.torus_budget = 0; // ...a zero budget must inject nothing.
        assert!(plan.is_lossless());
        let mut armed =
            Simulator::for_workload(&workload, algorithm, None, SEED).expect("valid config");
        armed.set_fault_plan(plan);
        armed.set_recovery_enabled(true);
        let with_plan = armed.run();
        assert_eq!(
            baseline, with_plan,
            "{algorithm}: lossless torus plan drifted"
        );
        assert_eq!(armed.fault_stats().torus_drops, 0);
    }
}

#[test]
fn torus_only_schedule_recovers() {
    // Reply-data loss on the torus exercises the memory path: the ring
    // answers, the data never arrives, and the whole transaction must be
    // retried rather than stranding the requester core.
    let mut plan = FaultPlan::lossless();
    plan.seed = 31;
    plan.torus_drop = 0.5;
    plan.torus_budget = 8;
    for kind in [QueueKind::Heap, QueueKind::Bucketed] {
        let (stats, _) = faulted_run(Algorithm::SupersetCon, &plan, kind);
        let r = &stats.robustness;
        assert!(r.torus_drops > 0, "plan injected no torus drops: {r:?}");
        assert_eq!(r.ring_drops, 0, "torus-only plan touched the ring: {r:?}");
        assert!(r.retries > 0, "lost data never triggered a retry: {r:?}");
        assert_eq!(r.unfinished_cores, 0, "data loss stranded a core");
    }
}
