//! Sweep-service integration tests: the fingerprint-keyed results cache
//! must be a pure function of the job key across every axis the service
//! can vary — executor width, queue backend, service restarts, and the
//! socket transport — and concurrent duplicate submissions must coalesce
//! onto one execution instead of racing.

use std::thread;

use flexsnoop_serve::{
    request, request_shutdown, result_lines, serve_blocking, ResultsCache, ServiceOptions,
    SweepRequest, SweepService,
};

const SEED: u64 = 20060617;

fn small_request() -> SweepRequest {
    SweepRequest {
        workloads: vec!["specjbb".to_string()],
        algorithms: vec!["superset-agg".to_string(), "exact".to_string()],
        seeds: vec![SEED],
        accesses: 150,
        ..SweepRequest::default()
    }
}

fn collect_bytes(service: &SweepService, request: &SweepRequest) -> Vec<Vec<u8>> {
    service
        .submit(request)
        .expect("valid sweep")
        .collect()
        .results
        .into_iter()
        .map(|r| r.expect("job succeeds").bytes.to_vec())
        .collect()
}

#[test]
fn cached_results_survive_a_service_restart() {
    let dir = std::env::temp_dir().join(format!("flexsnoop-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let request = small_request();

    let first = SweepService::new(
        ServiceOptions::default(),
        ResultsCache::persistent(&dir).expect("cache dir"),
    );
    let cold = collect_bytes(&first, &request);
    assert_eq!(first.stats().executed, 2, "cold run executes every job");
    drop(first);

    // A fresh service over the same directory answers everything from the
    // sealed files, byte-for-byte, without executing a single job.
    let second = SweepService::new(
        ServiceOptions::default(),
        ResultsCache::persistent(&dir).expect("cache dir"),
    );
    let warm = collect_bytes(&second, &request);
    assert_eq!(second.stats().executed, 0, "warm run is pure cache");
    assert_eq!(second.stats().cache.hits, 2);
    assert_eq!(cold, warm, "restart changed cached bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_duplicate_submissions_coalesce_onto_one_execution() {
    let request = SweepRequest {
        algorithms: vec!["exact".to_string()],
        ..small_request()
    };
    let service = SweepService::new(ServiceOptions::default(), ResultsCache::in_memory());
    // Hold admission so every duplicate lands while the job is still
    // in flight — otherwise late submissions would hit the cache and the
    // dedup counter would be racy.
    service.hold();
    let all: Vec<Vec<Vec<u8>>> = thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let submission = service.submit(&request).expect("valid sweep");
                s.spawn(move || {
                    submission
                        .collect()
                        .results
                        .into_iter()
                        .map(|r| r.expect("job succeeds").bytes.to_vec())
                        .collect()
                })
            })
            .collect();
        service.release();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = service.stats();
    assert_eq!(stats.executed, 1, "one execution serves all four waiters");
    assert_eq!(stats.coalesced, 3, "the other three submissions coalesce");
    for other in &all[1..] {
        assert_eq!(&all[0], other, "coalesced waiters got different bytes");
    }
}

#[test]
fn cache_is_sound_across_executor_widths_and_queue_backends() {
    // The checker's cross-check: same sweep through 1-wide and 3-wide
    // services, a warm pass with zero re-runs, and direct service-free
    // recomputation under both event-queue backends.
    let summary = flexsnoop_checker::cachecheck::check_request(&small_request(), &[1, 3])
        .expect("cache determinism holds");
    assert!(summary.contains("0 re-runs"), "{summary}");
}

#[test]
fn socket_round_trip_streams_identical_results_cold_and_warm() {
    let sock = std::env::temp_dir().join(format!("flexsnoop-serve-it-{}.sock", std::process::id()));
    let service = SweepService::new(ServiceOptions::default(), ResultsCache::in_memory());
    let server = {
        let path = sock.clone();
        thread::spawn(move || serve_blocking(&path, &service))
    };
    let line = small_request().render_line();
    // Wait for the listener to bind, then sweep twice.
    let cold = loop {
        match request(&sock, &line) {
            Ok(reply) => break reply,
            Err(_) => thread::yield_now(),
        }
    };
    let warm = request(&sock, &line).expect("second sweep");
    assert!(cold.contains("\"computed\": 2"), "{cold}");
    assert!(warm.contains("\"cached\": 2"), "{warm}");
    assert_eq!(
        result_lines(&cold),
        result_lines(&warm),
        "cache hits changed the result stream"
    );
    request_shutdown(&sock).expect("shutdown");
    let summary = server.join().unwrap().expect("server exits cleanly");
    assert_eq!(summary.sweeps, 2);
}
