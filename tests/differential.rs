//! Differential smoke suite: the ring simulator against itself (queue
//! backends, executor widths) and against the directory baseline, over
//! the four Table 3 algorithms, with the per-retirement invariant oracle
//! armed.
//!
//! The smoke tests run in the normal `cargo test` budget; the
//! paper-scale sweep is `#[ignore]`d and runs in CI's scheduled job via
//! `cargo test --test differential -- --ignored`.

use flexsnoop_checker::{run_differential, DiffOptions, TABLE3_ALGORITHMS};
use flexsnoop_workload::profiles;
use flexsnoop_workload::WorkloadProfile;

fn smoke() -> DiffOptions {
    DiffOptions {
        accesses_per_core: 150,
        nodes: 4,
        threads: 4,
        ..DiffOptions::default()
    }
}

fn smoke_profiles() -> Vec<WorkloadProfile> {
    vec![
        profiles::specweb(),
        profiles::specjbb(),
        profiles::uniform_microbench(8, 150),
    ]
}

#[test]
fn table3_matrix_has_zero_divergences_on_three_profiles() {
    for profile in smoke_profiles() {
        let report = run_differential(&profile, 2026, &smoke())
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert!(report.is_clean(), "{}", report.render());
        // 4 algorithms × 2 queue backends × 2 executor widths.
        assert_eq!(report.ring_runs, TABLE3_ALGORITHMS.len() * 4);
    }
}

#[test]
fn differential_is_seed_stable() {
    // A second seed exercises different collision interleavings; the
    // guarantees must hold for any seed.
    for seed in [7, 99] {
        let report = run_differential(&profiles::specweb(), seed, &smoke()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }
}

#[test]
fn injected_protocol_bug_yields_pinpointed_report() {
    use flexsnoop::ProtocolMutation;
    let opts = DiffOptions {
        mutation: Some(ProtocolMutation::SkipSupplierDowngrade),
        ..smoke()
    };
    let report = run_differential(&profiles::specweb(), 2026, &opts).unwrap();
    assert!(!report.is_clean(), "the oracle must catch the mutation");
    let rendered = report.render();
    // The report names the violated invariant and walks the first
    // divergent transaction's timeline.
    assert!(
        rendered.contains("supplier") || rendered.contains("incompatible"),
        "{rendered}"
    );
    assert!(
        rendered.contains("first divergent transaction"),
        "{rendered}"
    );
}

#[test]
#[ignore = "paper-scale budget; run with -- --ignored"]
fn full_budget_differential_sweep() {
    let opts = DiffOptions::full();
    let mut profiles_under_test = smoke_profiles();
    profiles_under_test.push(profiles::splash2_apps().remove(0)); // barnes, 32 cores
    for profile in profiles_under_test {
        let report = run_differential(&profile, 2026, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert!(report.is_clean(), "{}", report.render());
    }
}
