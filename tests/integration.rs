//! Cross-crate integration tests: full simulations spanning the workload
//! generators, predictors, network models and the protocol engine.

use flexsnoop::{run_algorithms, run_workload, Algorithm, PredictorSpec};
use flexsnoop_workload::profiles;

/// Every paper algorithm completes every workload group and leaves the
/// machine coherent (coherence is validated inside the scenario tests; at
/// this level we assert the runs complete with sane counters).
#[test]
fn every_algorithm_completes_every_group() {
    let workloads = [
        profiles::splash2_apps().remove(0).with_accesses(600),
        profiles::specjbb().with_accesses(1_500),
        profiles::specweb().with_accesses(1_500),
    ];
    for workload in &workloads {
        for alg in Algorithm::PAPER_SET {
            let s = run_workload(workload, alg, None, 11)
                .unwrap_or_else(|e| panic!("{alg} on {}: {e}", workload.name));
            assert!(s.read_txns > 0, "{alg}/{}: no ring reads", workload.name);
            assert!(
                s.exec_cycles.as_u64() > 0,
                "{alg}/{}: zero exec time",
                workload.name
            );
            assert!(s.energy_nj() > 0.0);
            assert_eq!(
                s.read_txns,
                s.reads_cache_supplied + s.reads_from_memory,
                "{alg}/{}: every ring read is supplied by cache or memory",
                workload.name
            );
        }
    }
}

/// The three protocol-level inequalities of Table 1 / Table 3 that must
/// hold on any workload with at least some cache-to-cache supply.
#[test]
fn structural_inequalities_hold() {
    let workload = profiles::splash2_apps().remove(0).with_accesses(2_000);
    let results = run_algorithms(&workload, &Algorithm::PAPER_SET, 3);
    let get = |alg: Algorithm| {
        results
            .iter()
            .find(|(a, _)| *a == alg)
            .map(|(_, s)| s.clone())
            .unwrap()
    };
    let lazy = get(Algorithm::Lazy);
    let eager = get(Algorithm::Eager);
    let oracle = get(Algorithm::Oracle);
    let con = get(Algorithm::SupersetCon);
    let agg = get(Algorithm::SupersetAgg);
    let subset = get(Algorithm::Subset);
    let exact = get(Algorithm::Exact);

    // Eager snoops everything; nobody snoops more.
    assert_eq!(eager.snoops_per_read(), 7.0);
    for s in [&lazy, &oracle, &con, &agg, &subset, &exact] {
        assert!(s.snoops_per_read() <= 7.0 + 1e-9);
    }
    // Oracle snoops at most once per request.
    assert!(oracle.snoops_per_read() <= 1.0);
    // Con snoops no more than Agg (checks fewer predictors).
    assert!(con.snoops_per_read() <= agg.snoops_per_read() + 0.05);
    // Combined-message algorithms use exactly one full circulation.
    for s in [&lazy, &oracle, &con, &exact] {
        assert!((s.ring_hops_per_read() - 8.0).abs() < 1e-9);
    }
    // Split-message algorithms use more hops, bounded by 2 circulations.
    for s in [&eager, &agg, &subset] {
        assert!(s.ring_hops_per_read() > 8.0);
        assert!(s.ring_hops_per_read() <= 15.0 + 1e-9);
    }
    // Lazy is the slowest of the baseline trio.
    assert!(lazy.exec_cycles >= eager.exec_cycles);
    assert!(lazy.exec_cycles >= oracle.exec_cycles);
    // Eager burns the most energy of the non-Exact algorithms.
    for s in [&lazy, &oracle, &con, &agg] {
        assert!(s.energy_nj() <= eager.energy_nj());
    }
}

/// The predictor error-class contracts hold end-to-end on a real workload.
#[test]
fn predictor_error_classes_end_to_end() {
    let workload = profiles::splash2_apps().remove(0).with_accesses(1_500);
    let subset = run_workload(&workload, Algorithm::Subset, None, 17).unwrap();
    assert_eq!(subset.accuracy.false_positives, 0, "Subset: no FPs");
    let con = run_workload(&workload, Algorithm::SupersetCon, None, 17).unwrap();
    assert_eq!(con.accuracy.false_negatives, 0, "Superset: no FNs");
    let exact = run_workload(&workload, Algorithm::Exact, None, 17).unwrap();
    assert_eq!(exact.accuracy.false_positives, 0, "Exact: no FPs");
    assert_eq!(exact.accuracy.false_negatives, 0, "Exact: no FNs");
    let oracle = run_workload(&workload, Algorithm::Oracle, None, 17).unwrap();
    assert_eq!(oracle.accuracy.false_positives, 0);
    assert_eq!(oracle.accuracy.false_negatives, 0);
}

/// Only Exact downgrades; downgrades imply its supply fraction can only
/// drop relative to a downgrade-free algorithm on the same trace.
#[test]
fn only_exact_downgrades() {
    let workload = profiles::splash2_apps().remove(2).with_accesses(1_500); // fft
    for alg in Algorithm::PAPER_SET {
        let s = run_workload(&workload, alg, None, 23).unwrap();
        if alg == Algorithm::Exact {
            assert!(s.downgrades > 0, "fft must pressure the Exact table");
        } else {
            assert_eq!(s.downgrades, 0, "{alg} must not downgrade");
        }
    }
}

/// Parallel multi-algorithm runs agree with sequential runs.
#[test]
fn parallel_runner_matches_sequential() {
    let workload = profiles::specjbb().with_accesses(800);
    let parallel = run_algorithms(&workload, &[Algorithm::Lazy, Algorithm::Eager], 31);
    for (alg, p) in parallel {
        let s = run_workload(&workload, alg, None, 31).unwrap();
        assert_eq!(p.exec_cycles, s.exec_cycles, "{alg}");
        assert_eq!(p.read_snoops, s.read_snoops, "{alg}");
    }
}

/// Predictor-size sensitivity is wired through: bigger Subset tables mean
/// fewer false negatives (monotone within noise).
#[test]
fn subset_size_reduces_false_negatives() {
    let workload = profiles::splash2_apps().remove(0).with_accesses(2_500);
    let fn_rate = |spec| {
        let s = run_workload(&workload, Algorithm::Subset, Some(spec), 41).unwrap();
        s.accuracy.fraction_false_negative()
    };
    let small = fn_rate(PredictorSpec::SUB512);
    let large = fn_rate(PredictorSpec::SUB8K);
    assert!(
        large <= small + 1e-9,
        "8K-entry table should not have more FNs ({large} vs {small})"
    );
}

/// SPECjbb's construction satisfies the paper's Figure 11 observation:
/// there is rarely a supplier node.
#[test]
fn specjbb_rarely_finds_a_supplier() {
    let s = run_workload(
        &profiles::specjbb().with_accesses(3_000),
        Algorithm::Lazy,
        None,
        43,
    )
    .unwrap();
    assert!(
        s.cache_supply_fraction() < 0.25,
        "supply fraction {} too high for SPECjbb",
        s.cache_supply_fraction()
    );
}

/// SPLASH-2's construction satisfies the same observation in reverse:
/// a read miss usually finds a supplier.
#[test]
fn splash_usually_finds_a_supplier() {
    let s = run_workload(
        &profiles::splash2_apps().remove(0).with_accesses(3_000),
        Algorithm::Lazy,
        None,
        43,
    )
    .unwrap();
    assert!(
        s.cache_supply_fraction() > 0.5,
        "supply fraction {} too low for barnes",
        s.cache_supply_fraction()
    );
}

/// Full-size (4 cores/CMP) runs leave the machine globally coherent for
/// every algorithm — this is the end-to-end Figure 2(b) check.
#[test]
fn full_runs_end_coherent() {
    use flexsnoop::{energy_model_for, MachineConfig, Simulator};
    use flexsnoop_workload::AccessStream;
    let workload = profiles::splash2_apps().remove(0).with_accesses(1_200);
    for alg in Algorithm::PAPER_SET {
        let machine = MachineConfig::isca2006(4);
        let streams: Vec<Box<dyn AccessStream + Send>> = workload
            .streams(19)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        let predictor = alg.default_predictor();
        let mut sim = Simulator::new(
            machine,
            alg,
            predictor,
            energy_model_for(&predictor),
            streams,
            1_200,
        )
        .unwrap();
        sim.run();
        sim.validate_coherence()
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
    }
}
