//! Determinism regression tests: the performance machinery (bucketed
//! event queue, bounded executor) must never change simulation results.
//!
//! Every test compares complete [`RunStats`] values — counters, latency
//! histogram, energy account and exact execution cycles — so any drift in
//! event ordering shows up as a hard failure, not a statistical blip.

use flexsnoop::{run_algorithms, Algorithm, RunStats, Simulator};
use flexsnoop_engine::executor::set_default_threads;
use flexsnoop_engine::QueueKind;
use flexsnoop_workload::profiles;

const SEED: u64 = 20060617;

fn run_with_queue(kind: QueueKind, algorithm: Algorithm, seed: u64) -> RunStats {
    let workload = profiles::specweb().with_accesses(600);
    let mut sim = Simulator::for_workload(&workload, algorithm, None, seed).expect("valid config");
    sim.use_event_queue(kind);
    sim.run()
}

#[test]
fn heap_and_bucketed_queues_give_identical_stats() {
    // The two queue implementations must dispatch events in the identical
    // (time, insertion order) sequence for every algorithm class: a pure
    // forwarder, a filtering predictor user, and the adaptive superset.
    for algorithm in [Algorithm::Lazy, Algorithm::Subset, Algorithm::SupersetAgg] {
        let heap = run_with_queue(QueueKind::Heap, algorithm, SEED);
        let bucketed = run_with_queue(QueueKind::Bucketed, algorithm, SEED);
        assert_eq!(heap, bucketed, "{algorithm}: queue kind changed results");
        assert!(heap.events > 0, "{algorithm}: no events dispatched");
    }
}

#[test]
fn queue_choice_is_deterministic_across_repeats() {
    let a = run_with_queue(QueueKind::Bucketed, Algorithm::SupersetCon, SEED);
    let b = run_with_queue(QueueKind::Bucketed, Algorithm::SupersetCon, SEED);
    assert_eq!(a, b, "same seed must reproduce bit-identical stats");
}

#[test]
fn executor_width_does_not_change_results() {
    // run_algorithms fans out on the shared executor; pinning the pool to
    // one worker and then to four must return the same rows in the same
    // order. Restore the auto default afterwards so other tests in this
    // binary are unaffected.
    let workload = profiles::specjbb().with_accesses(400);
    let algorithms = [Algorithm::Lazy, Algorithm::Eager, Algorithm::SupersetAgg];
    set_default_threads(1);
    let serial = run_algorithms(&workload, &algorithms, SEED);
    set_default_threads(4);
    let parallel = run_algorithms(&workload, &algorithms, SEED);
    set_default_threads(0);
    assert_eq!(serial.len(), parallel.len());
    for ((alg_a, stats_a), (alg_b, stats_b)) in serial.iter().zip(&parallel) {
        assert_eq!(alg_a, alg_b, "row order must not depend on worker count");
        assert_eq!(stats_a, stats_b, "{alg_a}: thread count changed results");
    }
}
