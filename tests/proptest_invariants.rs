//! Randomized tests on the core data structures and on the protocol's
//! end-to-end invariants.
//!
//! These were originally written against `proptest`, which cannot be
//! fetched in the offline build environment; they now drive the same
//! invariants from the engine's own deterministic [`SplitMix64`] generator,
//! so every run explores the same (fixed, seeded) input space.

use flexsnoop_engine::{Cycle, Cycles, Resource, SplitMix64};
use flexsnoop_mem::{CacheGeometry, CoherState, LineAddr, SetAssocCache};
use flexsnoop_predictor::{
    BloomFilter, BloomSpec, SubsetPredictor, SupersetPredictor, SupplierPredictor,
};
use flexsnoop_workload::{AccessStream, MemAccess};

const CASES: u64 = 48;

// ---------------------------------------------------------------------------
// Bloom filter: never a false negative, whatever the op sequence.
// ---------------------------------------------------------------------------

#[test]
fn bloom_filter_has_no_false_negatives() {
    let mut rng = SplitMix64::new(0xb100_f117);
    for _ in 0..CASES {
        let mut filter = BloomFilter::new(BloomSpec::y_filter());
        let mut live: Vec<u64> = Vec::new();
        let ops = rng.next_below(200);
        for _ in 0..ops {
            if rng.next_below(2) == 0 {
                let line = rng.next_below(1 << 24);
                filter.insert(LineAddr(line));
                live.push(line);
            } else if !live.is_empty() {
                let idx = rng.next_below(live.len() as u64) as usize;
                let line = live.swap_remove(idx);
                filter.remove(LineAddr(line));
            }
            for &l in &live {
                assert!(filter.may_contain(LineAddr(l)), "false negative for {l:#x}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Subset predictor: a positive answer is always correct (no FPs).
// ---------------------------------------------------------------------------

#[test]
fn subset_predictor_has_no_false_positives() {
    let mut rng = SplitMix64::new(0x5ab_5e7 ^ 0xffff);
    for _ in 0..CASES {
        let mut p = SubsetPredictor::new(CacheGeometry::from_entries(16, 2), 20);
        let mut truth = std::collections::HashSet::new();
        for _ in 0..rng.next_below(300) {
            let line = rng.next_below(512);
            if rng.next_below(2) == 0 {
                p.supplier_gained(LineAddr(line));
                truth.insert(line);
            } else {
                p.supplier_lost(LineAddr(line));
                truth.remove(&line);
            }
        }
        for _ in 0..50 {
            let probe = rng.next_below(512);
            if p.predict(LineAddr(probe)) {
                assert!(truth.contains(&probe), "false positive for {probe}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Superset predictor: a negative answer is always correct (no FNs),
// including under feedback training of the Exclude cache.
// ---------------------------------------------------------------------------

#[test]
fn superset_predictor_has_no_false_negatives() {
    let mut rng = SplitMix64::new(0x50_bee5);
    for _ in 0..CASES {
        let mut p = SupersetPredictor::y512();
        let mut truth = std::collections::HashSet::new();
        for _ in 0..rng.next_below(300) {
            let line = rng.next_below(512);
            match rng.next_below(3) {
                0 => {
                    p.supplier_gained(LineAddr(line));
                    truth.insert(line);
                }
                1 => {
                    if truth.remove(&line) {
                        p.supplier_lost(LineAddr(line));
                    }
                }
                _ => {
                    // Honest feedback only: report ground truth.
                    p.feedback(LineAddr(line), truth.contains(&line));
                }
            }
        }
        for _ in 0..50 {
            let probe = rng.next_below(512);
            if truth.contains(&probe) {
                assert!(p.predict(LineAddr(probe)), "false negative for {probe}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Set-associative cache: size bound, membership, and LRU sanity.
// ---------------------------------------------------------------------------

#[test]
fn cache_never_exceeds_capacity_and_tracks_membership() {
    let mut rng = SplitMix64::new(0x000c_ac4e);
    for _ in 0..CASES {
        let geometry = CacheGeometry::from_entries(32, 4);
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(geometry);
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..rng.next_below(400) {
            let line = rng.next_below(256);
            if rng.next_below(2) == 0 {
                if let Some((victim, _)) = cache.insert(LineAddr(line), line * 3) {
                    shadow.remove(&victim.0);
                }
                shadow.insert(line, line * 3);
            } else {
                cache.remove(LineAddr(line));
                shadow.remove(&line);
            }
            assert!(cache.len() <= geometry.entries());
            assert_eq!(cache.len(), shadow.len());
        }
        for (&line, &value) in &shadow {
            assert_eq!(cache.peek(LineAddr(line)), Some(&value));
        }
    }
}

// ---------------------------------------------------------------------------
// Resource: grants never overlap and never start before arrival.
// ---------------------------------------------------------------------------

#[test]
fn resource_grants_are_serial_and_causal() {
    let mut rng = SplitMix64::new(0x04e5_05ce);
    for _ in 0..CASES {
        let mut reqs: Vec<(u64, u64)> = (0..1 + rng.next_below(50))
            .map(|_| (rng.next_below(10_000), 1 + rng.next_below(99)))
            .collect();
        reqs.sort_by_key(|&(arrival, _)| arrival);
        let mut resource = Resource::new();
        let mut last_end = Cycle::ZERO;
        for (arrival, service) in reqs {
            let grant = resource.acquire(Cycle::new(arrival), Cycles(service));
            assert!(grant.start >= Cycle::new(arrival), "starts before arrival");
            assert!(grant.start >= last_end, "grants overlap");
            assert_eq!(grant.end, grant.start + Cycles(service));
            last_end = grant.end;
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end protocol invariants on random small workloads: the final
// machine state is coherent and the counters are internally consistent,
// for every algorithm.
// ---------------------------------------------------------------------------

#[test]
fn random_workloads_stay_coherent() {
    use flexsnoop::{energy_model_for, Algorithm, MachineConfig, Simulator, VecStream};
    let mut rng = SplitMix64::new(0xc0_4e8e17);
    for case in 0..CASES {
        let algorithm = Algorithm::PAPER_SET[(case % 7) as usize];
        let machine = MachineConfig::isca2006(1);
        // Distribute the generated accesses round-robin over 8 cores.
        let mut scripts: Vec<Vec<MemAccess>> = vec![Vec::new(); 8];
        let n = 8 + rng.next_below(112);
        for i in 0..n {
            scripts[(i % 8) as usize].push(MemAccess {
                line: LineAddr(rng.next_below(64)),
                write: rng.next_below(2) == 0,
                think: Cycles(rng.next_below(8)),
            });
        }
        let limit = scripts.iter().map(|s| s.len() as u64).max().unwrap().max(1);
        let streams: Vec<Box<dyn AccessStream + Send>> = scripts
            .into_iter()
            .map(|s| Box::new(VecStream::new(s)) as Box<dyn AccessStream + Send>)
            .collect();
        let predictor = algorithm.default_predictor();
        let mut sim = Simulator::new(
            machine,
            algorithm,
            predictor,
            energy_model_for(&predictor),
            streams,
            limit,
        )
        .unwrap();
        let stats = sim.run();
        assert!(
            sim.validate_coherence().is_ok(),
            "{algorithm}: {:?}",
            sim.validate_coherence()
        );
        assert_eq!(
            stats.read_txns,
            stats.reads_cache_supplied + stats.reads_from_memory
        );
        assert!(stats.read_snoops <= stats.read_txns * 7 + stats.collisions * 7);
    }
}

// ---------------------------------------------------------------------------
// Fault tolerance: under ANY bounded random fault schedule, every Table 3
// algorithm with recovery enabled still retires every transaction, keeps
// the invariant oracle clean, and leaves a coherent machine.
// ---------------------------------------------------------------------------

#[test]
fn bounded_fault_schedules_always_recover() {
    use flexsnoop::{energy_model_for, Algorithm, FaultPlan, MachineConfig, Simulator, VecStream};
    const TABLE3: [Algorithm; 4] = [
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ];
    let mut rng = SplitMix64::new(0xFA17_5EED);
    for case in 0..CASES {
        let algorithm = TABLE3[(case % 4) as usize];
        let machine = MachineConfig::isca2006(1);
        let plan = FaultPlan::random(rng.next_u64(), machine.nodes, machine.ring.rings);
        let mut scripts: Vec<Vec<MemAccess>> = vec![Vec::new(); machine.nodes];
        let n = 8 + rng.next_below(112);
        for i in 0..n {
            scripts[(i as usize) % machine.nodes].push(MemAccess {
                line: LineAddr(rng.next_below(64)),
                write: rng.next_below(2) == 0,
                think: Cycles(rng.next_below(8)),
            });
        }
        let limit = scripts.iter().map(|s| s.len() as u64).max().unwrap().max(1);
        let streams: Vec<Box<dyn AccessStream + Send>> = scripts
            .into_iter()
            .map(|s| Box::new(VecStream::new(s)) as Box<dyn AccessStream + Send>)
            .collect();
        let predictor = algorithm.default_predictor();
        let mut sim = Simulator::new(
            machine,
            algorithm,
            predictor,
            energy_model_for(&predictor),
            streams,
            limit,
        )
        .unwrap();
        sim.enable_invariant_checks();
        sim.set_fault_plan(plan.clone());
        sim.set_recovery_enabled(true);
        let stats = sim.run();
        let ctx = format!("{algorithm} under `{}`", plan.describe());
        assert!(
            sim.violations().is_empty(),
            "{ctx}: oracle violation {}",
            sim.violations()[0]
        );
        assert!(
            sim.validate_coherence().is_ok(),
            "{ctx}: {:?}",
            sim.validate_coherence()
        );
        assert_eq!(sim.in_flight(), 0, "{ctx}: transactions lost on the ring");
        assert_eq!(
            stats.robustness.unfinished_cores, 0,
            "{ctx}: cores stranded"
        );
        // Retried reads may be supplied once per surviving circulation, so
        // the lossless equality relaxes to an inequality under faults.
        assert!(
            stats.reads_cache_supplied + stats.reads_from_memory >= stats.read_txns,
            "{ctx}: some read retired without a supplier"
        );
    }
}

// ---------------------------------------------------------------------------
// Coherence-state algebra: supply transitions always land in a supplier
// state, downgrades always leave one.
// ---------------------------------------------------------------------------

#[test]
fn supply_keeps_supplier_status() {
    for &state in &CoherState::ALL {
        if state.is_supplier() {
            assert!(state.after_remote_supply().is_supplier());
            let (down, _) = state.after_downgrade();
            assert!(!down.is_supplier());
            assert!(down.is_valid(), "downgraded lines stay cached");
        }
        if state.supplies_locally() {
            assert!(state.after_local_supply().supplies_locally());
        }
    }
}

// ---------------------------------------------------------------------------
// Adaptive timeouts: whatever congestion a bounded fault schedule creates,
// no requester's EWMA timeout estimate may fall below the unloaded ring
// latency — the estimator is clamped to physics (DESIGN.md §8).
// ---------------------------------------------------------------------------

#[test]
fn ewma_timeout_estimates_never_undercut_the_ring_floor() {
    use flexsnoop::{energy_model_for, Algorithm, FaultPlan, MachineConfig, Simulator, VecStream};
    use flexsnoop_mem::CmpId;
    const TABLE3: [Algorithm; 4] = [
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ];
    let mut rng = SplitMix64::new(0xE3A4_F100);
    for case in 0..CASES {
        let algorithm = TABLE3[(case % 4) as usize];
        let machine = MachineConfig::isca2006(1);
        let plan = FaultPlan::random(rng.next_u64(), machine.nodes, machine.ring.rings);
        let mut scripts: Vec<Vec<MemAccess>> = vec![Vec::new(); machine.nodes];
        let n = 8 + rng.next_below(112);
        for i in 0..n {
            scripts[(i as usize) % machine.nodes].push(MemAccess {
                line: LineAddr(rng.next_below(64)),
                write: rng.next_below(2) == 0,
                think: Cycles(rng.next_below(8)),
            });
        }
        let limit = scripts.iter().map(|s| s.len() as u64).max().unwrap().max(1);
        let streams: Vec<Box<dyn AccessStream + Send>> = scripts
            .into_iter()
            .map(|s| Box::new(VecStream::new(s)) as Box<dyn AccessStream + Send>)
            .collect();
        let predictor = algorithm.default_predictor();
        let mut sim = Simulator::new(
            machine,
            algorithm,
            predictor,
            energy_model_for(&predictor),
            streams,
            limit,
        )
        .unwrap();
        sim.set_fault_plan(plan.clone());
        sim.set_recovery_enabled(true);
        let stats = sim.run();
        let ctx = format!("{algorithm} under `{}`", plan.describe());
        assert_eq!(sim.in_flight(), 0, "{ctx}: transactions lost on the ring");
        assert_eq!(
            stats.robustness.unfinished_cores, 0,
            "{ctx}: cores stranded"
        );
        let floor = sim.timeout_floor();
        assert!(floor.0 > 0, "{ctx}: armed plan left the floor unset");
        for node in 0..sim.config().nodes {
            let estimate = sim.timeout_estimate(CmpId(node));
            assert!(
                estimate >= floor,
                "{ctx}: node {node} estimate {estimate:?} fell below floor {floor:?} \
                 after {} rtt samples",
                stats.robustness.rtt_samples
            );
        }
    }
}
