//! Property-based tests on the core data structures and on the protocol's
//! end-to-end invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use flexsnoop_engine::{Cycle, Cycles, Resource};
use flexsnoop_mem::{CacheGeometry, CoherState, LineAddr, SetAssocCache};
use flexsnoop_predictor::{
    BloomFilter, BloomSpec, SubsetPredictor, SupersetPredictor, SupplierPredictor,
};
use flexsnoop_workload::{AccessStream, MemAccess};

// ---------------------------------------------------------------------------
// Bloom filter: never a false negative, whatever the op sequence.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BloomOp {
    Insert(u64),
    Remove(usize), // index into the live multiset
}

fn bloom_ops() -> impl Strategy<Value = Vec<BloomOp>> {
    vec(
        prop_oneof![
            (0u64..1u64 << 24).prop_map(BloomOp::Insert),
            (0usize..64).prop_map(BloomOp::Remove),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn bloom_filter_has_no_false_negatives(ops in bloom_ops()) {
        let mut filter = BloomFilter::new(BloomSpec::y_filter());
        let mut live: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                BloomOp::Insert(line) => {
                    filter.insert(LineAddr(line));
                    live.push(line);
                }
                BloomOp::Remove(idx) => {
                    if !live.is_empty() {
                        let line = live.swap_remove(idx % live.len());
                        filter.remove(LineAddr(line));
                    }
                }
            }
            for &l in &live {
                prop_assert!(filter.may_contain(LineAddr(l)),
                    "false negative for {l:#x}");
            }
        }
    }

    // ------------------------------------------------------------------
    // Subset predictor: a positive answer is always correct (no FPs).
    // ------------------------------------------------------------------
    #[test]
    fn subset_predictor_has_no_false_positives(
        ops in vec((0u64..512, any::<bool>()), 0..300),
        probes in vec(0u64..512, 0..50),
    ) {
        let mut p = SubsetPredictor::new(CacheGeometry::from_entries(16, 2), 20);
        let mut truth = std::collections::HashSet::new();
        for (line, gain) in ops {
            if gain {
                p.supplier_gained(LineAddr(line));
                truth.insert(line);
            } else {
                p.supplier_lost(LineAddr(line));
                truth.remove(&line);
            }
        }
        for probe in probes {
            if p.predict(LineAddr(probe)) {
                prop_assert!(truth.contains(&probe),
                    "false positive for {probe}");
            }
        }
    }

    // ------------------------------------------------------------------
    // Superset predictor: a negative answer is always correct (no FNs),
    // including under feedback training of the Exclude cache.
    // ------------------------------------------------------------------
    #[test]
    fn superset_predictor_has_no_false_negatives(
        ops in vec((0u64..512, 0u8..3), 0..300),
        probes in vec(0u64..512, 0..50),
    ) {
        let mut p = SupersetPredictor::y512();
        let mut truth = std::collections::HashSet::new();
        for (line, op) in ops {
            match op {
                0 => {
                    p.supplier_gained(LineAddr(line));
                    truth.insert(line);
                }
                1 => {
                    if truth.remove(&line) {
                        p.supplier_lost(LineAddr(line));
                    }
                }
                _ => {
                    // Honest feedback only: report ground truth.
                    p.feedback(LineAddr(line), truth.contains(&line));
                }
            }
        }
        for probe in probes {
            if truth.contains(&probe) {
                prop_assert!(p.predict(LineAddr(probe)),
                    "false negative for {probe}");
            }
        }
    }

    // ------------------------------------------------------------------
    // Set-associative cache: size bound, membership, and LRU sanity.
    // ------------------------------------------------------------------
    #[test]
    fn cache_never_exceeds_capacity_and_tracks_membership(
        ops in vec((0u64..256, any::<bool>()), 0..400),
    ) {
        let geometry = CacheGeometry::from_entries(32, 4);
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(geometry);
        let mut shadow = std::collections::HashMap::new();
        for (line, insert) in ops {
            if insert {
                if let Some((victim, _)) = cache.insert(LineAddr(line), line * 3) {
                    shadow.remove(&victim.0);
                }
                shadow.insert(line, line * 3);
            } else {
                cache.remove(LineAddr(line));
                shadow.remove(&line);
            }
            prop_assert!(cache.len() <= geometry.entries());
            prop_assert_eq!(cache.len(), shadow.len());
        }
        for (&line, &value) in &shadow {
            prop_assert_eq!(cache.peek(LineAddr(line)), Some(&value));
        }
    }

    // ------------------------------------------------------------------
    // Resource: grants never overlap and never start before arrival.
    // ------------------------------------------------------------------
    #[test]
    fn resource_grants_are_serial_and_causal(
        reqs in vec((0u64..10_000, 1u64..100), 1..50),
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|&(arrival, _)| arrival);
        let mut resource = Resource::new();
        let mut last_end = Cycle::ZERO;
        for (arrival, service) in sorted {
            let grant = resource.acquire(Cycle::new(arrival), Cycles(service));
            prop_assert!(grant.start >= Cycle::new(arrival), "starts before arrival");
            prop_assert!(grant.start >= last_end, "grants overlap");
            prop_assert_eq!(grant.end, grant.start + Cycles(service));
            last_end = grant.end;
        }
    }

    // ------------------------------------------------------------------
    // End-to-end protocol invariants on random small workloads: the final
    // machine state is coherent and the counters are internally
    // consistent, for every algorithm.
    // ------------------------------------------------------------------
    #[test]
    fn random_workloads_stay_coherent(
        accesses in vec((0u64..64, any::<bool>(), 0u64..8), 8..120),
        alg_idx in 0usize..7,
    ) {
        use flexsnoop::{energy_model_for, Algorithm, MachineConfig, Simulator, VecStream};
        let algorithm = Algorithm::PAPER_SET[alg_idx];
        let machine = MachineConfig::isca2006(1);
        // Distribute the generated accesses round-robin over 8 cores.
        let mut scripts: Vec<Vec<MemAccess>> = vec![Vec::new(); 8];
        let mut limit = 1u64;
        for (i, (line, write, think)) in accesses.iter().enumerate() {
            scripts[i % 8].push(MemAccess {
                line: LineAddr(*line),
                write: *write,
                think: Cycles(*think),
            });
        }
        for s in &scripts {
            limit = limit.max(s.len() as u64);
        }
        let streams: Vec<Box<dyn AccessStream + Send>> = scripts
            .into_iter()
            .map(|s| Box::new(VecStream::new(s)) as Box<dyn AccessStream + Send>)
            .collect();
        let predictor = algorithm.default_predictor();
        let mut sim = Simulator::new(
            machine,
            algorithm,
            predictor,
            energy_model_for(&predictor),
            streams,
            limit,
        ).unwrap();
        let stats = sim.run();
        prop_assert!(sim.validate_coherence().is_ok(),
            "{algorithm}: {:?}", sim.validate_coherence());
        prop_assert_eq!(
            stats.read_txns,
            stats.reads_cache_supplied + stats.reads_from_memory
        );
        prop_assert!(stats.read_snoops <= stats.read_txns * 7 + stats.collisions * 7);
    }

    // ------------------------------------------------------------------
    // Coherence-state algebra: supply transitions always land in a
    // supplier state, downgrades always leave one.
    // ------------------------------------------------------------------
    #[test]
    fn supply_keeps_supplier_status(state_idx in 0usize..7) {
        let state = CoherState::ALL[state_idx];
        if state.is_supplier() {
            prop_assert!(state.after_remote_supply().is_supplier());
            let (down, _) = state.after_downgrade();
            prop_assert!(!down.is_supplier());
            prop_assert!(down.is_valid(), "downgraded lines stay cached");
        }
        if state.supplies_locally() {
            prop_assert!(state.after_local_supply().supplies_locally());
        }
    }
}
