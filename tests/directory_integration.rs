//! Cross-protocol integration: the directory baseline against the ring on
//! identical traces and hardware.

use flexsnoop::{run_workload, Algorithm};
use flexsnoop_directory::DirSimulator;
use flexsnoop_workload::profiles;

const SEED: u64 = 4242;

/// Every workload group completes coherently under the directory protocol
/// with internally consistent accounting.
#[test]
fn directory_completes_every_group() {
    for p in [
        profiles::splash2_apps().remove(0).with_accesses(800),
        profiles::specjbb().with_accesses(1_500),
        profiles::specweb().with_accesses(1_500),
    ] {
        let mut sim =
            DirSimulator::for_workload(&p, SEED, 8).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let s = sim.run();
        sim.validate_coherence()
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(s.read_txns > 0, "{}", p.name);
        assert_eq!(
            s.read_txns,
            s.reads_two_hop + s.reads_three_hop,
            "{}: every read is 2-hop or 3-hop",
            p.name
        );
        assert!(s.energy_nj() > 0.0);
    }
}

/// Dirty sharing shows up as 3-hop reads exactly where the workloads have
/// producer-consumer traffic.
#[test]
fn three_hop_fraction_tracks_dirty_sharing() {
    let frac = |p: flexsnoop_workload::WorkloadProfile| {
        let mut sim = DirSimulator::for_workload(&p, SEED, 8).unwrap();
        sim.run().three_hop_fraction()
    };
    let splash = frac(profiles::splash2_apps().remove(0).with_accesses(2_000));
    let jbb = frac(profiles::specjbb().with_accesses(2_000));
    assert!(
        splash > jbb,
        "barnes ({splash:.2}) must see more dirty forwards than specjbb ({jbb:.2})"
    );
}

/// The §2.1 trade-off is visible: on a memory-bound workload the
/// directory's 2-hop path beats the ring's circulation-then-memory; on a
/// sharing-heavy workload the ring's direct supply is competitive.
#[test]
fn protocol_tradeoff_matches_section_2_1() {
    let jbb = profiles::specjbb().with_accesses(3_000);
    let ring = run_workload(&jbb, Algorithm::SupersetAgg, None, SEED).unwrap();
    let mut dir_sim = DirSimulator::for_workload(&jbb, SEED, 8).unwrap();
    let dir = dir_sim.run();
    assert!(
        dir.read_latency.mean() < ring.read_latency.mean(),
        "memory-bound: directory ({:.0}) should beat the ring ({:.0})",
        dir.read_latency.mean(),
        ring.read_latency.mean()
    );

    let barnes = profiles::splash2_apps().remove(0).with_accesses(3_000);
    let ring = run_workload(&barnes, Algorithm::SupersetAgg, None, SEED).unwrap();
    let mut dir_sim = DirSimulator::for_workload(&barnes, SEED, 8).unwrap();
    let dir = dir_sim.run();
    assert!(
        ring.read_latency.mean() < dir.read_latency.mean() * 1.1,
        "sharing-heavy: the ring ({:.0}) must be at least competitive ({:.0})",
        ring.read_latency.mean(),
        dir.read_latency.mean()
    );
}

/// Directory runs are deterministic and scale to other node counts.
#[test]
fn directory_scales_and_reproduces() {
    let p = profiles::uniform_microbench(4, 800);
    let mut a = DirSimulator::for_workload(&p, 9, 4).unwrap();
    let sa = a.run();
    let mut b = DirSimulator::for_workload(&p, 9, 4).unwrap();
    let sb = b.run();
    assert_eq!(sa.exec_cycles, sb.exec_cycles);
    assert!(
        DirSimulator::for_workload(&p, 9, 3).is_err(),
        "4 cores on 3 nodes"
    );
}
