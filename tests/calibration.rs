//! Executable calibration contract: the synthetic workloads must keep the
//! observable properties the figures were calibrated against (DESIGN.md's
//! substitution argument). If a profile edit drifts away from the paper's
//! workload behaviour, these tests fail before the figures silently bend.

use flexsnoop::{run_workload, Algorithm};
use flexsnoop_workload::{profiles, WorkloadGroup};

const ACCESSES: u64 = 2_500;
const SEED: u64 = 20060617;

/// Group-level supply ordering (Figure 11's perfect-predictor shapes):
/// SPLASH-2 finds suppliers most often, SPECweb in between, SPECjbb
/// rarely.
#[test]
fn supply_fraction_ordering_matches_figure_11() {
    let mean_supply = |group: WorkloadGroup| {
        let profiles: Vec<_> = profiles::all()
            .into_iter()
            .filter(|p| p.group == group)
            .collect();
        let sum: f64 = profiles
            .iter()
            .map(|p| {
                run_workload(
                    &p.clone().with_accesses(ACCESSES),
                    Algorithm::Lazy,
                    None,
                    SEED,
                )
                .unwrap()
                .cache_supply_fraction()
            })
            .sum();
        sum / profiles.len() as f64
    };
    let splash = mean_supply(WorkloadGroup::Splash2);
    let web = mean_supply(WorkloadGroup::SpecWeb);
    let jbb = mean_supply(WorkloadGroup::SpecJbb);
    assert!(
        splash > web && web > jbb,
        "supply ordering violated: splash={splash:.2} web={web:.2} jbb={jbb:.2}"
    );
    assert!(jbb < 0.2, "SPECjbb must rarely find a supplier ({jbb:.2})");
    // Short calibration runs are cold-start heavy; the full figure runs
    // (12k accesses) sit near 0.55-0.70.
    assert!(
        splash > 0.38,
        "SPLASH-2 must usually find one ({splash:.2})"
    );
}

/// Figure 6's Lazy anchor: between 4.5 and 7 snoops per request on every
/// workload (the supplier sits a few nodes away; memory-bound requests
/// walk the whole ring).
#[test]
fn lazy_snoop_counts_stay_in_the_paper_band() {
    for p in profiles::all() {
        let s = run_workload(
            &p.clone().with_accesses(ACCESSES),
            Algorithm::Lazy,
            None,
            SEED,
        )
        .unwrap();
        let snoops = s.snoops_per_read();
        assert!(
            (4.0..=7.0).contains(&snoops),
            "{}: Lazy snoops/read {snoops:.2} outside the Figure 6 band",
            p.name
        );
    }
}

/// Every profile produces enough ring traffic to measure (no degenerate
/// all-hits workloads) but is not pathologically miss-bound either.
#[test]
fn ring_read_rates_are_sane() {
    for p in profiles::all() {
        let s = run_workload(
            &p.clone().with_accesses(ACCESSES),
            Algorithm::Lazy,
            None,
            SEED,
        )
        .unwrap();
        let accesses = p.cores as u64 * ACCESSES;
        let rate = s.read_txns as f64 / accesses as f64;
        assert!(
            (0.02..=0.7).contains(&rate),
            "{}: ring reads per access = {rate:.3}",
            p.name
        );
    }
}

/// The write-heavy apps that drive Exact's downgrades must actually
/// pressure the 2K-entry table; the sharing-heavy apps must not dominate
/// it (the Figure 10 contrast).
#[test]
fn exact_pressure_varies_across_apps() {
    let dg_rate = |name: &str| {
        let p = profiles::splash2_apps()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap()
            .with_accesses(ACCESSES);
        let s = run_workload(&p, Algorithm::Exact, None, SEED).unwrap();
        s.downgrades as f64 / s.read_txns as f64
    };
    let heavy = dg_rate("radix");
    let light = dg_rate("raytrace");
    assert!(
        heavy > light,
        "radix ({heavy:.2}) must out-pressure raytrace ({light:.2})"
    );
    assert!(
        heavy > 0.3,
        "radix must thrash the Exact table ({heavy:.2})"
    );
}

/// Think-time scaling keeps the Lazy-to-SupersetAgg gap in the paper's
/// 6-16% range at the suite level (the Figure 8 calibration target).
#[test]
fn execution_gap_is_calibrated() {
    let mut ratios = Vec::new();
    for p in [
        profiles::splash2_apps().remove(0),
        profiles::specjbb(),
        profiles::specweb(),
    ] {
        let p = p.with_accesses(4_000);
        let lazy = run_workload(&p, Algorithm::Lazy, None, SEED).unwrap();
        let agg = run_workload(&p, Algorithm::SupersetAgg, None, SEED).unwrap();
        ratios.push((p.name.clone(), agg.exec_time() / lazy.exec_time()));
    }
    for (name, r) in ratios {
        assert!(
            (0.80..=0.97).contains(&r),
            "{name}: SupersetAgg/Lazy = {r:.3} outside the calibrated band"
        );
    }
}
