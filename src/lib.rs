//! Umbrella crate for the flexsnoop reproduction repository.
//!
//! This crate exists to host the runnable [examples] and the cross-crate
//! integration tests in `tests/`. The actual library surface lives in the
//! [`flexsnoop`] facade crate and the substrate crates it re-exports.
//!
//! [examples]: https://github.com/flexsnoop/flexsnoop/tree/main/examples

pub use flexsnoop;
