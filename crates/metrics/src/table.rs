//! Plain-text and CSV table rendering for the benchmark harness.
//!
//! The benches print each reproduced paper table/figure as an aligned text
//! table (for humans) and can emit CSV (for plotting). No external
//! dependencies — results must be readable straight off a terminal.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use flexsnoop_metrics::Table;
///
/// let mut t = Table::new(vec!["algorithm".into(), "snoops".into()]);
/// t.row(vec!["Lazy".into(), "3.52".into()]);
/// let text = t.render();
/// assert!(text.contains("Lazy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(headers: &[&str]) -> Self {
        Self::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of display-able values.
    pub fn row_display<I, D>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = D>,
        D: std::fmt::Display,
    {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table with a header separator.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = *w);
            }
            // Trim the padding of the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        emit(&mut out, &sep);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (no quoting: cells must not contain commas).
    ///
    /// # Panics
    ///
    /// Panics if any cell contains a comma or newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for cells in std::iter::once(&self.headers).chain(&self.rows) {
            for cell in cells {
                assert!(
                    !cell.contains(',') && !cell.contains('\n'),
                    "CSV cells must not contain commas or newlines: {cell:?}"
                );
            }
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places (the paper's usual precision).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with sign, e.g. `-14%`.
pub fn fmt_pct_delta(ratio: f64) -> String {
    format!("{:+.0}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::with_columns(&["alg", "value"]);
        t.row(vec!["Lazy".into(), "1.00".into()]);
        t.row(vec!["SupersetAgg".into(), "0.86".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("alg"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "1.00" and "0.86" start at the same offset.
        let off1 = lines[2].find("1.00").unwrap();
        let off2 = lines[3].find("0.86").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.row_display([1, 2]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::with_columns(&["a"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    #[should_panic(expected = "must not contain commas")]
    fn csv_rejects_commas() {
        let mut t = Table::with_columns(&["a"]);
        t.row(vec!["x,y".into()]);
        t.to_csv();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt2(1.005), "1.00"); // bankers-ish rounding is fine
        assert_eq!(fmt_pct_delta(0.86), "-14%");
        assert_eq!(fmt_pct_delta(1.8), "+80%");
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::with_columns(&["only"]);
        assert!(t.is_empty());
        assert!(t.render().contains("only"));
    }
}
