//! Aggregation helpers for experiment results.
//!
//! The paper aggregates SPLASH-2 results with the arithmetic mean for
//! absolute quantities (Figure 6) and the geometric mean for normalized
//! quantities (Figures 7–9); both live here, together with a simple
//! power-of-two latency histogram.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Arithmetic mean of a slice. Returns 0 for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(flexsnoop_metrics::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of a slice of positive values. Returns 0 for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive: a geometric mean over
/// zero or negative ratios is meaningless and indicates an upstream bug.
///
/// # Example
///
/// ```
/// let g = flexsnoop_metrics::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean requires strictly positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Divides every element by `baseline`, producing a normalized series
/// (the paper normalizes everything to Lazy).
///
/// # Panics
///
/// Panics if `baseline` is zero.
pub fn normalize_to(xs: &[f64], baseline: f64) -> Vec<f64> {
    assert!(baseline != 0.0, "cannot normalize to a zero baseline");
    xs.iter().map(|x| x / baseline).collect()
}

/// A histogram with power-of-two buckets, used for latency distributions.
///
/// Bucket `i` holds values in `[2^i, 2^(i+1))`; bucket 0 also holds 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    /// Same as [`Histogram::new`] (a derived default would seed `min`
    /// with 0 and corrupt the first [`record`](Histogram::record)).
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// An approximate percentile (0.0–1.0) using bucket lower bounds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                let floor = if i == 0 { 0 } else { 1 << i };
                // The bucket floor can undershoot the exact tracked
                // extremes; clamp so p50 never reads below min.
                return Some(u64::clamp(floor, self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Snapshot for Histogram {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u128(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.get_u64()?);
        }
        self.buckets = buckets;
        self.count = r.get_u64()?;
        self.sum = r.get_u128()?;
        self.min = r.get_u64()?;
        self.max = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_to(&[2.0, 4.0], 2.0), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn normalize_rejects_zero_baseline() {
        normalize_to(&[1.0], 0.0);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_handles_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.percentile(1.0), Some(0));
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!((256..=512).contains(&p50), "p50={p50}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(500));
        assert_eq!(a.min(), Some(5));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn histogram_snapshot_round_trips_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 5_000, u64::MAX] {
            h.record(v);
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&h);
        let mut fresh = Histogram::new();
        flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap();
        // PartialEq covers every private field, including min/max/sum.
        assert_eq!(fresh, h);
        // Empty histograms round-trip the min=u64::MAX sentinel too.
        let empty = Histogram::new();
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&empty);
        let mut fresh = Histogram::new();
        fresh.record(9);
        flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh, empty);
    }
}
