//! A minimal, dependency-free JSON emitter.
//!
//! The benchmark artifacts must be machine-readable yet byte-stable
//! across runs, so this module favors determinism over generality:
//! object keys keep insertion order, floats print with Rust's shortest
//! round-trip formatting, and an object can be marked *inline* so that
//! volatile fields (timestamps, wall-clock throughput) collapse onto a
//! single line that diff tooling can strip with `grep -v`.
//!
//! # Example
//!
//! ```
//! use flexsnoop_metrics::json::Json;
//!
//! let doc = Json::obj([
//!     ("schema", Json::str("demo/v1")),
//!     ("values", Json::arr([Json::from(1u64), Json::from(2u64)])),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     "{\n  \"schema\": \"demo/v1\",\n  \"values\": [1, 2]\n}"
//! );
//! ```

use std::fmt::Write as _;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
    /// An object rendered compactly on a single line regardless of
    /// nesting depth (used for the volatile fields).
    InlineObj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a single-line object from `(key, value)` pairs.
    pub fn inline_obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::InlineObj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as pretty-printed JSON (2-space indent, no
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Shortest round-trip form; force a decimal point so
                    // consumers always see a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; arrays holding any
                // container break one element per line.
                let nested = items
                    .iter()
                    .any(|i| matches!(i, Json::Arr(_) | Json::Obj(_) | Json::InlineObj(_)));
                if nested {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth);
                    }
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            Json::InlineObj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    // Inline propagates: nested containers also render flat.
                    let mut flat = String::new();
                    v.write_flat(&mut flat);
                    out.push_str(&flat);
                }
                out.push('}');
            }
        }
    }

    /// Writes the value with no newlines at all.
    fn write_flat(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_flat(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) | Json::InlineObj(pairs) => {
                Json::InlineObj(pairs.clone()).write(out, 0);
            }
            other => other.write(out, 0),
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from(2.0).render(), "2.0", "floats keep a point");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\n").render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn scalar_arrays_stay_inline() {
        let j = Json::arr([Json::from(1u64), Json::from(2u64)]);
        assert_eq!(j.render(), "[1, 2]");
    }

    #[test]
    fn objects_pretty_print_in_insertion_order() {
        let j = Json::obj([
            ("z", Json::from(1u64)),
            ("a", Json::obj([("k", Json::str("v"))])),
        ]);
        assert_eq!(
            j.render(),
            "{\n  \"z\": 1,\n  \"a\": {\n    \"k\": \"v\"\n  }\n}"
        );
    }

    #[test]
    fn inline_objects_take_one_line() {
        let j = Json::obj([(
            "volatile",
            Json::inline_obj([
                ("git_sha", Json::str("abc")),
                ("wall_ms", Json::from(12u64)),
                ("nested", Json::obj([("x", Json::from(1u64))])),
            ]),
        )]);
        let rendered = j.render();
        let volatile_line = rendered
            .lines()
            .find(|l| l.contains("\"volatile\""))
            .unwrap();
        assert!(volatile_line.contains("\"git_sha\": \"abc\""));
        assert!(volatile_line.contains("\"nested\": {\"x\": 1}"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            Json::obj([
                ("rows", Json::arr([Json::obj([("v", Json::from(0.25))])])),
                ("n", Json::from(3u64)),
            ])
        };
        assert_eq!(build().render(), build().render());
    }
}
