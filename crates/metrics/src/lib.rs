//! Statistics and energy accounting for flexsnoop experiments.
//!
//! * [`stats`] — aggregation helpers (means, geometric means, normalized
//!   series) and a latency histogram.
//! * [`energy`] — the per-event energy model (paper §6.1.4) and an account
//!   that tallies events into nanojoules, broken down by category.
//! * [`table`] — plain-text and CSV table rendering used by the benchmark
//!   harness to print paper-style rows.
//! * [`json`] — the deterministic JSON emitter shared by the benchmark
//!   artifacts and the sweep service's result stream.

#![warn(missing_docs)]

pub mod energy;
pub mod json;
pub mod stats;
pub mod table;

pub use energy::{EnergyAccount, EnergyCategory, EnergyModel};
pub use json::Json;
pub use stats::{geomean, mean, normalize_to, Histogram};
pub use table::Table;
