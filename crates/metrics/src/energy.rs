//! The per-event energy model (paper §6.1.4).
//!
//! The paper reduces CACTI, Orion, HyperTransport and Micron tool output to
//! per-event energies and publishes three anchors:
//!
//! * transferring one snoop message over one ring link: **3.17 nJ**,
//! * snooping one CMP (all L2 tag arrays in parallel): **0.69 nJ**,
//! * reading a line from main memory: **24 nJ**.
//!
//! The remaining constants (predictor lookup/training, write-backs,
//! downgrades) are CACTI-style size-scaled estimates calibrated so that the
//! paper's qualitative energy ordering holds; the per-constant provenance
//! is tabulated in EXPERIMENTS.md ("Energy-constant provenance") and every
//! value is an overridable public field.
//!
//! Energy is accounted for **snoop-transaction activity only** — exactly
//! the scope of Figure 9: snoops, ring messages, predictor activity, and
//! the memory traffic *caused by the algorithm* (Exact's downgrade
//! write-backs and re-reads), not the program's baseline DRAM traffic.

use std::fmt;

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Per-event energy costs in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One snoop message crossing one ring link (paper: 3.17 nJ).
    pub ring_link_nj: f64,
    /// One CMP snoop — bus access plus parallel L2 tag probe (paper: 0.69 nJ).
    pub snoop_nj: f64,
    /// One cache line read from main memory (paper: 24 nJ).
    pub mem_read_nj: f64,
    /// One cache line written back to main memory (calibrated: 24 nJ, the
    /// DRAM array activity is symmetric at this granularity).
    pub mem_write_nj: f64,
    /// One supplier-predictor lookup (set per predictor kind; calibrated).
    pub predictor_lookup_nj: f64,
    /// One supplier-predictor training update (calibrated).
    pub predictor_train_nj: f64,
    /// One Exact-predictor downgrade: the L2 state change (calibrated to a
    /// tag-array write, 0.35 nJ). The induced write-back/re-read memory
    /// energy is charged separately via `mem_write_nj`/`mem_read_nj`.
    pub downgrade_nj: f64,
}

impl EnergyModel {
    /// The paper's published anchors with no predictor
    /// (Lazy/Eager/Oracle: predictor events never occur).
    pub fn paper_baseline() -> Self {
        EnergyModel {
            ring_link_nj: 3.17,
            snoop_nj: 0.69,
            mem_read_nj: 24.0,
            mem_write_nj: 24.0,
            predictor_lookup_nj: 0.0,
            predictor_train_nj: 0.0,
            downgrade_nj: 0.35,
        }
    }

    /// Baseline anchors plus small-cache predictor costs
    /// (Subset/Exact: a 1.3–17 KB tag array; CACTI-scaled ≈ 0.06/0.06 nJ).
    pub fn with_cache_predictor() -> Self {
        EnergyModel {
            predictor_lookup_nj: 0.06,
            predictor_train_nj: 0.06,
            ..Self::paper_baseline()
        }
    }

    /// Baseline anchors plus Bloom-filter predictor costs (Superset: three
    /// counter tables + Exclude cache per lookup; counters updated on every
    /// supplier gain/loss — the paper calls this energy "substantial",
    /// ≈ 0.20/0.30 nJ calibrated).
    pub fn with_bloom_predictor() -> Self {
        EnergyModel {
            predictor_lookup_nj: 0.20,
            predictor_train_nj: 0.30,
            ..Self::paper_baseline()
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Categories of energy-consuming events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// A snoop message crossing one ring link.
    RingLink,
    /// A CMP snoop operation.
    Snoop,
    /// A line read from main memory caused by snoop activity.
    MemRead,
    /// A line written back to main memory.
    MemWrite,
    /// A supplier-predictor lookup.
    PredictorLookup,
    /// A supplier-predictor training update.
    PredictorTrain,
    /// An Exact-predictor downgrade (tag state change).
    Downgrade,
}

impl EnergyCategory {
    /// All categories, in reporting order.
    pub const ALL: [EnergyCategory; 7] = [
        EnergyCategory::RingLink,
        EnergyCategory::Snoop,
        EnergyCategory::MemRead,
        EnergyCategory::MemWrite,
        EnergyCategory::PredictorLookup,
        EnergyCategory::PredictorTrain,
        EnergyCategory::Downgrade,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::RingLink => 0,
            EnergyCategory::Snoop => 1,
            EnergyCategory::MemRead => 2,
            EnergyCategory::MemWrite => 3,
            EnergyCategory::PredictorLookup => 4,
            EnergyCategory::PredictorTrain => 5,
            EnergyCategory::Downgrade => 6,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EnergyCategory::RingLink => "ring-link",
            EnergyCategory::Snoop => "snoop",
            EnergyCategory::MemRead => "mem-read",
            EnergyCategory::MemWrite => "mem-write",
            EnergyCategory::PredictorLookup => "pred-lookup",
            EnergyCategory::PredictorTrain => "pred-train",
            EnergyCategory::Downgrade => "downgrade",
        };
        f.write_str(s)
    }
}

/// Tallies energy events against an [`EnergyModel`].
///
/// # Example
///
/// ```
/// use flexsnoop_metrics::{EnergyAccount, EnergyCategory, EnergyModel};
///
/// let mut acct = EnergyAccount::new(EnergyModel::paper_baseline());
/// acct.add(EnergyCategory::RingLink, 2);
/// acct.add(EnergyCategory::Snoop, 1);
/// assert!((acct.total_nj() - (2.0 * 3.17 + 0.69)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAccount {
    model: EnergyModel,
    counts: [u64; 7],
}

impl EnergyAccount {
    /// Creates an empty account using `model`'s per-event costs.
    pub fn new(model: EnergyModel) -> Self {
        Self {
            model,
            counts: [0; 7],
        }
    }

    /// The model in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Records `n` events of `category`.
    pub fn add(&mut self, category: EnergyCategory, n: u64) {
        self.counts[category.index()] += n;
    }

    /// Event count in a category.
    pub fn count(&self, category: EnergyCategory) -> u64 {
        self.counts[category.index()]
    }

    /// Energy of one category in nanojoules.
    pub fn category_nj(&self, category: EnergyCategory) -> f64 {
        let per_event = match category {
            EnergyCategory::RingLink => self.model.ring_link_nj,
            EnergyCategory::Snoop => self.model.snoop_nj,
            EnergyCategory::MemRead => self.model.mem_read_nj,
            EnergyCategory::MemWrite => self.model.mem_write_nj,
            EnergyCategory::PredictorLookup => self.model.predictor_lookup_nj,
            EnergyCategory::PredictorTrain => self.model.predictor_train_nj,
            EnergyCategory::Downgrade => self.model.downgrade_nj,
        };
        self.count(category) as f64 * per_event
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        EnergyCategory::ALL
            .iter()
            .map(|&c| self.category_nj(c))
            .sum()
    }

    /// Per-category breakdown `(category, count, nanojoules)`.
    pub fn breakdown(&self) -> Vec<(EnergyCategory, u64, f64)> {
        EnergyCategory::ALL
            .iter()
            .map(|&c| (c, self.count(c), self.category_nj(c)))
            .collect()
    }

    /// Merges another account (which must use the same model).
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Only the event counts are serialized: the model is constructor-derived
/// configuration, reproduced by rebuilding the account from the same
/// predictor spec (see the `Snapshot` overlay contract).
impl Snapshot for EnergyAccount {
    fn save_into(&self, w: &mut SnapWriter) {
        for &c in &self.counts {
            w.put_u64(c);
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for c in &mut self.counts {
            *c = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_values() {
        let m = EnergyModel::paper_baseline();
        assert_eq!(m.ring_link_nj, 3.17);
        assert_eq!(m.snoop_nj, 0.69);
        assert_eq!(m.mem_read_nj, 24.0);
    }

    #[test]
    fn ring_links_dominate_snoops() {
        // Paper §6.1.4: "a lot of the energy is dissipated in the ring links".
        let m = EnergyModel::paper_baseline();
        assert!(m.ring_link_nj > 4.0 * m.snoop_nj);
    }

    #[test]
    fn account_accumulates() {
        let mut a = EnergyAccount::new(EnergyModel::paper_baseline());
        a.add(EnergyCategory::Snoop, 10);
        a.add(EnergyCategory::Snoop, 5);
        assert_eq!(a.count(EnergyCategory::Snoop), 15);
        assert!((a.category_nj(EnergyCategory::Snoop) - 15.0 * 0.69).abs() < 1e-9);
    }

    #[test]
    fn total_sums_all_categories() {
        let mut a = EnergyAccount::new(EnergyModel::with_bloom_predictor());
        a.add(EnergyCategory::RingLink, 1);
        a.add(EnergyCategory::MemRead, 1);
        a.add(EnergyCategory::PredictorLookup, 10);
        let expect = 3.17 + 24.0 + 10.0 * 0.20;
        assert!((a.total_nj() - expect).abs() < 1e-9);
    }

    #[test]
    fn breakdown_covers_every_category() {
        let a = EnergyAccount::new(EnergyModel::paper_baseline());
        assert_eq!(a.breakdown().len(), EnergyCategory::ALL.len());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EnergyAccount::new(EnergyModel::paper_baseline());
        a.add(EnergyCategory::MemWrite, 2);
        let mut b = EnergyAccount::new(EnergyModel::paper_baseline());
        b.add(EnergyCategory::MemWrite, 3);
        a.merge(&b);
        assert_eq!(a.count(EnergyCategory::MemWrite), 5);
    }

    #[test]
    fn account_snapshot_round_trips_counts() {
        let mut a = EnergyAccount::new(EnergyModel::with_bloom_predictor());
        a.add(EnergyCategory::RingLink, 7);
        a.add(EnergyCategory::PredictorTrain, 3);
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&a);
        // Overlay contract: restore onto an account rebuilt with the
        // same model.
        let mut fresh = EnergyAccount::new(EnergyModel::with_bloom_predictor());
        flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh, a);
        assert!((fresh.total_nj() - a.total_nj()).abs() < 1e-12);
    }

    #[test]
    fn bloom_predictor_costs_more_than_cache_predictor() {
        let cache = EnergyModel::with_cache_predictor();
        let bloom = EnergyModel::with_bloom_predictor();
        assert!(bloom.predictor_lookup_nj > cache.predictor_lookup_nj);
        assert!(bloom.predictor_train_nj > cache.predictor_train_nj);
    }
}
