//! The one-command paper-figure reproduction pipeline.
//!
//! [`generate`] runs the full Table 1 / Table 3 / Figure 6–11 sweep
//! matrix through the shared bounded executor and produces:
//!
//! * one versioned JSON artifact per section (`results/bench_<fig>.json`)
//!   carrying the schema id, a config fingerprint, the measured rows, and
//!   a single-line `"volatile"` object with the git SHA, timestamp and
//!   wall-clock throughput — strip it with `grep -v '"volatile":'` to
//!   diff artifacts across commits;
//! * the regenerated `results/report.md` with every paper-style table.
//!
//! Everything outside the `"volatile"` line is deterministic for a fixed
//! (scale, seed, workload set), so a second run produces byte-identical
//! output — that is what the CI staleness check relies on.
//!
//! The CLI front door is `flexsnoop report` (see `crates/cli`); `--smoke`
//! selects [`ReportScale::smoke`], `--probe` attaches the run-level
//! observability counters of [`flexsnoop::probe`] to the Figure 6
//! artifact, `--check` compares the regenerated report against the
//! committed copy instead of writing, and `--via-serve` routes the
//! Figure 6–9 matrix through the sweep service's scheduler and results
//! cache (`crates/serve`) — cache-sourced rows are byte-identical to
//! recomputed ones, so `--check` never reports false staleness and the
//! service's cache/dedup counters ride the volatile line only.

#![warn(missing_docs)]

pub mod scale;

// The emitter moved to `flexsnoop-metrics` so the sweep service can
// render NDJSON without depending on this crate; the old path stays.
pub use flexsnoop_metrics::json;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use flexsnoop::probe::ProbeReport;
use flexsnoop::{Algorithm, FaultPlan, Simulator, StallWindow, TimeoutPolicy};
use flexsnoop_bench::sweeps::{
    figure10_cases, figure10_sweep_on, figure11_accuracy_on, figure11_configs, render_table1,
    render_table3, table1_rows, table3_rows,
};
use flexsnoop_bench::{
    aggregate, paper_workloads, render_aggregate, run_matrix_instrumented, CellResult, SEED,
};
use flexsnoop_engine::{Cycle, Cycles};
use flexsnoop_metrics::{Histogram, Table};
use flexsnoop_serve::{ResultsCache, ServiceOptions, ServiceStats, SweepRequest, SweepService};
use flexsnoop_workload::WorkloadProfile;
use json::Json;

/// The artifact schema identifier; bump when the JSON layout changes.
pub const SCHEMA: &str = "flexsnoop-bench-artifact/v1";

/// How many accesses per core each sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportScale {
    /// Figure 6–11 sweeps (the paper matrix).
    pub figure_accesses: u64,
    /// Table 1 (uniform microbenchmark).
    pub table1_accesses: u64,
    /// Table 3 (barnes characterization).
    pub table3_accesses: u64,
}

impl ReportScale {
    /// The smoke scale: every section in well under two minutes, and the
    /// scale at which the committed `results/report.md` is generated.
    pub fn smoke() -> Self {
        Self {
            figure_accesses: 800,
            table1_accesses: 800,
            table3_accesses: 800,
        }
    }

    /// The full paper scale (`FIGURE_ACCESSES` for the figures, the
    /// bench targets' historical scales for the tables).
    pub fn full() -> Self {
        Self {
            figure_accesses: flexsnoop_bench::FIGURE_ACCESSES,
            table1_accesses: 4_000,
            table3_accesses: 8_000,
        }
    }

    fn label(&self) -> String {
        format!(
            "{} accesses/core (figures), {} (Table 1), {} (Table 3)",
            self.figure_accesses, self.table1_accesses, self.table3_accesses
        )
    }
}

/// What to run and where to write it.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Sweep sizes.
    pub scale: ReportScale,
    /// Attach per-algorithm probe counters to the Figure 6 artifact.
    pub probe: bool,
    /// Output directory for `report.md` and `bench_*.json`.
    pub out_dir: PathBuf,
    /// Workload subset override (`None` = the full paper suite). Used by
    /// the self-tests; the artifacts record which set ran.
    pub workloads: Option<Vec<WorkloadProfile>>,
    /// Route the Figure 6–9 matrix through the sweep service
    /// (`flexsnoop serve`'s scheduler and results cache) instead of the
    /// batch executor. Everything outside the volatile line is
    /// byte-identical either way; the volatile line swaps its executor
    /// block for the service's cache/dedup counters. Requires every
    /// workload in `workloads` to be a named built-in profile at its
    /// default shape (`accesses_per_core` is overridden by the scale).
    pub via_serve: bool,
    /// Persistent results-cache directory for `via_serve` runs
    /// (`None` = a fresh in-memory cache, i.e. no reuse across runs).
    pub serve_cache: Option<PathBuf>,
}

impl ReportOptions {
    /// Smoke-scale options writing to `results/`.
    pub fn smoke() -> Self {
        Self {
            scale: ReportScale::smoke(),
            probe: false,
            out_dir: PathBuf::from("results"),
            workloads: None,
            via_serve: false,
            serve_cache: None,
        }
    }

    /// Full-scale options writing to `results/`.
    pub fn full() -> Self {
        Self {
            scale: ReportScale::full(),
            ..Self::smoke()
        }
    }
}

/// One generated artifact: a file name plus its rendered JSON.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// File name relative to the output directory, e.g. `bench_fig6.json`.
    pub filename: String,
    /// The rendered JSON document (trailing newline included).
    pub contents: String,
}

/// Everything [`generate`] produced, still in memory.
#[derive(Debug, Clone)]
pub struct GeneratedReport {
    /// The regenerated `report.md` contents.
    pub report_md: String,
    /// The JSON artifacts in section order.
    pub artifacts: Vec<Artifact>,
    /// Human-readable one-line-per-section timing summary.
    pub summary: String,
}

impl GeneratedReport {
    /// Writes `report.md` and every artifact into `out_dir`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the file that failed to write.
    pub fn write(&self, out_dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("create {}: {e}", out_dir.display()))?;
        let report_path = out_dir.join("report.md");
        std::fs::write(&report_path, &self.report_md)
            .map_err(|e| format!("write {}: {e}", report_path.display()))?;
        for artifact in &self.artifacts {
            let path = out_dir.join(&artifact.filename);
            std::fs::write(&path, &artifact.contents)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Compares the regenerated `report.md` against the copy on disk.
    ///
    /// # Errors
    ///
    /// Returns a message when the committed report is missing or differs
    /// from regeneration (i.e. it is stale).
    pub fn check(&self, out_dir: &Path) -> Result<(), String> {
        let path = out_dir.join("report.md");
        let committed =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if committed == self.report_md {
            return Ok(());
        }
        let first_diff = committed
            .lines()
            .zip(self.report_md.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| {
                committed
                    .lines()
                    .count()
                    .min(self.report_md.lines().count())
                    + 1
            });
        Err(format!(
            "{} is stale: first difference at line {first_diff}; \
             regenerate with `cargo run --release -p flexsnoop-cli -- report --smoke`",
            path.display()
        ))
    }
}

/// Runs every sweep and assembles the report and artifacts in memory.
///
/// # Panics
///
/// Panics if any simulation fails to configure (a bug, not an
/// environment condition).
pub fn generate(opts: &ReportOptions) -> GeneratedReport {
    let volatile = VolatileContext::capture();
    let workloads = opts.workloads.clone().unwrap_or_else(paper_workloads);
    let scale = opts.scale;
    let mut sections: Vec<Section> = Vec::new();
    let mut summary = String::new();

    // Table 1.
    let t = Instant::now();
    let t1 = table1_rows(scale.table1_accesses);
    sections.push(Section {
        slug: "table1",
        heading: "Table 1 — baseline algorithm characteristics".into(),
        body: render_table1(&t1).render(),
        config: Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.table1_accesses)),
            ("workload", Json::str("uniform_microbench")),
        ]),
        rows: Json::arr(t1.iter().map(|r| {
            Json::obj([
                ("algorithm", Json::str(r.algorithm.to_string())),
                ("snoops_per_request", Json::from(r.snoops_per_request)),
                ("msgs_x_lazy", Json::from(r.msgs_x_lazy)),
                ("mean_read_latency", Json::from(r.mean_read_latency)),
                ("paper_snoops", Json::str(r.paper_snoops)),
                ("paper_msgs", Json::str(r.paper_msgs)),
            ])
        })),
        extra: Vec::new(),
        volatile_extra: Vec::new(),
        wall_ms: t.elapsed().as_millis() as u64,
    });
    note(&mut summary, "table1", t.elapsed().as_millis());

    // Table 3.
    let t = Instant::now();
    let t3 = table3_rows(scale.table3_accesses);
    sections.push(Section {
        slug: "table3",
        heading: "Table 3 — adaptive algorithm characterization".into(),
        body: render_table3(&t3).render(),
        config: Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.table3_accesses)),
            ("workload", Json::str("barnes")),
        ]),
        rows: Json::arr(t3.iter().map(|r| {
            Json::obj([
                ("algorithm", Json::str(r.algorithm.to_string())),
                ("false_positives", Json::from(r.false_positives)),
                ("false_negatives", Json::from(r.false_negatives)),
                ("snoops_per_request", Json::from(r.snoops_per_request)),
                ("snoops_vs_lazy", Json::from(r.snoops_vs_lazy)),
                ("msgs_x_lazy", Json::from(r.msgs_x_lazy)),
            ])
        })),
        extra: Vec::new(),
        volatile_extra: Vec::new(),
        wall_ms: t.elapsed().as_millis() as u64,
    });
    note(&mut summary, "table3", t.elapsed().as_millis());

    // Figures 6–9 share one matrix. `--via-serve` routes it through the
    // sweep service (scheduler + results cache) instead of the batch
    // executor; the cells are byte-identical either way, so only the
    // volatile line knows which path ran.
    let t = Instant::now();
    let algorithms = Algorithm::PAPER_SET;
    let (cells, matrix_source_volatile) = if opts.via_serve {
        let (cells, stats) =
            run_matrix_via_serve(&workloads, &algorithms, scale.figure_accesses, opts);
        (cells, serve_volatile(&stats))
    } else {
        let (cells, exec) = run_matrix_instrumented(
            &workloads,
            &algorithms,
            scale.figure_accesses,
            SEED,
            opts.probe,
        );
        (cells, executor_volatile(&exec))
    };
    let matrix_wall = t.elapsed();
    let matrix_events: u64 = cells.iter().map(|c| c.stats.events).sum();
    let events_per_sec = matrix_events as f64 / matrix_wall.as_secs_f64().max(1e-9);
    note(&mut summary, "figure matrix (6-9)", matrix_wall.as_millis());

    let matrix_config = |figure_metric: &str| {
        Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.figure_accesses)),
            ("metric", Json::str(figure_metric)),
            (
                "algorithms",
                Json::arr(algorithms.iter().map(|a| Json::str(a.to_string()))),
            ),
            (
                "workloads",
                Json::arr(workloads.iter().map(|w| Json::str(w.name.clone()))),
            ),
        ])
    };
    // Throughput and the run-path counters (executor utilization, or the
    // serve cache/dedup tallies) are either timing-derived or reflect
    // cache warmth, so they ride the volatile line; the deterministic
    // `events` total stays a regular field.
    let mut matrix_volatile = vec![("events_per_sec".to_string(), Json::from(events_per_sec))];
    matrix_volatile.extend(matrix_source_volatile);
    let matrix_extra = |probe_data: Option<Json>| {
        let mut extra = vec![("events".to_string(), Json::from(matrix_events))];
        if let Some(rows) = probe_data {
            extra.push(("probe".to_string(), rows));
        }
        extra
    };

    type Metric = fn(&flexsnoop::RunStats) -> f64;
    let figures: [(&'static str, String, Metric, bool); 4] = [
        (
            "fig6",
            "Figure 6 — snoops per read request (absolute)".into(),
            |s| s.snoops_per_read(),
            false,
        ),
        (
            "fig7",
            "Figure 7 — ring read messages (x Lazy)".into(),
            |s| s.read_ring_hops as f64,
            true,
        ),
        (
            "fig8",
            "Figure 8 — execution time (x Lazy)".into(),
            |s| s.exec_time(),
            true,
        ),
        (
            "fig9",
            "Figure 9 — snoop energy (x Lazy)".into(),
            |s| s.energy_nj(),
            true,
        ),
    ];
    for (slug, heading, metric, norm) in figures {
        let agg = aggregate(&cells, &algorithms, metric, norm);
        let rows = Json::arr(algorithms.iter().map(|alg| {
            let groups = &agg[&alg.to_string()];
            let mut pairs = vec![("algorithm".to_string(), Json::str(alg.to_string()))];
            for (group, v) in groups {
                pairs.push((group.to_string(), Json::from(*v)));
            }
            Json::Obj(pairs)
        }));
        // Probe counters ride the Figure 6 artifact: one aggregate per
        // algorithm across the whole workload suite.
        let probe_data = (slug == "fig6" && opts.probe).then(|| probe_rows(&cells, &algorithms));
        sections.push(Section {
            slug,
            heading,
            body: render_aggregate("", &agg, &algorithms)
                .trim_start_matches('\n')
                .to_string(),
            config: matrix_config(slug),
            rows,
            extra: matrix_extra(probe_data),
            volatile_extra: matrix_volatile.clone(),
            wall_ms: matrix_wall.as_millis() as u64,
        });
    }

    // Figure 10.
    let t = Instant::now();
    let mut t10 =
        Table::with_columns(&["algorithm", "predictor", "SPLASH-2", "SPECjbb", "SPECweb"]);
    let mut f10_rows = Vec::new();
    for (algorithm, configs) in figure10_cases() {
        for (name, groups) in
            figure10_sweep_on(&workloads, algorithm, configs, scale.figure_accesses)
        {
            let get = |key: &str| {
                groups
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into())
            };
            t10.row(vec![
                algorithm.to_string(),
                name.clone(),
                get("SPLASH-2"),
                get("SPECjbb"),
                get("SPECweb"),
            ]);
            let mut pairs = vec![
                ("algorithm".to_string(), Json::str(algorithm.to_string())),
                ("predictor".to_string(), Json::str(name)),
            ];
            for (group, v) in groups {
                pairs.push((group.to_string(), Json::from(v)));
            }
            f10_rows.push(Json::Obj(pairs));
        }
    }
    sections.push(Section {
        slug: "fig10",
        heading: "Figure 10 — predictor-size sensitivity (x the 2K config)".into(),
        body: t10.render(),
        config: Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.figure_accesses)),
            (
                "workloads",
                Json::arr(workloads.iter().map(|w| Json::str(w.name.clone()))),
            ),
        ]),
        rows: Json::Arr(f10_rows),
        extra: Vec::new(),
        volatile_extra: Vec::new(),
        wall_ms: t.elapsed().as_millis() as u64,
    });
    note(&mut summary, "figure 10", t.elapsed().as_millis());

    // Figure 11.
    let t = Instant::now();
    let mut t11 = Table::with_columns(&["predictor", "group", "TP", "TN", "FP", "FN"]);
    let mut f11_rows = Vec::new();
    for (name, algorithm, spec) in figure11_configs() {
        for (group, acc) in figure11_accuracy_on(&workloads, algorithm, spec, scale.figure_accesses)
        {
            t11.row(vec![
                name.to_string(),
                group.to_string(),
                format!("{:.3}", acc.fraction_true_positive()),
                format!("{:.3}", acc.fraction_true_negative()),
                format!("{:.3}", acc.fraction_false_positive()),
                format!("{:.3}", acc.fraction_false_negative()),
            ]);
            f11_rows.push(Json::obj([
                ("predictor", Json::str(name)),
                ("group", Json::str(group)),
                ("true_positive", Json::from(acc.fraction_true_positive())),
                ("true_negative", Json::from(acc.fraction_true_negative())),
                ("false_positive", Json::from(acc.fraction_false_positive())),
                ("false_negative", Json::from(acc.fraction_false_negative())),
            ]));
        }
    }
    sections.push(Section {
        slug: "fig11",
        heading: "Figure 11 — predictor accuracy".into(),
        body: t11.render(),
        config: Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.figure_accesses)),
            (
                "workloads",
                Json::arr(workloads.iter().map(|w| Json::str(w.name.clone()))),
            ),
        ]),
        rows: Json::Arr(f11_rows),
        extra: Vec::new(),
        volatile_extra: Vec::new(),
        wall_ms: t.elapsed().as_millis() as u64,
    });
    note(&mut summary, "figure 11", t.elapsed().as_millis());

    // Recovery — the congested static-vs-EWMA timeout sweep.
    let t = Instant::now();
    let rec = recovery_rows(scale.figure_accesses);
    let mut trec = Table::with_columns(&[
        "algorithm",
        "policy",
        "timeouts",
        "retries",
        "spurious",
        "rtt-samples",
        "exec-cycles",
    ]);
    for r in &rec {
        trec.row(vec![
            r.algorithm.to_string(),
            r.policy.to_string(),
            r.timeouts.to_string(),
            r.retries.to_string(),
            r.spurious_retries.to_string(),
            r.rtt_samples.to_string(),
            r.exec_cycles.to_string(),
        ]);
    }
    sections.push(Section {
        slug: "recovery",
        heading: "Recovery — spurious retries under congestion, static vs EWMA timeouts".into(),
        body: trec.render(),
        config: Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.figure_accesses)),
            ("workload", Json::str(RECOVERY_WORKLOAD)),
            ("plan", Json::str(recovery_plan().describe())),
        ]),
        rows: Json::arr(rec.iter().map(|r| {
            Json::obj([
                ("algorithm", Json::str(r.algorithm.to_string())),
                ("policy", Json::str(r.policy)),
                ("timeouts", Json::from(r.timeouts)),
                ("retries", Json::from(r.retries)),
                ("spurious_retries", Json::from(r.spurious_retries)),
                ("rtt_samples", Json::from(r.rtt_samples)),
                ("exec_cycles", Json::from(r.exec_cycles)),
                ("violations", Json::from(r.violations)),
                ("in_flight", Json::from(r.in_flight)),
            ])
        })),
        extra: Vec::new(),
        volatile_extra: Vec::new(),
        wall_ms: t.elapsed().as_millis() as u64,
    });
    note(&mut summary, "recovery sweep", t.elapsed().as_millis());

    // Hierarchy — flat vs hierarchical multi-ring at 16–64 nodes.
    let t = Instant::now();
    let hier = hierarchy_rows(scale.figure_accesses);
    let mut thier = Table::with_columns(&[
        "nodes",
        "topology",
        "snoops/read",
        "hops/read",
        "bridge-hops",
        "exec-cycles",
        "energy-nj",
        "recovery-nj",
        "local",
        "global",
        "escalations",
    ]);
    for r in &hier {
        thier.row(vec![
            r.nodes.to_string(),
            r.topology.clone(),
            format!("{:.3}", r.snoops_per_read),
            format!("{:.3}", r.hops_per_read),
            r.bridge_hops.to_string(),
            r.exec_cycles.to_string(),
            format!("{:.1}", r.energy_nj),
            format!("{:.1}", r.recovery_overhead_nj),
            r.local_circulations.to_string(),
            r.global_circulations.to_string(),
            r.escalations.to_string(),
        ]);
    }
    sections.push(Section {
        slug: "hierarchy",
        heading: "Hierarchy — flat vs multi-ring topologies, locality-aware circulation".into(),
        body: thier.render(),
        config: Json::obj([
            ("seed", Json::from(SEED)),
            ("accesses_per_core", Json::from(scale.figure_accesses)),
            ("workload", Json::str(HIERARCHY_WORKLOAD)),
            ("cluster", Json::str("local-ring size")),
            ("algorithm", Json::str(Algorithm::Subset.to_string())),
            (
                "shapes",
                Json::arr(
                    HIERARCHY_SHAPES
                        .iter()
                        .map(|(l, g)| Json::str(format!("{l}x{g}"))),
                ),
            ),
            ("lossy_plan", Json::str(hierarchy_plan().describe())),
        ]),
        rows: Json::arr(hier.iter().map(|r| {
            Json::obj([
                ("nodes", Json::from(r.nodes as u64)),
                ("topology", Json::str(r.topology.clone())),
                ("snoops_per_read", Json::from(r.snoops_per_read)),
                ("ring_hops_per_read", Json::from(r.hops_per_read)),
                ("bridge_hops", Json::from(r.bridge_hops)),
                ("exec_cycles", Json::from(r.exec_cycles)),
                ("mean_read_latency", Json::from(r.mean_read_latency)),
                ("energy_nj", Json::from(r.energy_nj)),
                ("recovery_overhead_nj", Json::from(r.recovery_overhead_nj)),
                ("local_circulations", Json::from(r.local_circulations)),
                ("global_circulations", Json::from(r.global_circulations)),
                ("escalations", Json::from(r.escalations)),
                ("retries", Json::from(r.retries)),
                ("violations", Json::from(r.violations)),
                ("in_flight", Json::from(r.in_flight)),
            ])
        })),
        extra: Vec::new(),
        volatile_extra: Vec::new(),
        wall_ms: t.elapsed().as_millis() as u64,
    });
    note(&mut summary, "hierarchy sweep", t.elapsed().as_millis());

    // Assemble report.md (deterministic: no timings, no SHA).
    let mut report_md = String::new();
    let _ = writeln!(
        report_md,
        "# flexsnoop measured report\n\nSeed {SEED}; {}.\n\nGenerated by \
         `flexsnoop report` — do not hand-edit; see the matching \
         `bench_*.json` artifacts for machine-readable rows.\n",
        scale.label()
    );
    for section in &sections {
        let _ = writeln!(report_md, "## {}\n\n```", section.heading);
        let _ = write!(report_md, "{}", section.body);
        let _ = writeln!(report_md, "```\n");
    }

    let artifacts = sections.iter().map(|s| s.to_artifact(&volatile)).collect();

    GeneratedReport {
        report_md,
        artifacts,
        summary,
    }
}

/// Workload driving the recovery congestion sweep.
const RECOVERY_WORKLOAD: &str = "specweb";

/// One measured cell of the recovery sweep.
#[derive(Debug, Clone)]
struct RecoveryRow {
    algorithm: Algorithm,
    policy: &'static str,
    timeouts: u64,
    retries: u64,
    spurious_retries: u64,
    rtt_samples: u64,
    exec_cycles: u64,
    violations: u64,
    in_flight: u64,
}

/// The fixed congested-but-lossless schedule of the recovery sweep: no
/// message is ever lost, but heavy injected delays plus rolling node
/// stalls push round trips far past the static timeout's fixed queueing
/// slack. Every timeout the static policy fires here is premature by
/// construction; the EWMA policy should learn the congestion and fire
/// (far) fewer.
fn recovery_plan() -> FaultPlan {
    let mut plan = FaultPlan::lossless();
    plan.seed = 0x0C0261257;
    plan.delay = 0.45;
    plan.delay_max = Cycles(900);
    plan.budget = u64::MAX;
    for (i, node) in [1usize, 3, 5, 7].into_iter().enumerate() {
        let from = Cycle::new(2_000 + 9_000 * i as u64);
        plan.stalls.push(StallWindow {
            node,
            from,
            until: from + Cycles(4_000),
        });
    }
    plan
}

/// Runs the Table 3 algorithms under [`recovery_plan`] twice each —
/// static and EWMA requester timeouts, interleaved so the two policies
/// of one algorithm always run back to back on an identical setup.
fn recovery_rows(accesses: u64) -> Vec<RecoveryRow> {
    const POLICIES: [(TimeoutPolicy, &str); 2] = [
        (TimeoutPolicy::Static, "static"),
        (TimeoutPolicy::Adaptive, "ewma"),
    ];
    let algorithms = [
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ];
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(accesses);
    let plan = recovery_plan();
    let mut rows = Vec::new();
    for alg in algorithms {
        for (policy, label) in POLICIES {
            let mut sim = Simulator::for_workload(&profile, alg, None, SEED)
                .unwrap_or_else(|e| panic!("recovery sweep {alg}: {e}"));
            sim.set_timeout_policy(policy);
            sim.enable_invariant_checks();
            sim.set_fault_plan(plan.clone());
            let stats = sim.run();
            rows.push(RecoveryRow {
                algorithm: alg,
                policy: label,
                timeouts: stats.robustness.timeouts,
                retries: stats.robustness.retries,
                spurious_retries: stats.robustness.spurious_retries,
                rtt_samples: stats.robustness.rtt_samples,
                exec_cycles: stats.exec_cycles.as_u64(),
                violations: sim.violations().len() as u64,
                in_flight: sim.in_flight() as u64 + stats.robustness.unfinished_cores,
            });
        }
    }
    rows
}

/// Workload driving the hierarchy comparison sweep: the consolidated
/// profile with its shared pools clustered at the local-ring size, so
/// suppliers sit inside the requester's group — the sharing structure
/// the locality table exists to exploit. The flat baseline runs the
/// *identical* clustered workload; only the topology differs.
const HIERARCHY_WORKLOAD: &str = "consolidated";

/// The `local × groups` shapes of the hierarchy sweep (16–64 nodes).
const HIERARCHY_SHAPES: [(usize, usize); 3] = [(4, 4), (8, 4), (8, 8)];

/// One measured cell of the hierarchy sweep.
#[derive(Debug, Clone)]
struct HierarchyRow {
    nodes: usize,
    /// `flat`, `hier:<local>x<groups>` or `hier-lossy:<local>x<groups>`.
    topology: String,
    snoops_per_read: f64,
    hops_per_read: f64,
    bridge_hops: u64,
    exec_cycles: u64,
    mean_read_latency: f64,
    energy_nj: f64,
    /// Energy spent on timeout-retried circulations (ring-link hops of
    /// superseded attempts × the per-hop link energy) — the fault-aware
    /// split charges these to recovery overhead, not to the protocol.
    recovery_overhead_nj: f64,
    local_circulations: u64,
    global_circulations: u64,
    escalations: u64,
    retries: u64,
    violations: u64,
    in_flight: u64,
}

/// The fixed lossy-bridge schedule of the hierarchy sweep: a bounded
/// number of global-ring crossings are dropped, forcing timeout retries
/// whose hops land in [`flexsnoop::RunStats::retry_ring_hops`].
fn hierarchy_plan() -> FaultPlan {
    let mut plan = FaultPlan::lossless();
    plan.seed = 0xB21D_6E5A;
    plan.bridge_drop = 0.25;
    plan.bridge_budget = 30;
    plan
}

/// Accesses per core for a hierarchy run of `nodes` cores: the sweep
/// holds total work roughly constant across sizes (the 8-node figure
/// budget spread over `nodes` requesters), never fewer than 8 so every
/// size still exercises sharing and re-reads.
fn hierarchy_accesses(nodes: usize, accesses: u64) -> u64 {
    (accesses * 8 / nodes as u64).max(8)
}

/// Runs the flat ring, the hierarchical ring, and the hierarchical ring
/// under the lossy-bridge plan for each [`HIERARCHY_SHAPES`] entry, all
/// on the identical workload (one core per node, same seed).
fn hierarchy_rows(accesses: u64) -> Vec<HierarchyRow> {
    let algorithm = Algorithm::Subset;
    let mut rows = Vec::new();
    for (local, groups) in HIERARCHY_SHAPES {
        let nodes = local * groups;
        let profile = flexsnoop_workload::profiles::consolidated()
            .with_cores(nodes)
            .with_cluster(local)
            .with_accesses(hierarchy_accesses(nodes, accesses));
        let variants: [(String, Option<FaultPlan>, bool); 3] = [
            ("flat".into(), None, false),
            (format!("hier:{local}x{groups}"), None, true),
            (
                format!("hier-lossy:{local}x{groups}"),
                Some(hierarchy_plan()),
                true,
            ),
        ];
        for (topology, plan, hier) in variants {
            let mut sim = if hier {
                Simulator::for_workload_hier(&profile, algorithm, None, SEED, local, groups)
            } else {
                Simulator::for_workload_on(&profile, algorithm, None, SEED, nodes)
            }
            .unwrap_or_else(|e| panic!("hierarchy sweep {topology}: {e}"));
            sim.enable_invariant_checks();
            if let Some(plan) = plan {
                sim.set_fault_plan(plan);
            }
            let stats = sim.run();
            rows.push(HierarchyRow {
                nodes,
                topology,
                snoops_per_read: stats.snoops_per_read(),
                hops_per_read: stats.ring_hops_per_read(),
                bridge_hops: stats.bridge_hops,
                exec_cycles: stats.exec_cycles.as_u64(),
                mean_read_latency: stats.read_latency.mean(),
                energy_nj: stats.energy_nj(),
                recovery_overhead_nj: stats.retry_ring_hops as f64
                    * stats.energy.model().ring_link_nj,
                local_circulations: stats.local_circulations,
                global_circulations: stats.global_circulations,
                escalations: stats.escalations,
                retries: stats.robustness.retries,
                violations: sim.violations().len() as u64,
                in_flight: sim.in_flight() as u64 + stats.robustness.unfinished_cores,
            });
        }
    }
    rows
}

/// The matrix volatile-line block for direct (batch-executor) runs.
fn executor_volatile(exec: &flexsnoop_engine::ExecutorStats) -> Vec<(String, Json)> {
    vec![(
        "executor".to_string(),
        Json::inline_obj([
            ("workers", Json::from(exec.workers.len())),
            ("tasks", Json::from(exec.total_tasks())),
            ("mean_utilization", Json::from(exec.mean_utilization())),
            (
                "per_worker",
                Json::arr(exec.workers.iter().map(|w| {
                    Json::inline_obj([
                        ("tasks", Json::from(w.tasks)),
                        (
                            "utilization",
                            Json::from(if exec.wall.is_zero() {
                                0.0
                            } else {
                                (w.busy.as_secs_f64() / exec.wall.as_secs_f64()).min(1.0)
                            }),
                        ),
                    ])
                })),
            ),
            ("wall_ms", Json::from(exec.wall.as_millis() as u64)),
        ]),
    )]
}

/// The matrix volatile-line block for `--via-serve` runs. Cache warmth
/// legitimately varies between runs of identical code (a warm persistent
/// cache answers every job without executing), which is exactly the
/// definition of volatile — so these counters must never leak into the
/// deterministic fields.
fn serve_volatile(stats: &ServiceStats) -> Vec<(String, Json)> {
    vec![(
        "serve".to_string(),
        Json::inline_obj([
            ("executed", Json::from(stats.executed)),
            ("coalesced", Json::from(stats.coalesced)),
            ("failed", Json::from(stats.failed)),
            ("cache_hits", Json::from(stats.cache.hits)),
            ("cache_misses", Json::from(stats.cache.misses)),
            ("cache_stores", Json::from(stats.cache.stores)),
        ]),
    )]
}

/// Maps a matrix [`Algorithm`] back to its CLI/serve spelling.
fn serve_algorithm_name(alg: Algorithm) -> String {
    flexsnoop_serve::names::algorithm_names()
        .into_iter()
        .find(|&(_, a)| a == alg)
        .map(|(name, _)| name.to_string())
        .unwrap_or_else(|| panic!("algorithm {alg} has no serve name"))
}

/// Runs the Figure 6–9 matrix through a [`SweepService`] and reassembles
/// the cells [`run_matrix_instrumented`] would have produced: same
/// workload-major order, same per-cell statistics (the service rebuilds
/// each simulation from the identical `(profile, algorithm, seed)`
/// triple on the default 8-node machine). Only the returned service
/// counters vary run to run — with a warm [`ReportOptions::serve_cache`]
/// every cell is answered from the cache without executing.
fn run_matrix_via_serve(
    workloads: &[WorkloadProfile],
    algorithms: &[Algorithm],
    accesses: u64,
    opts: &ReportOptions,
) -> (Vec<CellResult>, ServiceStats) {
    let cache = match &opts.serve_cache {
        Some(dir) => ResultsCache::persistent(dir)
            .unwrap_or_else(|e| panic!("open results cache {}: {e}", dir.display())),
        None => ResultsCache::in_memory(),
    };
    let service = SweepService::new(ServiceOptions::default(), cache);
    let request = SweepRequest {
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        algorithms: algorithms
            .iter()
            .map(|&a| serve_algorithm_name(a))
            .collect(),
        seeds: vec![SEED],
        accesses,
        probe: opts.probe,
        ..SweepRequest::default()
    };
    let submission = service
        .submit(&request)
        .unwrap_or_else(|e| panic!("via-serve submission rejected: {e}"));
    let specs = submission.specs.clone();
    let outputs = submission
        .collect()
        .outputs(&specs)
        .unwrap_or_else(|e| panic!("via-serve job failed: {e}"));
    let mut outputs = outputs.into_iter();
    let mut cells = Vec::with_capacity(specs.len());
    for profile in workloads {
        for &algorithm in algorithms {
            let out = outputs
                .next()
                .expect("sweep expansion shorter than the matrix");
            cells.push(CellResult {
                workload: profile.name.clone(),
                group: profile.group,
                algorithm,
                stats: out.stats,
                probe: out.probe,
            });
        }
    }
    let stats = service.stats();
    (cells, stats)
}

/// One report section, pre-assembly.
struct Section {
    slug: &'static str,
    heading: String,
    body: String,
    config: Json,
    rows: Json,
    /// Deterministic extra top-level fields (e.g. `events`, `probe`).
    extra: Vec<(String, Json)>,
    /// Timing-derived fields appended to the single-line volatile object.
    volatile_extra: Vec<(String, Json)>,
    wall_ms: u64,
}

impl Section {
    fn to_artifact(&self, volatile: &VolatileContext) -> Artifact {
        let fingerprint = {
            let canonical = format!("{SCHEMA}/{}/{}", self.slug, self.config.render());
            format!("{:016x}", fnv1a64(canonical.as_bytes()))
        };
        let mut config_pairs = match &self.config {
            Json::Obj(pairs) => pairs.clone(),
            other => vec![("value".to_string(), other.clone())],
        };
        config_pairs.push(("fingerprint".to_string(), Json::Str(fingerprint)));
        let mut volatile_pairs = vec![
            ("git_sha".to_string(), Json::str(volatile.git_sha.clone())),
            (
                "generated_unix_ms".to_string(),
                Json::from(volatile.unix_ms),
            ),
            ("wall_ms".to_string(), Json::from(self.wall_ms)),
        ];
        volatile_pairs.extend(self.volatile_extra.iter().cloned());
        let mut doc = vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("figure".to_string(), Json::str(self.slug)),
            ("title".to_string(), Json::str(self.heading.clone())),
            ("config".to_string(), Json::Obj(config_pairs)),
            ("volatile".to_string(), Json::InlineObj(volatile_pairs)),
        ];
        for (k, v) in &self.extra {
            doc.push((k.clone(), v.clone()));
        }
        doc.push(("rows".to_string(), self.rows.clone()));
        Artifact {
            filename: format!("bench_{}.json", self.slug),
            contents: format!("{}\n", Json::Obj(doc).render()),
        }
    }
}

/// Fields that legitimately change between runs of identical code.
struct VolatileContext {
    git_sha: String,
    unix_ms: u64,
}

impl VolatileContext {
    fn capture() -> Self {
        let git_sha = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into());
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self { git_sha, unix_ms }
    }
}

/// Per-algorithm probe aggregates across the whole matrix.
fn probe_rows(cells: &[CellResult], algorithms: &[Algorithm]) -> Json {
    Json::arr(algorithms.iter().map(|&alg| {
        let mut total = ProbeReport::default();
        for cell in cells.iter().filter(|c| c.algorithm == alg) {
            let Some(p) = &cell.probe else { continue };
            total.forwards += p.forwards;
            total.forward_then_snoop += p.forward_then_snoop;
            total.snoop_then_forward += p.snoop_then_forward;
            total.write_filter_hits += p.write_filter_hits;
            total.write_filter_misses += p.write_filter_misses;
            total.predictor_lookups += p.predictor_lookups;
            total.predictor_positive += p.predictor_positive;
            total.predictor_trains += p.predictor_trains;
            total.events += p.events;
            total.queue_depth_high_water =
                total.queue_depth_high_water.max(p.queue_depth_high_water);
            total.ring_hop_latency.merge(&p.ring_hop_latency);
            // Footprints are per-run peaks, not additive across cells.
            total.bytes_per_node = total.bytes_per_node.max(p.bytes_per_node);
            total.footprint_total_bytes = total.footprint_total_bytes.max(p.footprint_total_bytes);
        }
        let mut pairs = vec![("algorithm".to_string(), Json::str(alg.to_string()))];
        match probe_json(&total) {
            Json::Obj(fields) => pairs.extend(fields),
            other => pairs.push(("probe".to_string(), other)),
        }
        Json::Obj(pairs)
    }))
}

/// Serializes one [`ProbeReport`] (deterministic: counters only).
fn probe_json(p: &ProbeReport) -> Json {
    Json::obj([
        ("forwards", Json::from(p.forwards)),
        ("forward_then_snoop", Json::from(p.forward_then_snoop)),
        ("snoop_then_forward", Json::from(p.snoop_then_forward)),
        ("write_filter_hits", Json::from(p.write_filter_hits)),
        ("write_filter_misses", Json::from(p.write_filter_misses)),
        ("predictor_lookups", Json::from(p.predictor_lookups)),
        ("predictor_positive", Json::from(p.predictor_positive)),
        ("predictor_trains", Json::from(p.predictor_trains)),
        ("events", Json::from(p.events)),
        (
            "queue_depth_high_water",
            Json::from(p.queue_depth_high_water),
        ),
        ("ring_hop_latency", histogram_json(&p.ring_hop_latency)),
        // `peak_rss_bytes` is deliberately absent: it is volatile and
        // this section must stay deterministic across runs.
        ("bytes_per_node", Json::from(p.bytes_per_node)),
        ("footprint_total_bytes", Json::from(p.footprint_total_bytes)),
    ])
}

/// Serializes a latency histogram as its summary statistics.
fn histogram_json(h: &Histogram) -> Json {
    Json::inline_obj([
        ("count", Json::from(h.count())),
        ("mean", Json::from(h.mean())),
        ("min", h.min().map(Json::UInt).unwrap_or(Json::Null)),
        ("max", h.max().map(Json::UInt).unwrap_or(Json::Null)),
        (
            "p50",
            h.percentile(0.50).map(Json::UInt).unwrap_or(Json::Null),
        ),
        (
            "p95",
            h.percentile(0.95).map(Json::UInt).unwrap_or(Json::Null),
        ),
        (
            "p99",
            h.percentile(0.99).map(Json::UInt).unwrap_or(Json::Null),
        ),
    ])
}

fn note(summary: &mut String, what: &str, ms: u128) {
    let _ = writeln!(summary, "{what}: {ms} ms");
}

/// FNV-1a 64-bit, used for the config fingerprint (stable across runs
/// and platforms; not cryptographic).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Strips every line carrying a `"volatile"` object, for byte-comparing
/// two artifacts across runs or commits.
pub fn strip_volatile(artifact: &str) -> String {
    artifact
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"volatile\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsnoop_workload::profiles;

    fn tiny_options() -> ReportOptions {
        ReportOptions {
            scale: ReportScale {
                figure_accesses: 60,
                table1_accesses: 60,
                table3_accesses: 60,
            },
            probe: false,
            out_dir: PathBuf::from("results"),
            workloads: Some(vec![profiles::specjbb(), profiles::specweb()]),
            ..ReportOptions::smoke()
        }
    }

    #[test]
    fn generates_ten_sections_and_artifacts() {
        let report = generate(&tiny_options());
        assert_eq!(report.artifacts.len(), 10);
        assert_eq!(report.report_md.matches("\n## ").count(), 10);
        let names: Vec<&str> = report
            .artifacts
            .iter()
            .map(|a| a.filename.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "bench_table1.json",
                "bench_table3.json",
                "bench_fig6.json",
                "bench_fig7.json",
                "bench_fig8.json",
                "bench_fig9.json",
                "bench_fig10.json",
                "bench_fig11.json",
                "bench_recovery.json",
                "bench_hierarchy.json",
            ]
        );
        for a in &report.artifacts {
            assert!(a.contents.contains(SCHEMA), "{} has schema", a.filename);
            assert!(
                a.contents.contains("\"fingerprint\""),
                "{} has fingerprint",
                a.filename
            );
            let volatile_lines = a
                .contents
                .lines()
                .filter(|l| l.contains("\"volatile\":"))
                .count();
            assert_eq!(volatile_lines, 1, "{} volatile is one line", a.filename);
        }
    }

    #[test]
    fn regeneration_is_deterministic_modulo_volatile() {
        let opts = tiny_options();
        let a = generate(&opts);
        let b = generate(&opts);
        assert_eq!(a.report_md, b.report_md);
        for (x, y) in a.artifacts.iter().zip(&b.artifacts) {
            assert_eq!(
                strip_volatile(&x.contents),
                strip_volatile(&y.contents),
                "{} deterministic",
                x.filename
            );
        }
    }

    #[test]
    fn via_serve_matches_direct_modulo_volatile() {
        let direct = generate(&tiny_options());
        let mut opts = tiny_options();
        opts.via_serve = true;
        let served = generate(&opts);
        // Satellite guarantee: cache-sourced rows are indistinguishable
        // from recomputed ones everywhere outside the volatile line.
        assert_eq!(direct.report_md, served.report_md);
        for (d, s) in direct.artifacts.iter().zip(&served.artifacts) {
            assert_eq!(
                strip_volatile(&d.contents),
                strip_volatile(&s.contents),
                "{} identical modulo volatile",
                d.filename
            );
        }
        let fig6 = served
            .artifacts
            .iter()
            .find(|a| a.filename == "bench_fig6.json")
            .unwrap();
        assert!(
            fig6.contents.contains("\"serve\": {"),
            "serve counters ride fig6's volatile line"
        );
        assert!(!strip_volatile(&fig6.contents).contains("\"serve\""));
    }

    #[test]
    fn via_serve_probe_counters_match_direct() {
        let mut opts = tiny_options();
        opts.probe = true;
        let direct = generate(&opts);
        opts.via_serve = true;
        let served = generate(&opts);
        let fig6 = |r: &GeneratedReport| {
            r.artifacts
                .iter()
                .find(|a| a.filename == "bench_fig6.json")
                .unwrap()
                .clone()
        };
        assert_eq!(
            strip_volatile(&fig6(&direct).contents),
            strip_volatile(&fig6(&served).contents)
        );
    }

    #[test]
    fn via_serve_check_sees_no_false_staleness_even_on_a_warm_cache() {
        let dir =
            std::env::temp_dir().join(format!("flexsnoop-report-via-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Commit a report generated the direct way…
        generate(&tiny_options()).write(&dir).expect("write");
        // …then regenerate via the service twice over one persistent
        // cache: the second pass answers every matrix cell from the
        // cache, and `check` must still see a byte-identical report.
        let mut opts = tiny_options();
        opts.via_serve = true;
        opts.serve_cache = Some(dir.join("results-cache"));
        let cold = generate(&opts);
        cold.check(&dir).expect("cold via-serve run is not stale");
        let warm = generate(&opts);
        warm.check(&dir).expect("warm via-serve run is not stale");
        let volatile_line = |r: &GeneratedReport| {
            r.artifacts
                .iter()
                .find(|a| a.filename == "bench_fig6.json")
                .unwrap()
                .contents
                .lines()
                .find(|l| l.contains("\"volatile\":"))
                .unwrap()
                .to_string()
        };
        // 2 workloads × the 7 paper algorithms.
        assert!(volatile_line(&cold).contains("\"executed\": 14"));
        assert!(volatile_line(&warm).contains("\"executed\": 0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_lands_in_fig6_artifact() {
        let mut opts = tiny_options();
        opts.probe = true;
        let report = generate(&opts);
        let fig6 = report
            .artifacts
            .iter()
            .find(|a| a.filename == "bench_fig6.json")
            .unwrap();
        assert!(fig6.contents.contains("\"probe\":"));
        assert!(fig6.contents.contains("\"ring_hop_latency\":"));
        let fig7 = report
            .artifacts
            .iter()
            .find(|a| a.filename == "bench_fig7.json")
            .unwrap();
        assert!(!fig7.contents.contains("\"probe\":"));
    }

    #[test]
    fn recovery_sweep_ewma_beats_static_and_stays_clean() {
        let rows = recovery_rows(400);
        assert_eq!(rows.len(), 8);
        let sum = |policy: &str, f: fn(&RecoveryRow) -> u64| -> u64 {
            rows.iter().filter(|r| r.policy == policy).map(f).sum()
        };
        for r in &rows {
            assert_eq!(r.violations, 0, "{} {} oracle", r.algorithm, r.policy);
            assert_eq!(r.in_flight, 0, "{} {} retirement", r.algorithm, r.policy);
        }
        // The schedule is congested but lossless: every static timeout is
        // premature, and the EWMA estimator must learn the congestion.
        let static_spurious = sum("static", |r| r.spurious_retries);
        let ewma_spurious = sum("ewma", |r| r.spurious_retries);
        assert!(
            static_spurious > 0,
            "congestion must provoke the static policy into premature retries"
        );
        assert!(
            ewma_spurious < static_spurious,
            "adaptive timeouts must cut spurious retries: ewma {ewma_spurious} \
             vs static {static_spurious}"
        );
        assert!(sum("ewma", |r| r.rtt_samples) > 0);
    }

    #[test]
    fn hierarchy_sweep_localizes_snoops_and_splits_recovery_energy() {
        let rows = hierarchy_rows(240);
        // Three topology variants per shape, flat first.
        assert_eq!(rows.len(), 3 * HIERARCHY_SHAPES.len());
        for chunk in rows.chunks(3) {
            let (flat, hier, lossy) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!(flat.topology, "flat");
            assert!(hier.topology.starts_with("hier:"));
            assert!(lossy.topology.starts_with("hier-lossy:"));
            for r in chunk {
                assert_eq!(r.violations, 0, "{} oracle", r.topology);
                assert_eq!(r.in_flight, 0, "{} retirement", r.topology);
            }
            // The flat ring has no two-level accounting; the hierarchy
            // completes some circulations in-ring, and every one it
            // cannot is covered by a global lap.
            assert_eq!(flat.local_circulations + flat.global_circulations, 0);
            assert_eq!(flat.bridge_hops, 0);
            assert!(hier.local_circulations > 0, "{}", hier.topology);
            assert!(hier.bridge_hops > 0);
            // In-ring completion must cut snoops per read vs flat.
            assert!(
                hier.snoops_per_read < flat.snoops_per_read,
                "{}: hier {} !< flat {}",
                hier.topology,
                hier.snoops_per_read,
                flat.snoops_per_read
            );
            // Lossless runs charge nothing to recovery; the lossy-bridge
            // run retries and the split charges those hops separately.
            assert_eq!(flat.recovery_overhead_nj, 0.0);
            assert_eq!(hier.recovery_overhead_nj, 0.0);
            assert!(lossy.retries > 0, "{} must retry", lossy.topology);
            assert!(lossy.recovery_overhead_nj > 0.0);
            assert!(lossy.recovery_overhead_nj < lossy.energy_nj);
        }
    }

    #[test]
    fn check_detects_staleness_and_write_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("flexsnoop-report-test-{}", std::process::id()));
        let report = generate(&tiny_options());
        report.write(&dir).expect("write");
        report.check(&dir).expect("fresh copy passes");
        std::fs::write(dir.join("report.md"), "tampered").unwrap();
        let err = report.check(&dir).expect_err("stale copy fails");
        assert!(err.contains("stale"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let opts = tiny_options();
        let a = generate(&opts);
        let mut opts2 = opts.clone();
        opts2.scale.figure_accesses = 80;
        let b = generate(&opts2);
        let fp = |r: &GeneratedReport, name: &str| {
            r.artifacts
                .iter()
                .find(|a| a.filename == name)
                .unwrap()
                .contents
                .lines()
                .find(|l| l.contains("\"fingerprint\""))
                .unwrap()
                .to_string()
        };
        assert_ne!(fp(&a, "bench_fig6.json"), fp(&b, "bench_fig6.json"));
        // Table 1's scale did not change, so its fingerprint is stable.
        assert_eq!(fp(&a, "bench_table1.json"), fp(&b, "bench_table1.json"));
    }
}
