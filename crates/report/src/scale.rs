//! The `flexsnoop bench --scale` ring-scaling sweep.
//!
//! Measures simulator throughput and per-node memory as the ring grows
//! from thousands to a million nodes, producing the versioned
//! `results/bench_scale.json` artifact. The machine is
//! [`MachineConfig::scale`] (single-core CMPs, tiny caches); the workload
//! is eight requester cores spread evenly around the ring, each reading
//! from a small shared line pool so later circulations find cache
//! suppliers, while every other core stays idle. That keeps total work
//! roughly constant across ring sizes — what scales is the *state*:
//! per-node caches, link FIFOs, predictor tables and event wheels.
//!
//! Everything outside the `"volatile"` lines is deterministic for a
//! fixed option set (same seed-free workload, same machine), matching
//! the other `bench_*.json` artifacts; strip with
//! [`crate::strip_volatile`] to diff across commits.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

use flexsnoop::{energy_model_for, Algorithm, MachineConfig, PredictorSpec, Simulator, VecStream};
use flexsnoop_engine::Cycles;
use flexsnoop_metrics::Table;
use flexsnoop_workload::{AccessStream, LineAddr, MemAccess};

use crate::json::Json;
use crate::{fnv1a64, Artifact, VolatileContext};

/// The scale-artifact schema identifier; bump when the layout changes.
pub const SCALE_SCHEMA: &str = "flexsnoop-bench-scale/v1";

/// Ring sizes the full sweep measures: 1k, 128k (the CI smoke ceiling)
/// and 1M nodes.
pub const SCALE_POINTS: [usize; 3] = [1 << 10, 1 << 17, 1 << 20];

/// Requester cores driving each run, spread evenly around the ring.
pub const REQUESTERS: usize = 8;

/// Shared line pool the requesters read from; small enough to stay
/// resident in the tiny [`MachineConfig::scale`] L2s.
const POOL_LINES: u64 = 32;

/// What to run and where to write it.
#[derive(Debug, Clone)]
pub struct ScaleOptions {
    /// Largest ring size to run; [`SCALE_POINTS`] entries above this are
    /// skipped (the CI smoke job caps at 128k).
    pub max_nodes: usize,
    /// Event-wheel segments per run (clamped to the node count).
    pub segments: usize,
    /// Total ring events to aim for per run; sets the per-requester
    /// access count so wall time stays roughly flat across ring sizes.
    pub target_events: u64,
    /// Output directory for `bench_scale.json`.
    pub out_dir: PathBuf,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        ScaleOptions {
            max_nodes: 1 << 20,
            segments: 4,
            target_events: 2_000_000,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// One measured (ring size, algorithm) cell.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Ring size.
    pub nodes: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Event-wheel segments used.
    pub segments: usize,
    /// Accesses each requester core issued.
    pub accesses_per_core: u64,
    /// Events dispatched.
    pub events: u64,
    /// Ring link crossings (read + write messages).
    pub ring_hops: u64,
    /// CMP snoop operations performed.
    pub snoops: u64,
    /// Simulated cycles to drain the workload.
    pub exec_cycles: u64,
    /// Estimated simulator heap bytes per node.
    pub bytes_per_node: u64,
    /// Estimated total simulator heap bytes.
    pub footprint_total_bytes: u64,
    /// Wall-clock milliseconds for this run (volatile).
    pub wall_ms: u64,
    /// Events dispatched per wall-clock second (volatile).
    pub events_per_sec: f64,
}

/// Everything one sweep produced, still in memory.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// The measured rows, in (point, algorithm) order.
    pub rows: Vec<ScaleRow>,
    /// The rendered `bench_scale.json`.
    pub artifact: Artifact,
    /// Human-readable row table plus timing summary.
    pub summary: String,
}

impl ScaleReport {
    /// Writes `bench_scale.json` into `out_dir`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path that failed to write.
    pub fn write(&self, out_dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("create {}: {e}", out_dir.display()))?;
        let path = out_dir.join(&self.artifact.filename);
        std::fs::write(&path, &self.artifact.contents)
            .map_err(|e| format!("write {}: {e}", path.display()))
    }
}

/// The algorithms the sweep measures. Lazy is predictor-free (the pure
/// forwarding floor); Subset uses a deliberately small 8-entry table so
/// the flat per-node bank stays proportional at a million nodes.
fn scale_algorithms() -> [(Algorithm, PredictorSpec); 2] {
    [
        (Algorithm::Lazy, PredictorSpec::None),
        (Algorithm::Subset, PredictorSpec::Subset { entries: 8 }),
    ]
}

/// Accesses per requester core for a ring of `nodes`: aims the run at
/// `target_events` total events (each access circulates the whole ring),
/// never fewer than 2 so every size exercises re-reads.
fn accesses_for(nodes: usize, target_events: u64) -> u64 {
    (target_events / (REQUESTERS as u64 * nodes as u64)).clamp(2, 512)
}

/// One access stream per core: the eight requesters read `accesses`
/// lines round-robin from the shared pool (staggered starts so they
/// collide only occasionally); every other core is idle.
fn build_streams(nodes: usize, accesses: u64) -> Vec<Box<dyn AccessStream + Send>> {
    let requesters: HashSet<usize> = (0..REQUESTERS).map(|i| i * nodes / REQUESTERS).collect();
    (0..nodes)
        .map(|core| {
            let accesses_here = if requesters.contains(&core) {
                accesses
            } else {
                0
            };
            let reads = (0..accesses_here)
                .map(|k| {
                    let line = (core as u64 + k) % POOL_LINES;
                    MemAccess::read(LineAddr(line), Cycles(10))
                })
                .collect();
            Box::new(VecStream::new(reads)) as Box<dyn AccessStream + Send>
        })
        .collect()
}

/// Runs one (ring size, algorithm) cell.
fn run_point(
    nodes: usize,
    algorithm: Algorithm,
    spec: PredictorSpec,
    opts: &ScaleOptions,
) -> ScaleRow {
    let accesses = accesses_for(nodes, opts.target_events);
    let machine = MachineConfig::scale(nodes);
    let streams = build_streams(nodes, accesses);
    let mut sim = Simulator::new(
        machine,
        algorithm,
        spec,
        energy_model_for(&spec),
        streams,
        accesses,
    )
    .unwrap_or_else(|e| panic!("scale sweep {nodes}x{algorithm}: {e}"));
    let segments = opts.segments.clamp(1, nodes);
    sim.set_segments(segments);
    sim.enable_probe();
    let t = Instant::now();
    let stats = sim.run();
    let wall = t.elapsed();
    let probe = sim.probe_report().expect("probe was enabled");
    ScaleRow {
        nodes,
        algorithm: algorithm.to_string(),
        segments,
        accesses_per_core: accesses,
        events: stats.events,
        ring_hops: stats.read_ring_hops + stats.write_ring_hops,
        snoops: stats.read_snoops + stats.write_snoops,
        exec_cycles: stats.exec_cycles.as_u64(),
        bytes_per_node: probe.bytes_per_node,
        footprint_total_bytes: probe.footprint_total_bytes,
        wall_ms: wall.as_millis() as u64,
        events_per_sec: stats.events as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Runs the sweep and assembles `bench_scale.json` in memory.
///
/// # Panics
///
/// Panics if a simulation fails to configure (a bug, not an environment
/// condition).
pub fn run_scale(opts: &ScaleOptions) -> ScaleReport {
    let volatile = VolatileContext::capture();
    let t_all = Instant::now();
    let points: Vec<usize> = SCALE_POINTS
        .into_iter()
        .filter(|&n| n <= opts.max_nodes)
        .collect();
    let mut rows = Vec::new();
    for &nodes in &points {
        for (algorithm, spec) in scale_algorithms() {
            rows.push(run_point(nodes, algorithm, spec, opts));
        }
    }
    let wall_ms = t_all.elapsed().as_millis() as u64;
    let peak_rss = flexsnoop::probe::peak_rss_bytes().unwrap_or(0);

    let config = Json::obj([
        ("points", Json::arr(points.iter().map(|&n| Json::from(n)))),
        (
            "algorithms",
            Json::arr(
                scale_algorithms()
                    .iter()
                    .map(|(a, _)| Json::str(a.to_string())),
            ),
        ),
        ("segments", Json::from(opts.segments)),
        ("requesters", Json::from(REQUESTERS)),
        ("pool_lines", Json::from(POOL_LINES)),
        ("target_events", Json::from(opts.target_events)),
    ]);
    let fingerprint = {
        let canonical = format!("{SCALE_SCHEMA}/scale/{}", config.render());
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    };
    let mut config_pairs = match &config {
        Json::Obj(pairs) => pairs.clone(),
        other => vec![("value".to_string(), other.clone())],
    };
    config_pairs.push(("fingerprint".to_string(), Json::Str(fingerprint)));

    let row_json = Json::arr(rows.iter().map(|r| {
        Json::obj([
            ("nodes", Json::from(r.nodes)),
            ("algorithm", Json::str(r.algorithm.clone())),
            ("segments", Json::from(r.segments)),
            ("accesses_per_core", Json::from(r.accesses_per_core)),
            ("events", Json::from(r.events)),
            ("ring_hops", Json::from(r.ring_hops)),
            ("snoops", Json::from(r.snoops)),
            ("exec_cycles", Json::from(r.exec_cycles)),
            ("bytes_per_node", Json::from(r.bytes_per_node)),
            ("footprint_total_bytes", Json::from(r.footprint_total_bytes)),
            (
                "volatile",
                Json::inline_obj([
                    ("wall_ms", Json::from(r.wall_ms)),
                    ("events_per_sec", Json::from(r.events_per_sec)),
                ]),
            ),
        ])
    }));
    let doc = Json::obj([
        ("schema", Json::str(SCALE_SCHEMA)),
        ("figure", Json::str("scale")),
        (
            "title",
            Json::str("Ring-scaling sweep — events/sec and bytes/node vs ring size"),
        ),
        ("config", Json::Obj(config_pairs)),
        (
            "volatile",
            Json::inline_obj([
                ("git_sha", Json::str(volatile.git_sha.clone())),
                ("generated_unix_ms", Json::from(volatile.unix_ms)),
                ("wall_ms", Json::from(wall_ms)),
                ("peak_rss_bytes", Json::from(peak_rss)),
            ]),
        ),
        ("rows", row_json),
    ]);

    let mut table = Table::with_columns(&[
        "nodes",
        "algorithm",
        "accesses",
        "events",
        "exec-cycles",
        "bytes/node",
        "events/sec",
        "wall-ms",
    ]);
    for r in &rows {
        table.row(vec![
            r.nodes.to_string(),
            r.algorithm.clone(),
            r.accesses_per_core.to_string(),
            r.events.to_string(),
            r.exec_cycles.to_string(),
            r.bytes_per_node.to_string(),
            format!("{:.0}", r.events_per_sec),
            r.wall_ms.to_string(),
        ]);
    }
    let mut summary = table.render();
    summary.push_str(&format!(
        "\npeak RSS: {:.1} MB, total wall: {} ms\n",
        peak_rss as f64 / (1024.0 * 1024.0),
        wall_ms
    ));

    ScaleReport {
        rows,
        artifact: Artifact {
            filename: "bench_scale.json".to_string(),
            contents: format!("{}\n", doc.render()),
        },
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip_volatile;

    fn tiny_options() -> ScaleOptions {
        ScaleOptions {
            max_nodes: 1 << 10,
            segments: 4,
            target_events: 40_000,
            ..ScaleOptions::default()
        }
    }

    #[test]
    fn sweep_produces_rows_and_artifact() {
        let report = run_scale(&tiny_options());
        // One point (1024) x two algorithms.
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert_eq!(r.nodes, 1 << 10);
            assert!(r.events > 0, "{} events", r.algorithm);
            assert!(r.ring_hops > 0);
            assert!(r.bytes_per_node > 0);
            assert!(r.footprint_total_bytes >= r.bytes_per_node);
        }
        let a = &report.artifact;
        assert_eq!(a.filename, "bench_scale.json");
        assert!(a.contents.contains(SCALE_SCHEMA));
        assert!(a.contents.contains("\"fingerprint\""));
        assert!(a.contents.contains("\"bytes_per_node\""));
        // Row volatiles plus the top-level one, each on its own line.
        let volatile_lines = a
            .contents
            .lines()
            .filter(|l| l.trim_start().starts_with("\"volatile\":"))
            .count();
        assert_eq!(volatile_lines, report.rows.len() + 1);
        assert!(report.summary.contains("events/sec"));
    }

    #[test]
    fn sweep_is_deterministic_modulo_volatile() {
        let opts = tiny_options();
        let a = run_scale(&opts);
        let b = run_scale(&opts);
        assert_eq!(
            strip_volatile(&a.artifact.contents),
            strip_volatile(&b.artifact.contents)
        );
    }

    #[test]
    fn access_budget_clamps() {
        assert_eq!(accesses_for(1 << 10, 2_000_000), 244);
        assert_eq!(accesses_for(1 << 20, 2_000_000), 2);
        assert_eq!(accesses_for(8, u64::MAX), 512);
    }
}
