//! Cycle-granular time types.
//!
//! The simulator measures all time in processor clock cycles (the paper's
//! Table 4 is specified in 6 GHz processor cycles). Two newtypes keep
//! absolute timestamps and durations from being confused:
//!
//! * [`Cycle`] — a point on the simulation timeline.
//! * [`Cycles`] — a span of time (duration).
//!
//! `Cycle + Cycles = Cycle`, `Cycle - Cycle = Cycles`; adding two absolute
//! timestamps is a compile error, which catches a whole class of latency
//! bookkeeping bugs statically.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An absolute point in simulation time, in processor cycles.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{Cycle, Cycles};
///
/// let start = Cycle::new(100);
/// let end = start + Cycles(39);
/// assert_eq!(end - start, Cycles(39));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The origin of the simulation timeline.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates an absolute timestamp at cycle `c`.
    pub const fn new(c: u64) -> Self {
        Cycle(c)
    }

    /// The raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Cycle) -> Cycles {
        debug_assert!(self >= earlier, "since() called with a later timestamp");
        Cycles(self.0 - earlier.0)
    }

    /// The later of two timestamps.
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A duration in processor cycles.
///
/// The inner field is public: `Cycles` is a plain value in the C-struct
/// spirit and has no invariant to protect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: returns zero rather than underflowing.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add<Cycles> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycle {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Cycles;
    fn sub(self, rhs: Cycle) -> Cycles {
        assert!(self >= rhs, "timestamp subtraction underflow");
        Cycles(self.0 - rhs.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        assert!(self >= rhs, "duration subtraction underflow");
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Cycle::new(10) + Cycles(5);
        assert_eq!(t, Cycle::new(15));
        assert_eq!(t - Cycle::new(10), Cycles(5));
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(4) - Cycles(3), Cycles(1));
        assert_eq!(Cycles(3) * 4, Cycles(12));
    }

    #[test]
    fn since_and_max() {
        assert_eq!(Cycle::new(20).since(Cycle::new(5)), Cycles(15));
        assert_eq!(Cycle::new(3).max(Cycle::new(9)), Cycle::new(9));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn timestamp_subtraction_underflow_panics() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        assert_eq!(Cycles(5).saturating_sub(Cycles(3)), Cycles(2));
    }

    #[test]
    fn sum_of_durations() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(7).to_string(), "cycle 7");
        assert_eq!(Cycles(7).to_string(), "7 cycles");
    }
}
