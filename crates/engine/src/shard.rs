//! Sharded event scheduling for ring-segment parallelism.
//!
//! Two layers, usable independently:
//!
//! * [`ShardedScheduler`] — one timing wheel **per ring segment** instead
//!   of a single global wheel. A global insertion-sequence counter spans
//!   all shards, and `pop` merges shard heads by `(time, sequence)`, so
//!   the pop order is **bit-identical** to a single [`crate::Scheduler`]
//!   fed the same pushes — for any shard count and either queue backend.
//!   This keeps per-shard wheels short and cache-resident at large node
//!   counts while preserving the determinism contract.
//! * [`run_conservative`] — a conservative (lookahead-synchronized)
//!   parallel driver that executes the shards of a window concurrently on
//!   the work-stealing [`Executor`]. Ring-hop latency is the natural
//!   lookahead: a message emitted by segment A for segment B can never
//!   arrive sooner than one hop, so all events inside a window of one
//!   hop latency are causally independent across segments and no rollback
//!   is ever needed.
//!
//! Cross-segment sends inside a window are rejected (asserted) rather
//! than reordered; the barrier between windows sorts deferred sends by a
//! caller-supplied `(time, key)` so the schedule is independent of the
//! segment count and executor width.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::executor::Executor;
use crate::time::{Cycle, Cycles};
use crate::{QueueKind, Scheduler};

/// Maps a ring node to its segment: `segments` contiguous arcs of
/// (almost) equal length, in node order.
#[inline]
pub fn segment_of(node: usize, nodes: usize, segments: usize) -> usize {
    debug_assert!(node < nodes && segments >= 1);
    node * segments / nodes
}

/// A min-heap entry ordered by `(time, sequence)`.
#[derive(Debug, Clone)]
struct Pending<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Pending<E> {}

/// One shard: an inner queue plus a popped-ahead front and a stash.
///
/// The front is the inner queue's minimum, popped ahead so the merge can
/// compare shard heads without a general `peek` on the wheels. Pushes
/// that undercut the front (legal: another shard may hold the global
/// clock far behind this shard's earliest event) cannot re-enter the
/// wheel — its cursor already advanced past them — so they wait in the
/// stash heap, which is merged with the front on every pop.
#[derive(Debug)]
struct Shard<E> {
    inner: Scheduler<(u64, E)>,
    front: Option<Pending<E>>,
    stash: BinaryHeap<Pending<E>>,
}

impl<E> Shard<E> {
    fn new(kind: QueueKind) -> Self {
        Self {
            inner: Scheduler::with_queue(kind),
            front: None,
            stash: BinaryHeap::new(),
        }
    }

    /// Refills the front from the inner queue if it was consumed.
    #[inline]
    fn ensure_front(&mut self) {
        if self.front.is_none() {
            self.front = self
                .inner
                .pop()
                .map(|(time, (seq, event))| Pending { time, seq, event });
        }
    }

    /// `(time, seq)` of this shard's earliest pending event.
    #[inline]
    fn min_key(&self) -> Option<(Cycle, u64)> {
        let f = self.front.as_ref().map(|p| (p.time, p.seq));
        let s = self.stash.peek().map(|p| (p.time, p.seq));
        match (f, s) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Earliest pending timestamp without disturbing the front.
    fn peek_time(&self) -> Option<Cycle> {
        [
            self.front.as_ref().map(|p| p.time),
            self.stash.peek().map(|p| p.time),
            self.inner.peek_time(),
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// A set of per-segment event queues with a single global clock and a
/// pop order bit-identical to an unsharded [`Scheduler`].
///
/// Every push is stamped with a globally monotonic sequence number;
/// `pop` returns the minimum `(time, sequence)` across all shards. Since
/// each shard preserves `(time, sequence)` order internally (both queue
/// backends pop in insertion order within a timestamp), the merged order
/// equals the order a single queue would produce for the same pushes —
/// the shard count is purely a performance/layout choice.
#[derive(Debug)]
pub struct ShardedScheduler<E> {
    now: Cycle,
    shards: Vec<Shard<E>>,
    kind: QueueKind,
    seq: u64,
    len: usize,
}

impl<E> ShardedScheduler<E> {
    /// Creates an empty scheduler with `shards` independent queues.
    pub fn new(kind: QueueKind, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            now: Cycle::ZERO,
            shards: (0..shards).map(|_| Shard::new(kind)).collect(),
            kind,
            seq: 0,
            len: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which queue implementation backs each shard.
    pub fn queue_kind(&self) -> QueueKind {
        self.kind
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` on `shard` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    #[inline]
    pub fn schedule_at(&mut self, shard: usize, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let sh = &mut self.shards[shard];
        match &sh.front {
            // The shard's wheel cursor sits at the front's timestamp; an
            // earlier push waits in the stash instead.
            Some(front) if at < front.time => sh.stash.push(Pending {
                time: at,
                seq,
                event,
            }),
            _ => sh.inner.schedule_at(at, (seq, event)),
        }
        self.len += 1;
    }

    /// Schedules `event` on `shard` after `delay` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, shard: usize, delay: Cycles, event: E) {
        self.schedule_at(shard, self.now + delay, event);
    }

    /// Pops the globally earliest event, advancing the clock; returns the
    /// shard it was scheduled on.
    pub fn pop(&mut self) -> Option<(Cycle, usize, E)> {
        let mut best: Option<((Cycle, u64), usize)> = None;
        for (i, sh) in self.shards.iter_mut().enumerate() {
            sh.ensure_front();
            if let Some(key) = sh.min_key() {
                if best.map(|(bk, _)| key < bk).unwrap_or(true) {
                    best = Some((key, i));
                }
            }
        }
        let ((time, seq), idx) = best?;
        let sh = &mut self.shards[idx];
        let take_stash = sh
            .stash
            .peek()
            .map(|p| (p.time, p.seq) == (time, seq))
            .unwrap_or(false);
        let event = if take_stash {
            sh.stash.pop().expect("stash entry present").event
        } else {
            let front = sh.front.take().expect("front entry present");
            // A consumed front implies an empty stash: stash entries are
            // strictly earlier than the front, so they win the merge.
            debug_assert!(sh.stash.is_empty());
            front.event
        };
        debug_assert!(time >= self.now, "shard returned a past event");
        self.now = time;
        self.len -= 1;
        Some((time, idx, event))
    }

    /// Pops the next event only if it is strictly before `end`.
    pub fn pop_before(&mut self, end: Cycle) -> Option<(Cycle, usize, E)> {
        // ensure_front inside pop is what discovers the minimum; peek
        // first via the cheap per-shard peeks to avoid consuming.
        match self.peek_time() {
            Some(t) if t < end => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.shards.iter().filter_map(|s| s.peek_time()).min()
    }
}

/// One ring segment's event handler for the conservative parallel driver.
///
/// Implementations own the per-segment simulation state (the arc of nodes
/// assigned to this shard) and react to events by mutating it and sending
/// follow-up events through the [`Outbox`].
pub trait RingSegment: Send {
    /// The event type flowing between segments.
    type Event: Send;

    /// Handles one event at simulation time `now`.
    fn handle(&mut self, now: Cycle, event: Self::Event, out: &mut Outbox<Self::Event>);
}

/// A deferred cross-window send, ordered at the barrier by `(at, key)`.
#[derive(Debug)]
struct Deferred<E> {
    at: Cycle,
    shard: usize,
    key: u64,
    event: E,
}

/// The send interface handed to [`RingSegment::handle`] during a window.
///
/// Same-segment sends landing inside the current window are processed
/// immediately (in `(time, emission order)`) by the same task; everything
/// else is deferred to the window barrier. Cross-segment sends must
/// respect the lookahead — at least one ring-hop latency in the future —
/// which is what makes the windows causally independent.
#[derive(Debug)]
pub struct Outbox<E> {
    shard: usize,
    now: Cycle,
    window_end: Cycle,
    lookahead: Cycles,
    local: BinaryHeap<Pending<E>>,
    local_seq: u64,
    deferred: Vec<Deferred<E>>,
}

impl<E> Outbox<E> {
    fn new(shard: usize, window_end: Cycle, lookahead: Cycles) -> Self {
        Self {
            shard,
            now: Cycle::ZERO,
            window_end,
            lookahead,
            local: BinaryHeap::new(),
            local_seq: 0,
            deferred: Vec::new(),
        }
    }

    /// Current simulation time of the event being handled.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Sends `event` to `shard` at absolute time `at`.
    ///
    /// `key` must order deterministically and uniquely among all sends of
    /// a window that share a timestamp (e.g. `source_node << 32 | per-node
    /// counter`); the barrier sorts deferred sends by `(at, key)` so the
    /// global schedule does not depend on the segment count.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, or if a cross-segment send violates
    /// the lookahead (arrives sooner than one ring hop).
    pub fn send(&mut self, shard: usize, at: Cycle, key: u64, event: E) {
        assert!(
            at >= self.now,
            "send into the past: at={at}, now={}",
            self.now
        );
        if shard == self.shard && at < self.window_end {
            let seq = self.local_seq;
            self.local_seq += 1;
            self.local.push(Pending {
                time: at,
                seq,
                event,
            });
        } else {
            if shard != self.shard {
                assert!(
                    at >= self.now + self.lookahead,
                    "cross-segment send violates lookahead: at={at}, now={}, lookahead={:?}",
                    self.now,
                    self.lookahead
                );
            }
            self.deferred.push(Deferred {
                at,
                shard,
                key,
                event,
            });
        }
    }

    /// Next in-window event for this segment, advancing the local clock.
    fn next_local(&mut self) -> Option<(Cycle, E)> {
        let p = self.local.pop()?;
        debug_assert!(p.time >= self.now && p.time < self.window_end);
        self.now = p.time;
        Some((p.time, p.event))
    }
}

/// Runs the scheduler to completion, executing each time window's
/// segments in parallel on `executor`.
///
/// Windows span `lookahead` cycles starting at the earliest pending
/// event. All events inside a window are drained, partitioned by shard,
/// and handled concurrently — safe because cross-segment sends cannot
/// land within the window (asserted in [`Outbox::send`]). At the barrier,
/// deferred sends are sorted by `(time, key)` and re-scheduled, making
/// the execution deterministic for any segment count and executor width
/// (given well-formed keys).
///
/// Returns the number of events processed.
pub fn run_conservative<S: RingSegment>(
    sched: &mut ShardedScheduler<S::Event>,
    segments: &mut [S],
    executor: &Executor,
    lookahead: Cycles,
) -> u64 {
    assert_eq!(
        segments.len(),
        sched.shard_count(),
        "one segment per scheduler shard"
    );
    assert!(lookahead.0 > 0, "lookahead must be positive");
    let mut processed = 0u64;
    while let Some(t0) = sched.peek_time() {
        let end = t0 + lookahead;
        let mut batches: Vec<Vec<(Cycle, S::Event)>> =
            (0..segments.len()).map(|_| Vec::new()).collect();
        while let Some((t, shard, event)) = sched.pop_before(end) {
            batches[shard].push((t, event));
        }
        let tasks: Vec<_> = segments
            .iter_mut()
            .zip(batches)
            .enumerate()
            .map(|(i, (seg, batch))| {
                move || {
                    let mut out = Outbox::new(i, end, lookahead);
                    for (time, event) in batch {
                        let seq = out.local_seq;
                        out.local_seq += 1;
                        out.local.push(Pending { time, seq, event });
                    }
                    let mut handled = 0u64;
                    while let Some((t, event)) = out.next_local() {
                        seg.handle(t, event, &mut out);
                        handled += 1;
                    }
                    (out.deferred, handled)
                }
            })
            .collect();
        // Tasks borrow the segments; the executor joins them all before
        // returning, and results come back in task (= shard) order.
        let results = executor.run(tasks);
        let mut outgoing: Vec<Deferred<S::Event>> = Vec::new();
        for (deferred, handled) in results {
            processed += handled;
            outgoing.extend(deferred);
        }
        // (time, key) is required to be unique per window, so this sort
        // yields one global order regardless of how many segments the
        // sends came from.
        outgoing.sort_by_key(|d| (d.at, d.key));
        for d in outgoing {
            sched.schedule_at(d.shard, d.at, d.event);
        }
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    /// The sharded merge must reproduce the single-queue pop order
    /// exactly, for any shard count and either backend.
    #[test]
    fn sharded_order_matches_single_scheduler() {
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for shards in [1usize, 2, 4, 7] {
                let mut rng = SplitMix64::new(0xfeed + shards as u64);
                let mut single: Scheduler<u64> = Scheduler::with_queue(kind);
                let mut sharded: ShardedScheduler<u64> = ShardedScheduler::new(kind, shards);
                let mut now = 0u64;
                for step in 0..20_000u64 {
                    let delay = match rng.next_below(10) {
                        0 => 0,
                        1..=6 => rng.next_below(200),
                        7..=8 => rng.next_below(5_000),
                        _ => rng.next_below(100_000),
                    };
                    let node = rng.next_below(64) as usize;
                    let at = Cycle::new(now + delay);
                    single.schedule_at(at, step);
                    sharded.schedule_at(segment_of(node, 64, shards), at, step);
                    if rng.next_below(3) > 0 {
                        let a = single.pop();
                        let b = sharded.pop().map(|(t, _, e)| (t, e));
                        assert_eq!(a, b, "diverged at step {step} (shards={shards})");
                        if let Some((t, _)) = a {
                            now = t.as_u64();
                        }
                    }
                }
                loop {
                    let a = single.pop();
                    let b = sharded.pop().map(|(t, _, e)| (t, e));
                    assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// A push earlier than a shard's popped-ahead front must take the
    /// stash path and still pop in global order.
    #[test]
    fn stash_absorbs_pushes_behind_a_front() {
        let mut s: ShardedScheduler<&str> = ShardedScheduler::new(QueueKind::Bucketed, 2);
        s.schedule_at(0, Cycle::new(100), "late");
        s.schedule_at(1, Cycle::new(5), "early");
        // This pop establishes shard 0's front at t=100.
        assert_eq!(s.pop(), Some((Cycle::new(5), 1, "early")));
        // t=10 undercuts shard 0's front; the wheel cursor is past it.
        s.schedule_at(0, Cycle::new(10), "stashed");
        assert_eq!(s.pop(), Some((Cycle::new(10), 0, "stashed")));
        assert_eq!(s.pop(), Some((Cycle::new(100), 0, "late")));
        assert_eq!(s.pop(), None);
    }

    // ----- conservative driver on a synthetic embedded ring -------------

    const NODES: usize = 24;
    const HOP: u64 = 10;

    /// A token circulating the ring, as in a snoop request's round trip.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Token {
        node: usize,
        id: u64,
        hops_left: u32,
    }

    /// One arc of the ring: visit logs for its nodes plus per-node send
    /// counters (segment-independent, so barrier keys are too).
    struct Arc {
        segments: usize,
        /// (time, token id) per node, for the whole ring; only this
        /// arc's rows are touched.
        visits: Vec<Vec<(u64, u64)>>,
        sends: Vec<u64>,
    }

    impl RingSegment for Arc {
        type Event = Token;

        fn handle(&mut self, now: Cycle, ev: Token, out: &mut Outbox<Token>) {
            self.visits[ev.node].push((now.as_u64(), ev.id));
            if ev.hops_left == 0 {
                return;
            }
            let next = (ev.node + 1) % NODES;
            // Jitter keeps windows non-trivial while never dipping below
            // the one-hop lookahead.
            let delay = HOP + (ev.id + next as u64) % 3;
            let key = (ev.node as u64) << 32 | self.sends[ev.node];
            self.sends[ev.node] += 1;
            out.send(
                segment_of(next, NODES, self.segments),
                now + Cycles(delay),
                key,
                Token {
                    node: next,
                    id: ev.id,
                    hops_left: ev.hops_left - 1,
                },
            );
        }
    }

    fn drive(segments: usize, width: usize, kind: QueueKind) -> (u64, Vec<Vec<(u64, u64)>>) {
        let mut sched: ShardedScheduler<Token> = ShardedScheduler::new(kind, segments);
        for id in 0..6u64 {
            let node = (id as usize * 5) % NODES;
            sched.schedule_at(
                segment_of(node, NODES, segments),
                Cycle::new(id * 3),
                Token {
                    node,
                    id,
                    hops_left: 2 * NODES as u32 + id as u32,
                },
            );
        }
        let mut segs: Vec<Arc> = (0..segments)
            .map(|_| Arc {
                segments,
                visits: vec![Vec::new(); NODES],
                sends: vec![0; NODES],
            })
            .collect();
        let executor = Executor::new(width);
        let processed = run_conservative(&mut sched, &mut segs, &executor, Cycles(HOP));
        // Merge the per-arc visit logs (each node belongs to one arc).
        let mut visits = vec![Vec::new(); NODES];
        for seg in segs {
            for (n, log) in seg.visits.into_iter().enumerate() {
                if !log.is_empty() {
                    visits[n] = log;
                }
            }
        }
        (processed, visits)
    }

    /// The parallel conservative schedule must be bit-identical across
    /// segment counts × executor widths × queue backends.
    #[test]
    fn conservative_driver_is_segment_and_width_invariant() {
        let (baseline_n, baseline) = drive(1, 1, QueueKind::Bucketed);
        assert!(baseline_n > 0);
        let total: usize = baseline.iter().map(|v| v.len()).sum();
        assert_eq!(baseline_n as usize, total);
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for segments in [1usize, 2, 4] {
                for width in [1usize, 2, 4] {
                    let (n, visits) = drive(segments, width, kind);
                    assert_eq!(n, baseline_n, "segments={segments} width={width}");
                    assert_eq!(
                        visits, baseline,
                        "timeline diverged: segments={segments} width={width} {kind:?}"
                    );
                }
            }
        }
    }

    /// Cross-segment sends below one hop of lookahead must be rejected.
    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn undercutting_lookahead_panics() {
        struct Bad;
        impl RingSegment for Bad {
            type Event = ();
            fn handle(&mut self, now: Cycle, _ev: (), out: &mut Outbox<()>) {
                out.send(1, now + Cycles(1), 0, ());
            }
        }
        let mut sched: ShardedScheduler<()> = ShardedScheduler::new(QueueKind::Bucketed, 2);
        sched.schedule_at(0, Cycle::new(0), ());
        let executor = Executor::new(1);
        run_conservative(&mut sched, &mut [Bad, Bad], &executor, Cycles(HOP));
    }
}
