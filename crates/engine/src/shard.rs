//! Sharded event scheduling for ring-segment parallelism.
//!
//! Two layers, usable independently:
//!
//! * [`ShardedScheduler`] — one timing wheel **per ring segment** instead
//!   of a single global wheel. A global insertion-sequence counter spans
//!   all shards, and `pop` merges shard heads by `(time, sequence)`, so
//!   the pop order is **bit-identical** to a single [`crate::Scheduler`]
//!   fed the same pushes — for any shard count and either queue backend.
//!   This keeps per-shard wheels short and cache-resident at large node
//!   counts while preserving the determinism contract.
//! * [`run_conservative`] — a conservative (lookahead-synchronized)
//!   parallel driver that executes the shards of a window concurrently on
//!   the work-stealing [`Executor`]. Ring-hop latency is the natural
//!   lookahead: a message emitted by segment A for segment B can never
//!   arrive sooner than one hop, so all events inside a window of one
//!   hop latency are causally independent across segments and no rollback
//!   is ever needed.
//!
//! Cross-segment sends inside a window are rejected (asserted) rather
//! than reordered. At the barrier between windows, deferred sends are
//! ordered by a **symbolic replay** of the reference single-queue
//! schedule: each handler's emissions were recorded in emission order, so
//! the barrier can reconstruct exactly which global sequence number every
//! send would have received had the whole window run on one
//! [`crate::Scheduler`]. The resulting schedule is therefore identical to
//! the sequential one for any segment count and executor width —
//! including the adversarial case of multiple cross-segment sends landing
//! on the same cycle exactly at the lookahead boundary, where an
//! arbitrary caller-supplied tie-break would diverge.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::executor::Executor;
use crate::time::{Cycle, Cycles};
use crate::{QueueKind, Scheduler};

/// Maps a ring node to its segment: `segments` contiguous arcs of
/// (almost) equal length, in node order.
#[inline]
pub fn segment_of(node: usize, nodes: usize, segments: usize) -> usize {
    debug_assert!(node < nodes && segments >= 1);
    node * segments / nodes
}

/// A min-heap entry ordered by `(time, sequence)`.
#[derive(Debug, Clone)]
struct Pending<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Pending<E> {}

/// One shard: an inner queue plus a popped-ahead front and a stash.
///
/// The front is the inner queue's minimum, popped ahead so the merge can
/// compare shard heads without a general `peek` on the wheels. Pushes
/// that undercut the front (legal: another shard may hold the global
/// clock far behind this shard's earliest event) cannot re-enter the
/// wheel — its cursor already advanced past them — so they wait in the
/// stash heap, which is merged with the front on every pop.
#[derive(Debug)]
struct Shard<E> {
    inner: Scheduler<(u64, E)>,
    front: Option<Pending<E>>,
    stash: BinaryHeap<Pending<E>>,
}

impl<E> Shard<E> {
    fn new(kind: QueueKind) -> Self {
        Self {
            inner: Scheduler::with_queue(kind),
            front: None,
            stash: BinaryHeap::new(),
        }
    }

    /// Refills the front from the inner queue if it was consumed.
    #[inline]
    fn ensure_front(&mut self) {
        if self.front.is_none() {
            self.front = self
                .inner
                .pop()
                .map(|(time, (seq, event))| Pending { time, seq, event });
        }
    }

    /// `(time, seq)` of this shard's earliest pending event.
    #[inline]
    fn min_key(&self) -> Option<(Cycle, u64)> {
        let f = self.front.as_ref().map(|p| (p.time, p.seq));
        let s = self.stash.peek().map(|p| (p.time, p.seq));
        match (f, s) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Earliest pending timestamp without disturbing the front.
    fn peek_time(&self) -> Option<Cycle> {
        [
            self.front.as_ref().map(|p| p.time),
            self.stash.peek().map(|p| p.time),
            self.inner.peek_time(),
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// A set of per-segment event queues with a single global clock and a
/// pop order bit-identical to an unsharded [`Scheduler`].
///
/// Every push is stamped with a globally monotonic sequence number;
/// `pop` returns the minimum `(time, sequence)` across all shards. Since
/// each shard preserves `(time, sequence)` order internally (both queue
/// backends pop in insertion order within a timestamp), the merged order
/// equals the order a single queue would produce for the same pushes —
/// the shard count is purely a performance/layout choice.
#[derive(Debug)]
pub struct ShardedScheduler<E> {
    now: Cycle,
    shards: Vec<Shard<E>>,
    kind: QueueKind,
    seq: u64,
    len: usize,
}

impl<E> ShardedScheduler<E> {
    /// Creates an empty scheduler with `shards` independent queues.
    pub fn new(kind: QueueKind, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            now: Cycle::ZERO,
            shards: (0..shards).map(|_| Shard::new(kind)).collect(),
            kind,
            seq: 0,
            len: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which queue implementation backs each shard.
    pub fn queue_kind(&self) -> QueueKind {
        self.kind
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` on `shard` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    #[inline]
    pub fn schedule_at(&mut self, shard: usize, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let sh = &mut self.shards[shard];
        match &sh.front {
            // The shard's wheel cursor sits at the front's timestamp; an
            // earlier push waits in the stash instead.
            Some(front) if at < front.time => sh.stash.push(Pending {
                time: at,
                seq,
                event,
            }),
            _ => sh.inner.schedule_at(at, (seq, event)),
        }
        self.len += 1;
    }

    /// Schedules `event` on `shard` after `delay` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, shard: usize, delay: Cycles, event: E) {
        self.schedule_at(shard, self.now + delay, event);
    }

    /// Pops the globally earliest event, advancing the clock; returns the
    /// shard it was scheduled on.
    pub fn pop(&mut self) -> Option<(Cycle, usize, E)> {
        let mut best: Option<((Cycle, u64), usize)> = None;
        for (i, sh) in self.shards.iter_mut().enumerate() {
            sh.ensure_front();
            if let Some(key) = sh.min_key() {
                if best.map(|(bk, _)| key < bk).unwrap_or(true) {
                    best = Some((key, i));
                }
            }
        }
        let ((time, seq), idx) = best?;
        let sh = &mut self.shards[idx];
        let take_stash = sh
            .stash
            .peek()
            .map(|p| (p.time, p.seq) == (time, seq))
            .unwrap_or(false);
        let event = if take_stash {
            sh.stash.pop().expect("stash entry present").event
        } else {
            let front = sh.front.take().expect("front entry present");
            // A consumed front implies an empty stash: stash entries are
            // strictly earlier than the front, so they win the merge.
            debug_assert!(sh.stash.is_empty());
            front.event
        };
        debug_assert!(time >= self.now, "shard returned a past event");
        self.now = time;
        self.len -= 1;
        Some((time, idx, event))
    }

    /// Pops the next event only if it is strictly before `end`.
    pub fn pop_before(&mut self, end: Cycle) -> Option<(Cycle, usize, E)> {
        // ensure_front inside pop is what discovers the minimum; peek
        // first via the cheap per-shard peeks to avoid consuming.
        match self.peek_time() {
            Some(t) if t < end => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.shards.iter().filter_map(|s| s.peek_time()).min()
    }

    /// Forces the clock to `at` without popping an event.
    ///
    /// Checkpoint restore only — see [`Scheduler::restore_clock`]: after
    /// a snapshot's pending events are re-inserted into a fresh sharded
    /// scheduler, the clock resumes from the snapshot's simulation time.
    ///
    /// # Panics
    ///
    /// Panics if a pending event would end up in the past.
    pub fn restore_clock(&mut self, at: Cycle) {
        if let Some(t) = self.peek_time() {
            assert!(
                t >= at,
                "restore_clock({at}) would strand a pending event at {t}"
            );
        }
        self.now = at;
    }
}

/// One ring segment's event handler for the conservative parallel driver.
///
/// Implementations own the per-segment simulation state (the arc of nodes
/// assigned to this shard) and react to events by mutating it and sending
/// follow-up events through the [`Outbox`].
pub trait RingSegment: Send {
    /// The event type flowing between segments.
    type Event: Send;

    /// Handles one event at simulation time `now`.
    fn handle(&mut self, now: Cycle, event: Self::Event, out: &mut Outbox<Self::Event>);
}

/// A send deferred to the window barrier, where the symbolic replay
/// assigns it the sequence number the single-queue schedule would have.
#[derive(Debug)]
struct Deferred<E> {
    at: Cycle,
    shard: usize,
    event: E,
}

/// One emission recorded during a handler invocation, consumed by the
/// barrier's symbolic replay in emission order.
#[derive(Debug)]
enum Emit {
    /// Same-segment, in-window: re-entered this segment's local heap at
    /// the recorded time.
    Local { at: Cycle },
    /// Deferred to the barrier; the payload lives at this index of the
    /// outbox's deferred list.
    Deferred { idx: usize },
}

/// The send interface handed to [`RingSegment::handle`] during a window.
///
/// Same-segment sends landing inside the current window are processed
/// immediately (in `(time, emission order)`) by the same task; everything
/// else is deferred to the window barrier. Cross-segment sends must
/// respect the lookahead — at least one ring-hop latency in the future —
/// which is what makes the windows causally independent.
///
/// Every send is also recorded in a per-handler emission trace, which the
/// barrier replays to reconstruct the exact global `(time, sequence)`
/// order a single-queue run would have produced.
#[derive(Debug)]
pub struct Outbox<E> {
    shard: usize,
    now: Cycle,
    window_end: Cycle,
    lookahead: Cycles,
    local: BinaryHeap<Pending<E>>,
    local_seq: u64,
    deferred: Vec<Deferred<E>>,
    /// One record per handled event, in handling order; each record lists
    /// that handler's emissions in emission order.
    trace: Vec<Vec<Emit>>,
}

impl<E> Outbox<E> {
    fn new(shard: usize, window_end: Cycle, lookahead: Cycles) -> Self {
        Self {
            shard,
            now: Cycle::ZERO,
            window_end,
            lookahead,
            local: BinaryHeap::new(),
            local_seq: 0,
            deferred: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Current simulation time of the event being handled.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Sends `event` to `shard` at absolute time `at`.
    ///
    /// Emission order is significant and preserved: the barrier replays
    /// each handler's sends in the order they were made, so sends sharing
    /// a timestamp execute in exactly the order a sequential single-queue
    /// run would execute them. No tie-break key is needed (or accepted)
    /// from the caller.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, or if a cross-segment send violates
    /// the lookahead (arrives sooner than one ring hop).
    pub fn send(&mut self, shard: usize, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "send into the past: at={at}, now={}",
            self.now
        );
        let rec = self
            .trace
            .last_mut()
            .expect("Outbox::send called outside a handler");
        if shard == self.shard && at < self.window_end {
            let seq = self.local_seq;
            self.local_seq += 1;
            rec.push(Emit::Local { at });
            self.local.push(Pending {
                time: at,
                seq,
                event,
            });
        } else {
            if shard != self.shard {
                assert!(
                    at >= self.now + self.lookahead,
                    "cross-segment send violates lookahead: at={at}, now={}, lookahead={:?}",
                    self.now,
                    self.lookahead
                );
            }
            rec.push(Emit::Deferred {
                idx: self.deferred.len(),
            });
            self.deferred.push(Deferred { at, shard, event });
        }
    }

    /// Next in-window event for this segment, advancing the local clock.
    fn next_local(&mut self) -> Option<(Cycle, E)> {
        let p = self.local.pop()?;
        debug_assert!(p.time >= self.now && p.time < self.window_end);
        self.now = p.time;
        Some((p.time, p.event))
    }
}

/// Runs the scheduler to completion, executing each time window's
/// segments in parallel on `executor`.
///
/// Windows span `lookahead` cycles starting at the earliest pending
/// event. All events inside a window are drained, partitioned by shard,
/// and handled concurrently — safe because cross-segment sends cannot
/// land within the window (asserted in [`Outbox::send`]).
///
/// At the barrier, deferred sends are re-scheduled in the order a
/// sequential single-queue run would have *emitted* them. That order is
/// recovered by a symbolic replay: the window's batch events carry their
/// global drain order, each handler's emission trace is consumed as the
/// replay pops its event, and every emission receives the next global
/// sequence number — exactly the bookkeeping one [`Scheduler`] would
/// have done. The execution is therefore deterministic **and equal to
/// the sequential schedule** for any segment count and executor width,
/// even when several cross-segment sends tie on the same cycle exactly
/// at the lookahead boundary.
///
/// Returns the number of events processed.
pub fn run_conservative<S: RingSegment>(
    sched: &mut ShardedScheduler<S::Event>,
    segments: &mut [S],
    executor: &Executor,
    lookahead: Cycles,
) -> u64 {
    assert_eq!(
        segments.len(),
        sched.shard_count(),
        "one segment per scheduler shard"
    );
    assert!(lookahead.0 > 0, "lookahead must be positive");
    let mut processed = 0u64;
    while let Some(t0) = sched.peek_time() {
        let end = t0 + lookahead;
        let mut batches: Vec<Vec<(Cycle, S::Event)>> =
            (0..segments.len()).map(|_| Vec::new()).collect();
        // The global drain order (time, seq) is the prefix of the
        // reference schedule; remember it for the symbolic replay.
        let mut order: Vec<(Cycle, usize)> = Vec::new();
        while let Some((t, shard, event)) = sched.pop_before(end) {
            order.push((t, shard));
            batches[shard].push((t, event));
        }
        let tasks: Vec<_> = segments
            .iter_mut()
            .zip(batches)
            .enumerate()
            .map(|(i, (seg, batch))| {
                move || {
                    let mut out = Outbox::new(i, end, lookahead);
                    for (time, event) in batch {
                        let seq = out.local_seq;
                        out.local_seq += 1;
                        out.local.push(Pending { time, seq, event });
                    }
                    let mut handled = 0u64;
                    while let Some((t, event)) = out.next_local() {
                        out.trace.push(Vec::new());
                        seg.handle(t, event, &mut out);
                        handled += 1;
                    }
                    (out.deferred, out.trace, handled)
                }
            })
            .collect();
        // Tasks borrow the segments; the executor joins them all before
        // returning, and results come back in task (= shard) order.
        let results = executor.run(tasks);
        let mut deferred: Vec<Vec<Deferred<S::Event>>> = Vec::with_capacity(results.len());
        let mut traces: Vec<Vec<Vec<Emit>>> = Vec::with_capacity(results.len());
        for (d, trace, handled) in results {
            processed += handled;
            deferred.push(d);
            traces.push(trace);
        }
        // Symbolic replay: re-run the window's pop order with events as
        // opaque tokens, assigning each emission the global sequence
        // number a single shared Scheduler would have given it. Within a
        // shard, handler execution order — (time, local seq) — matches
        // the replay's (time, global seq) order restricted to that shard,
        // so consuming the shard's trace records front-to-back stays
        // aligned with the events the replay pops.
        let mut heap: BinaryHeap<Pending<usize>> = BinaryHeap::new();
        for (symseq, &(t, shard)) in order.iter().enumerate() {
            heap.push(Pending {
                time: t,
                seq: symseq as u64,
                event: shard,
            });
        }
        let mut next_seq = order.len() as u64;
        let mut cursor = vec![0usize; traces.len()];
        let mut rank: Vec<Vec<u64>> = deferred.iter().map(|d| vec![0; d.len()]).collect();
        while let Some(p) = heap.pop() {
            let shard = p.event;
            let rec = std::mem::take(&mut traces[shard][cursor[shard]]);
            cursor[shard] += 1;
            for emit in rec {
                let seq = next_seq;
                next_seq += 1;
                match emit {
                    Emit::Local { at } => heap.push(Pending {
                        time: at,
                        seq,
                        event: shard,
                    }),
                    Emit::Deferred { idx } => rank[shard][idx] = seq,
                }
            }
        }
        debug_assert!(
            cursor.iter().zip(&traces).all(|(c, t)| *c == t.len()),
            "symbolic replay did not consume every trace record"
        );
        // Re-schedule deferrals in emission order; the scheduler's fresh
        // sequence numbers then reproduce the reference tie-break.
        let mut outgoing: Vec<(u64, Deferred<S::Event>)> = Vec::new();
        for (shard, ds) in deferred.into_iter().enumerate() {
            for (idx, d) in ds.into_iter().enumerate() {
                outgoing.push((rank[shard][idx], d));
            }
        }
        outgoing.sort_by_key(|&(r, _)| r);
        for (_, d) in outgoing {
            sched.schedule_at(d.shard, d.at, d.event);
        }
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    /// The sharded merge must reproduce the single-queue pop order
    /// exactly, for any shard count and either backend.
    #[test]
    fn sharded_order_matches_single_scheduler() {
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for shards in [1usize, 2, 4, 7] {
                let mut rng = SplitMix64::new(0xfeed + shards as u64);
                let mut single: Scheduler<u64> = Scheduler::with_queue(kind);
                let mut sharded: ShardedScheduler<u64> = ShardedScheduler::new(kind, shards);
                let mut now = 0u64;
                for step in 0..20_000u64 {
                    let delay = match rng.next_below(10) {
                        0 => 0,
                        1..=6 => rng.next_below(200),
                        7..=8 => rng.next_below(5_000),
                        _ => rng.next_below(100_000),
                    };
                    let node = rng.next_below(64) as usize;
                    let at = Cycle::new(now + delay);
                    single.schedule_at(at, step);
                    sharded.schedule_at(segment_of(node, 64, shards), at, step);
                    if rng.next_below(3) > 0 {
                        let a = single.pop();
                        let b = sharded.pop().map(|(t, _, e)| (t, e));
                        assert_eq!(a, b, "diverged at step {step} (shards={shards})");
                        if let Some((t, _)) = a {
                            now = t.as_u64();
                        }
                    }
                }
                loop {
                    let a = single.pop();
                    let b = sharded.pop().map(|(t, _, e)| (t, e));
                    assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// A push earlier than a shard's popped-ahead front must take the
    /// stash path and still pop in global order.
    #[test]
    fn stash_absorbs_pushes_behind_a_front() {
        let mut s: ShardedScheduler<&str> = ShardedScheduler::new(QueueKind::Bucketed, 2);
        s.schedule_at(0, Cycle::new(100), "late");
        s.schedule_at(1, Cycle::new(5), "early");
        // This pop establishes shard 0's front at t=100.
        assert_eq!(s.pop(), Some((Cycle::new(5), 1, "early")));
        // t=10 undercuts shard 0's front; the wheel cursor is past it.
        s.schedule_at(0, Cycle::new(10), "stashed");
        assert_eq!(s.pop(), Some((Cycle::new(10), 0, "stashed")));
        assert_eq!(s.pop(), Some((Cycle::new(100), 0, "late")));
        assert_eq!(s.pop(), None);
    }

    /// `restore_clock` fast-forwards without popping; the pending events
    /// then pop at their original times.
    #[test]
    fn restore_clock_fast_forwards() {
        let mut s: ShardedScheduler<&str> = ShardedScheduler::new(QueueKind::Bucketed, 2);
        s.schedule_at(1, Cycle::new(50), "ev");
        s.restore_clock(Cycle::new(50));
        assert_eq!(s.now(), Cycle::new(50));
        assert_eq!(s.pop(), Some((Cycle::new(50), 1, "ev")));
    }

    #[test]
    #[should_panic(expected = "strand a pending event")]
    fn restore_clock_rejects_stranding() {
        let mut s: ShardedScheduler<&str> = ShardedScheduler::new(QueueKind::Heap, 1);
        s.schedule_at(0, Cycle::new(10), "ev");
        s.restore_clock(Cycle::new(11));
    }

    // ----- conservative driver on a synthetic embedded ring -------------

    const NODES: usize = 24;
    const HOP: u64 = 10;

    /// A token circulating the ring, as in a snoop request's round trip.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Token {
        node: usize,
        id: u64,
        hops_left: u32,
    }

    /// Advances one token: the follow-up send a handler makes, if any.
    /// Shared between the parallel segments and the sequential reference
    /// driver so both execute the identical model.
    fn token_step(now: Cycle, ev: &Token) -> Option<(usize, Cycle, Token)> {
        if ev.hops_left == 0 {
            return None;
        }
        let next = (ev.node + 1) % NODES;
        // Jitter keeps windows non-trivial while never dipping below
        // the one-hop lookahead.
        let delay = HOP + (ev.id + next as u64) % 3;
        Some((
            next,
            now + Cycles(delay),
            Token {
                node: next,
                id: ev.id,
                hops_left: ev.hops_left - 1,
            },
        ))
    }

    /// One arc of the ring: visit logs for its nodes.
    struct Arc {
        segments: usize,
        /// (time, token id) per node, for the whole ring; only this
        /// arc's rows are touched.
        visits: Vec<Vec<(u64, u64)>>,
    }

    impl RingSegment for Arc {
        type Event = Token;

        fn handle(&mut self, now: Cycle, ev: Token, out: &mut Outbox<Token>) {
            self.visits[ev.node].push((now.as_u64(), ev.id));
            if let Some((next, at, tok)) = token_step(now, &ev) {
                out.send(segment_of(next, NODES, self.segments), at, tok);
            }
        }
    }

    /// Initial tokens, shared by every driver.
    fn seed_tokens() -> Vec<(usize, Cycle, Token)> {
        (0..6u64)
            .map(|id| {
                let node = (id as usize * 5) % NODES;
                (
                    node,
                    Cycle::new(id * 3),
                    Token {
                        node,
                        id,
                        hops_left: 2 * NODES as u32 + id as u32,
                    },
                )
            })
            .collect()
    }

    fn drive(segments: usize, width: usize, kind: QueueKind) -> (u64, Vec<Vec<(u64, u64)>>) {
        let mut sched: ShardedScheduler<Token> = ShardedScheduler::new(kind, segments);
        for (node, at, tok) in seed_tokens() {
            sched.schedule_at(segment_of(node, NODES, segments), at, tok);
        }
        let mut segs: Vec<Arc> = (0..segments)
            .map(|_| Arc {
                segments,
                visits: vec![Vec::new(); NODES],
            })
            .collect();
        let executor = Executor::new(width);
        let processed = run_conservative(&mut sched, &mut segs, &executor, Cycles(HOP));
        // Merge the per-arc visit logs (each node belongs to one arc).
        let mut visits = vec![Vec::new(); NODES];
        for seg in segs {
            for (n, log) in seg.visits.into_iter().enumerate() {
                if !log.is_empty() {
                    visits[n] = log;
                }
            }
        }
        (processed, visits)
    }

    /// The reference: the same token model on one sequential
    /// [`Scheduler`], emissions scheduled immediately at handling time.
    fn drive_sequential() -> (u64, Vec<Vec<(u64, u64)>>) {
        let mut sched: Scheduler<Token> = Scheduler::with_queue(QueueKind::Heap);
        for (_, at, tok) in seed_tokens() {
            sched.schedule_at(at, tok);
        }
        let mut visits = vec![Vec::new(); NODES];
        let mut n = 0u64;
        while let Some((t, ev)) = sched.pop() {
            visits[ev.node].push((t.as_u64(), ev.id));
            n += 1;
            if let Some((_, at, tok)) = token_step(t, &ev) {
                sched.schedule_at(at, tok);
            }
        }
        (n, visits)
    }

    /// The parallel conservative schedule must equal the sequential
    /// single-queue schedule, across segment counts × executor widths ×
    /// queue backends.
    #[test]
    fn conservative_driver_matches_sequential_schedule() {
        let (baseline_n, baseline) = drive_sequential();
        assert!(baseline_n > 0);
        let total: usize = baseline.iter().map(|v| v.len()).sum();
        assert_eq!(baseline_n as usize, total);
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for segments in [1usize, 2, 4] {
                for width in [1usize, 2, 4] {
                    let (n, visits) = drive(segments, width, kind);
                    assert_eq!(n, baseline_n, "segments={segments} width={width}");
                    assert_eq!(
                        visits, baseline,
                        "timeline diverged from sequential reference: \
                         segments={segments} width={width} {kind:?}"
                    );
                }
            }
        }
    }

    // ----- adversarial lookahead-boundary ties ---------------------------

    const CNODES: usize = 17;
    const LOOK: u64 = 8;

    /// A packet that always re-emits exactly one lookahead ahead, so
    /// every send lands precisely on a window boundary, and whose target
    /// mixing makes unrelated sources repeatedly collide on the same
    /// node at the same cycle.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Pkt {
        node: usize,
        id: u64,
        hops_left: u32,
    }

    fn pkt_step(now: Cycle, ev: &Pkt) -> Option<(usize, Cycle, Pkt)> {
        if ev.hops_left == 0 {
            return None;
        }
        let next = (ev.node * 5 + ev.id as usize + 3) % CNODES;
        Some((
            next,
            now + Cycles(LOOK),
            Pkt {
                node: next,
                id: ev.id,
                hops_left: ev.hops_left - 1,
            },
        ))
    }

    struct Collider {
        segments: usize,
        log: Vec<Vec<(u64, u64)>>,
    }

    impl RingSegment for Collider {
        type Event = Pkt;

        fn handle(&mut self, now: Cycle, ev: Pkt, out: &mut Outbox<Pkt>) {
            self.log[ev.node].push((now.as_u64(), ev.id));
            if let Some((next, at, pkt)) = pkt_step(now, &ev) {
                out.send(segment_of(next, CNODES, self.segments), at, pkt);
            }
        }
    }

    /// Seeds chosen so the initial emission order (insertion order: 9,
    /// 1, 6, 13, 4, 6) differs from the source-node sort order — the
    /// exact pattern a caller-keyed barrier tie-break would mis-order.
    fn seed_pkts() -> Vec<(usize, Pkt)> {
        [9usize, 1, 6, 13, 4, 6]
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                (
                    node,
                    Pkt {
                        node,
                        id: i as u64,
                        hops_left: 40,
                    },
                )
            })
            .collect()
    }

    fn collide_sequential() -> Vec<Vec<(u64, u64)>> {
        let mut sched: Scheduler<Pkt> = Scheduler::with_queue(QueueKind::Heap);
        for (_, pkt) in seed_pkts() {
            sched.schedule_at(Cycle::ZERO, pkt);
        }
        let mut log = vec![Vec::new(); CNODES];
        while let Some((t, ev)) = sched.pop() {
            log[ev.node].push((t.as_u64(), ev.id));
            if let Some((_, at, pkt)) = pkt_step(t, &ev) {
                sched.schedule_at(at, pkt);
            }
        }
        log
    }

    /// Regression for the lookahead-boundary ordering bug: sends landing
    /// exactly at `window_start + lookahead`, several per cycle, from
    /// sources whose emission order differs from any per-node key order,
    /// must still execute in the sequential single-queue order — on
    /// every segment count, executor width, and backend.
    #[test]
    fn lookahead_boundary_ties_match_sequential_schedule() {
        let baseline = collide_sequential();
        // The mixing must actually produce same-node same-cycle ties, or
        // this test guards nothing.
        assert!(
            baseline
                .iter()
                .any(|log| log.windows(2).any(|w| w[0].0 == w[1].0)),
            "seed produced no same-node same-cycle collisions"
        );
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for segments in [1usize, 2, 3, 4] {
                for width in [1usize, 2, 4] {
                    let mut sched: ShardedScheduler<Pkt> = ShardedScheduler::new(kind, segments);
                    for (node, pkt) in seed_pkts() {
                        sched.schedule_at(segment_of(node, CNODES, segments), Cycle::ZERO, pkt);
                    }
                    let mut segs: Vec<Collider> = (0..segments)
                        .map(|_| Collider {
                            segments,
                            log: vec![Vec::new(); CNODES],
                        })
                        .collect();
                    let executor = Executor::new(width);
                    run_conservative(&mut sched, &mut segs, &executor, Cycles(LOOK));
                    let mut log = vec![Vec::new(); CNODES];
                    for seg in segs {
                        for (n, l) in seg.log.into_iter().enumerate() {
                            if !l.is_empty() {
                                log[n] = l;
                            }
                        }
                    }
                    assert_eq!(
                        log, baseline,
                        "boundary ties diverged: segments={segments} width={width} {kind:?}"
                    );
                }
            }
        }
    }

    /// Cross-segment sends below one hop of lookahead must be rejected.
    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn undercutting_lookahead_panics() {
        struct Bad;
        impl RingSegment for Bad {
            type Event = ();
            fn handle(&mut self, now: Cycle, _ev: (), out: &mut Outbox<()>) {
                out.send(1, now + Cycles(1), ());
            }
        }
        let mut sched: ShardedScheduler<()> = ShardedScheduler::new(QueueKind::Bucketed, 2);
        sched.schedule_at(0, Cycle::new(0), ());
        let executor = Executor::new(1);
        run_conservative(&mut sched, &mut [Bad, Bad], &executor, Cycles(HOP));
    }
}
