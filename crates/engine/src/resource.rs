//! Serially-occupied resource model.
//!
//! Ring links, intra-CMP snoop ports and memory controllers all behave the
//! same way at the fidelity this simulator targets: requests are serviced one
//! at a time in arrival order, each holding the resource for a fixed service
//! time. [`Resource`] captures that pattern: callers ask "if I arrive at
//! cycle T needing S cycles of service, when do I start and finish?" and the
//! resource answers while recording the occupancy.

use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::time::{Cycle, Cycles};

/// A FIFO resource that services one request at a time.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{Cycle, Cycles, Resource};
///
/// let mut link = Resource::new();
/// // Two messages arrive back-to-back at cycle 0, each needing 10 cycles.
/// let first = link.acquire(Cycle::new(0), Cycles(10));
/// let second = link.acquire(Cycle::new(0), Cycles(10));
/// assert_eq!(first.end, Cycle::new(10));
/// assert_eq!(second.start, Cycle::new(10)); // queued behind the first
/// assert_eq!(second.end, Cycle::new(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resource {
    next_free: Cycle,
    busy: Cycles,
    grants: u64,
}

/// The time window granted to one request by [`Resource::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually begins (>= arrival time).
    pub start: Cycle,
    /// When service completes.
    pub end: Cycle,
}

impl Grant {
    /// Time spent waiting for the resource before service began.
    pub fn queueing_delay(&self, arrival: Cycle) -> Cycles {
        self.start - arrival
    }
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `service` cycles for a request arriving at
    /// `arrival`. Requests are serviced in the order `acquire` is called.
    pub fn acquire(&mut self, arrival: Cycle, service: Cycles) -> Grant {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.grants += 1;
        Grant { start, end }
    }

    /// The earliest time a new arrival could begin service.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles of service granted so far (utilization numerator).
    pub fn busy_cycles(&self) -> Cycles {
        self.busy
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }
}

impl Snapshot for Resource {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_cycle(self.next_free);
        w.put_cycles(self.busy);
        w.put_u64(self.grants);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_free = r.get_cycle()?;
        self.busy = r.get_cycles()?;
        self.grants = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_services_immediately() {
        let mut r = Resource::new();
        let g = r.acquire(Cycle::new(100), Cycles(7));
        assert_eq!(g.start, Cycle::new(100));
        assert_eq!(g.end, Cycle::new(107));
        assert_eq!(g.queueing_delay(Cycle::new(100)), Cycles::ZERO);
    }

    #[test]
    fn contention_queues_fifo() {
        let mut r = Resource::new();
        let a = r.acquire(Cycle::new(0), Cycles(10));
        let b = r.acquire(Cycle::new(3), Cycles(10));
        let c = r.acquire(Cycle::new(4), Cycles(10));
        assert_eq!(a.end, Cycle::new(10));
        assert_eq!(b.start, Cycle::new(10));
        assert_eq!(c.start, Cycle::new(20));
        assert_eq!(b.queueing_delay(Cycle::new(3)), Cycles(7));
    }

    #[test]
    fn snapshot_round_trip_preserves_occupancy() {
        let mut r = Resource::new();
        r.acquire(Cycle::new(0), Cycles(10));
        r.acquire(Cycle::new(3), Cycles(4));
        let bytes = crate::snap::snapshot_bytes(&r);
        let mut fresh = Resource::new();
        crate::snap::restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh.next_free(), r.next_free());
        assert_eq!(fresh.busy_cycles(), r.busy_cycles());
        assert_eq!(fresh.grants(), r.grants());
        // The restored resource queues new arrivals identically.
        assert_eq!(
            fresh.acquire(Cycle::new(5), Cycles(2)),
            r.acquire(Cycle::new(5), Cycles(2))
        );
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = Resource::new();
        r.acquire(Cycle::new(0), Cycles(5));
        let g = r.acquire(Cycle::new(50), Cycles(5));
        assert_eq!(g.start, Cycle::new(50));
        assert_eq!(r.busy_cycles(), Cycles(10));
        assert_eq!(r.grants(), 2);
    }
}
