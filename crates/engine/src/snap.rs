//! Versioned binary snapshot codec for checkpoint/restore.
//!
//! Checkpointing a discrete-event simulation only works if the restored
//! run is *bit-identical* to an uninterrupted one, so the codec is a
//! deliberately boring hand-rolled little-endian format with no external
//! dependencies and no implicit layout decisions:
//!
//! * [`SnapWriter`] / [`SnapReader`] — primitive put/get pairs. Every
//!   multi-byte value is little-endian; `f64` travels as its IEEE-754 bit
//!   pattern (never through text); byte strings are length-prefixed.
//! * [`Snapshot`] — the trait a checkpointable component implements.
//!   `restore_from` overlays saved state onto a **freshly constructed**
//!   object built from the same configuration, which sidesteps
//!   serializing constructor-only data (geometry, latency tables, trait
//!   objects' vtables).
//! * [`seal`] / [`unseal`] — the file envelope: magic, schema version,
//!   and a trailing FNV-1a checksum so a truncated or corrupted file is
//!   rejected before any state is touched.
//! * [`Fingerprint`] — an incremental FNV-1a hasher used to fingerprint
//!   the configuration a snapshot was taken under; restore refuses to
//!   overlay state onto a simulator built from a different config.
//!
//! The schema version ([`SNAP_VERSION`]) is bumped on any layout change;
//! there is no in-place migration — an old snapshot is simply rejected,
//! which is the honest behavior for a deterministic simulator (state from
//! an older code version would not replay identically anyway).

use std::fmt;

use crate::time::{Cycle, Cycles};

/// Leading magic bytes of a sealed snapshot envelope.
pub const SNAP_MAGIC: [u8; 4] = *b"FSNP";

/// Current snapshot schema version. Bump on any layout change.
/// v2: partition-blocked fault counter, churn state, recovery timestamps.
/// v3: hierarchical topologies — message scope/via-global, bridge
/// crossings and bridge fault stream, locality tables, hier counters.
pub const SNAP_VERSION: u32 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of `bytes`; used for the envelope checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for building configuration fingerprints
/// field by field.
///
/// The fingerprint is *not* a hash of memory layout: callers feed each
/// semantic field explicitly, so two configs fingerprint equal exactly
/// when every field is equal.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes raw bytes into the fingerprint.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes a byte into the fingerprint.
    pub fn push_u8(&mut self, v: u8) {
        self.push_bytes(&[v]);
    }

    /// Mixes a 64-bit value into the fingerprint (little-endian).
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Mixes a length-tagged string into the fingerprint. The length tag
    /// keeps adjacent string fields from aliasing each other.
    pub fn push_str(&mut self, s: &str) {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes());
    }

    /// The fingerprint accumulated so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Why a snapshot could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran out of bytes mid-value.
    Eof,
    /// The envelope does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The envelope's schema version is not [`SNAP_VERSION`].
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The envelope checksum does not match its contents.
    BadChecksum,
    /// The snapshot was taken under a different configuration.
    FingerprintMismatch {
        /// Fingerprint stored in the snapshot.
        found: u64,
        /// Fingerprint of the configuration being restored onto.
        expected: u64,
    },
    /// A decoded value violates an internal invariant.
    Corrupt(&'static str),
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated: unexpected end of data"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion { found, expected } => write!(
                f,
                "snapshot schema version {found} unsupported (this build reads {expected})"
            ),
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch (corrupted file)"),
            SnapError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot was taken under a different configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::TrailingBytes => write!(f, "snapshot has trailing bytes after payload"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Serializer: appends little-endian primitives to a growing buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the raw (unsealed) payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` as its two's-complement bit pattern.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Writes a `usize` widened to `u64` (platform-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern — exact, never lossy.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes an absolute timestamp.
    pub fn put_cycle(&mut self, v: Cycle) {
        self.put_u64(v.as_u64());
    }

    /// Writes a duration.
    pub fn put_cycles(&mut self, v: Cycles) {
        self.put_u64(v.as_u64());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Deserializer: consumes little-endian primitives from a byte slice.
///
/// Every getter returns [`SnapError::Eof`] rather than panicking when the
/// data runs out, so a truncated file degrades to a clean error.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `i64` stored as its two's-complement bit pattern.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a `usize` stored as `u64`; errors if it overflows `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Reads a `bool`; errors on any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool out of range")),
        }
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an absolute timestamp.
    pub fn get_cycle(&mut self) -> Result<Cycle, SnapError> {
        Ok(Cycle::new(self.get_u64()?))
    }

    /// Reads a duration.
    pub fn get_cycles(&mut self) -> Result<Cycles, SnapError> {
        Ok(Cycles(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string (borrowed from the input).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("invalid utf-8"))
    }

    /// Errors with [`SnapError::TrailingBytes`] unless fully consumed.
    pub fn expect_eof(&self) -> Result<(), SnapError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// A component whose mutable state can be checkpointed and restored.
///
/// The contract is **overlay semantics**: `restore_from` is called on an
/// object freshly constructed from the *same configuration* the snapshot
/// was taken under, and replaces only the state that evolves during a
/// run. Constructor-derived data (geometries, latencies, trait-object
/// implementations) is never serialized — it is reproduced by rebuilding.
/// After a successful restore the object must behave bit-identically to
/// the one `save_into` was called on.
pub trait Snapshot {
    /// Appends this component's mutable state to `w`.
    fn save_into(&self, w: &mut SnapWriter);

    /// Overlays state previously written by [`Snapshot::save_into`] onto
    /// `self`. On error, `self` may be left partially restored and must
    /// be discarded.
    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Wraps `payload` in the snapshot envelope: magic, schema version, and
/// a trailing FNV-1a checksum over everything before it.
pub fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a sealed envelope and returns the payload slice.
///
/// Checks, in order: minimum length, checksum, magic, schema version —
/// so corruption anywhere in the file is caught before the payload is
/// interpreted.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], SnapError> {
    if bytes.len() < 16 {
        return Err(SnapError::Eof);
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(SnapError::BadChecksum);
    }
    if body[..4] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: SNAP_VERSION,
        });
    }
    Ok(&body[8..])
}

/// Serializes `value` into a sealed, checksummed snapshot buffer.
pub fn snapshot_bytes<T: Snapshot>(value: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    value.save_into(&mut w);
    seal(w.into_bytes())
}

/// Restores `value` from a buffer produced by [`snapshot_bytes`],
/// requiring the payload to be consumed exactly.
pub fn restore_bytes<T: Snapshot>(value: &mut T, bytes: &[u8]) -> Result<(), SnapError> {
    let payload = unseal(bytes)?;
    let mut r = SnapReader::new(payload);
    value.restore_from(&mut r)?;
    r.expect_eof()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_u128(u128::MAX / 7);
        w.put_i64(-42);
        w.put_usize(123_456);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.125);
        w.put_f64(f64::NAN);
        w.put_cycle(Cycle::new(99));
        w.put_cycles(Cycles(7));
        w.put_bytes(b"raw");
        w.put_str("héllo");
        let buf = w.into_bytes();
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 7);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 123_456);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_f64().unwrap().is_nan()); // bit pattern preserved
        assert_eq!(r.get_cycle().unwrap(), Cycle::new(99));
        assert_eq!(r.get_cycles().unwrap(), Cycles(7));
        assert_eq!(r.get_bytes().unwrap(), b"raw");
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.expect_eof().is_ok());
    }

    #[test]
    fn reader_reports_eof_not_panic() {
        let mut r = SnapReader::new(&[1, 2]);
        assert_eq!(r.get_u64(), Err(SnapError::Eof));
        // A failed read consumes nothing; the bytes are still there.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), Ok(1));
    }

    #[test]
    fn bool_rejects_garbage() {
        let mut r = SnapReader::new(&[7]);
        assert_eq!(r.get_bool(), Err(SnapError::Corrupt("bool out of range")));
    }

    #[test]
    fn seal_unseal_round_trips() {
        let sealed = seal(b"payload".to_vec());
        assert_eq!(unseal(&sealed).unwrap(), b"payload");
    }

    #[test]
    fn unseal_rejects_corruption() {
        let mut sealed = seal(b"payload".to_vec());
        // Flip one payload byte: checksum must catch it.
        sealed[9] ^= 0x40;
        assert_eq!(unseal(&sealed), Err(SnapError::BadChecksum));
    }

    #[test]
    fn unseal_rejects_truncation() {
        let sealed = seal(b"payload".to_vec());
        assert!(matches!(
            unseal(&sealed[..sealed.len() - 1]),
            Err(SnapError::BadChecksum) | Err(SnapError::Eof)
        ));
        assert_eq!(unseal(&[]), Err(SnapError::Eof));
    }

    #[test]
    fn unseal_rejects_wrong_magic_and_version() {
        let mut bad_magic = seal(Vec::new());
        bad_magic[0] = b'X';
        // Re-checksum so only the magic is wrong.
        let n = bad_magic.len() - 8;
        let sum = fnv1a(&bad_magic[..n]);
        bad_magic[n..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(unseal(&bad_magic), Err(SnapError::BadMagic));

        let mut bad_ver = seal(Vec::new());
        bad_ver[4] = 0xEE;
        let n = bad_ver.len() - 8;
        let sum = fnv1a(&bad_ver[..n]);
        bad_ver[n..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            unseal(&bad_ver),
            Err(SnapError::BadVersion { found: 0xEE, .. })
        ));
    }

    #[test]
    fn snapshot_trait_round_trips_and_rejects_trailing() {
        struct Counter(u64);
        impl Snapshot for Counter {
            fn save_into(&self, w: &mut SnapWriter) {
                w.put_u64(self.0);
            }
            fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
                self.0 = r.get_u64()?;
                Ok(())
            }
        }
        let bytes = snapshot_bytes(&Counter(77));
        let mut fresh = Counter(0);
        restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh.0, 77);

        // Payload longer than the consumer reads → TrailingBytes.
        let mut w = SnapWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let sealed = seal(w.into_bytes());
        let mut c = Counter(0);
        assert_eq!(
            restore_bytes(&mut c, &sealed),
            Err(SnapError::TrailingBytes)
        );
    }

    #[test]
    fn fingerprint_is_field_sensitive() {
        let mut a = Fingerprint::new();
        a.push_u64(1);
        a.push_str("ring");
        let mut b = Fingerprint::new();
        b.push_u64(1);
        b.push_str("ring");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.push_u64(2);
        c.push_str("ring");
        assert_ne!(a.finish(), c.finish());
        // Length tagging keeps adjacent strings from aliasing.
        let mut d = Fingerprint::new();
        d.push_str("ab");
        d.push_str("c");
        let mut e = Fingerprint::new();
        e.push_str("a");
        e.push_str("bc");
        assert_ne!(d.finish(), e.finish());
    }
}
