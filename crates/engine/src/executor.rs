//! A bounded work-stealing task executor for simulation sweeps.
//!
//! The figure/table sweeps run hundreds of independent simulator
//! configurations. Spawning one OS thread per configuration (the seed's
//! `std::thread::scope` fan-out) oversubscribes the machine as soon as the
//! sweep outgrows the core count: every simulator is CPU-bound, so excess
//! threads only add context-switch and cache-thrash overhead.
//!
//! [`Executor`] instead runs a **fixed pool** of workers over the task
//! list. Tasks are pre-distributed round-robin onto per-worker deques (plus
//! a shared injector for spillover); an idle worker first drains its own
//! deque from the front, then the injector, then **steals from the back**
//! of a sibling's deque. Stealing from the opposite end keeps the common
//! fast path (own front pop) and the steal path from contending on the
//! same entries.
//!
//! Results are returned **in task order**, so callers are deterministic
//! regardless of worker count or interleaving — the property the
//! determinism regression tests pin down.
//!
//! The pool size defaults to the machine's available parallelism and can be
//! overridden globally ([`set_default_threads`], wired to the CLI's
//! `--threads` flag) or per call ([`Executor::new`]), or via the
//! `FLEXSNOOP_THREADS` environment variable.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a deque mutex, ignoring poisoning. The queues only hold plain
/// data (task closures and indices), which stays structurally intact when
/// a panic unwinds past a lock guard, so a poisoned lock is still safe to
/// read — and honouring the poison would cascade `PoisonError` panics
/// through every sibling worker, masking the original task panic.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Process-wide worker-count override; 0 means "not set".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default worker count for every subsequently created
/// [`Executor::with_default`] pool (the CLI's `--threads` knob lands here).
/// `0` clears the override.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count used by [`Executor::with_default`]: the
/// [`set_default_threads`] override if set, else `FLEXSNOOP_THREADS` from
/// the environment, else the machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    let n = DEFAULT_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Ok(s) = std::env::var("FLEXSNOOP_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A bounded pool that runs a batch of independent tasks with work
/// stealing and returns their results in task order.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

/// What one worker did during a [`Executor::run_with_stats`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker completed (own deque, injector, and steals).
    pub tasks: u64,
    /// Wall-clock time the worker spent inside task bodies.
    pub busy: Duration,
}

/// Per-worker utilization of one [`Executor::run_with_stats`] batch: the
/// observability view of a sweep — how evenly the work spread, and how much
/// of the batch's wall-clock each worker actually computed for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// One entry per worker that participated, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the whole batch (distribution to last join).
    pub wall: Duration,
}

impl ExecutorStats {
    /// Total tasks completed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Mean worker utilization: busy time over the batch's wall-clock,
    /// averaged across workers (1.0 = every worker computed the whole
    /// time; 0 for an empty batch).
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let wall = self.wall.as_secs_f64();
        let busy: f64 = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        (busy / wall / self.workers.len() as f64).min(1.0)
    }
}

impl Executor {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`default_threads`].
    pub fn with_default() -> Self {
        Self::new(default_threads())
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task and returns the results in the order the tasks were
    /// given, independent of scheduling.
    ///
    /// With one worker (or one task) the tasks run inline on the calling
    /// thread, in order — no threads are spawned.
    ///
    /// # Panics
    ///
    /// If a task panics, the remaining tasks still run, and the first
    /// panic (by task order) is then re-raised with its original payload.
    /// Sibling workers never see a `PoisonError` cascade from a panicking
    /// task: the steal path ignores mutex poisoning.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_inner(tasks, false).0
    }

    /// Like [`run`](Self::run), but also reports per-worker utilization
    /// (task counts and busy time). The instrumentation costs two
    /// monotonic-clock reads per task — noise next to the simulations the
    /// pool exists to sweep — and is only paid when this entry point is
    /// used.
    ///
    /// # Panics
    ///
    /// Propagates task panics exactly as [`run`](Self::run) does.
    pub fn run_with_stats<T, F>(&self, tasks: Vec<F>) -> (Vec<T>, ExecutorStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let (out, stats) = self.run_inner(tasks, true);
        (out, stats.expect("instrumented run always yields stats"))
    }

    fn run_inner<T, F>(&self, tasks: Vec<F>, instrument: bool) -> (Vec<T>, Option<ExecutorStats>)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            if !instrument {
                return (tasks.into_iter().map(|f| f()).collect(), None);
            }
            let batch_start = Instant::now();
            let mut stats = WorkerStats::default();
            let out = tasks
                .into_iter()
                .map(|f| {
                    let t0 = Instant::now();
                    let value = f();
                    stats.busy += t0.elapsed();
                    stats.tasks += 1;
                    value
                })
                .collect();
            return (
                out,
                Some(ExecutorStats {
                    workers: vec![stats],
                    wall: batch_start.elapsed(),
                }),
            );
        }
        // Pre-distribute round-robin so every worker starts busy; the
        // shared injector takes spillover (empty here, but it is the
        // hand-off point if task submission ever becomes incremental).
        let mut locals: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            locals[i % workers].get_mut().unwrap().push_back((i, task));
        }
        let injector: Mutex<VecDeque<(usize, F)>> = Mutex::new(VecDeque::new());
        let worker_stats: Mutex<Vec<(usize, WorkerStats)>> = Mutex::new(Vec::new());
        let locals = &locals;
        let injector = &injector;
        let worker_stats = &worker_stats;
        let batch_start = Instant::now();
        type TaskResult<T> = Result<T, Box<dyn std::any::Any + Send>>;
        let (tx, rx) = mpsc::channel::<(usize, TaskResult<T>)>();
        let out = std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut mine = WorkerStats::default();
                    loop {
                        // One lock at a time: binding each probe to its own
                        // statement drops the guard before the next probe. A
                        // single `.or_else` chain would keep the own-deque
                        // guard alive across the steal (temporaries live to
                        // the end of the statement), and two idle workers
                        // stealing from each other then deadlock AB-BA.
                        let mut job = lock_ignore_poison(&locals[w]).pop_front();
                        if job.is_none() {
                            job = lock_ignore_poison(injector).pop_front();
                        }
                        if job.is_none() {
                            job = (1..workers).find_map(|off| {
                                lock_ignore_poison(&locals[(w + off) % workers]).pop_back()
                            });
                        }
                        match job {
                            Some((i, task)) => {
                                // Capture the panic instead of unwinding through
                                // the scope: the scope would join every worker
                                // and surface a cascade of secondary panics that
                                // masks the original.
                                let t0 = instrument.then(Instant::now);
                                let result = catch_unwind(AssertUnwindSafe(task));
                                if let Some(t0) = t0 {
                                    mine.busy += t0.elapsed();
                                    mine.tasks += 1;
                                }
                                if tx.send((i, result)).is_err() {
                                    break;
                                }
                            }
                            None => break,
                        }
                    }
                    if instrument {
                        lock_ignore_poison(worker_stats).push((w, mine));
                    }
                });
            }
            drop(tx);
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
            for (i, result) in rx {
                match result {
                    Ok(value) => out[i] = Some(value),
                    Err(payload) => {
                        if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                            first_panic = Some((i, payload));
                        }
                    }
                }
            }
            if let Some((_, payload)) = first_panic {
                resume_unwind(payload);
            }
            out.into_iter()
                .map(|slot| slot.expect("worker exited without completing its task"))
                .collect()
        });
        let stats = instrument.then(|| {
            let mut per_worker = lock_ignore_poison(worker_stats)
                .drain(..)
                .collect::<Vec<_>>();
            per_worker.sort_by_key(|(w, _)| *w);
            ExecutorStats {
                workers: per_worker.into_iter().map(|(_, s)| s).collect(),
                wall: batch_start.elapsed(),
            }
        });
        (out, stats)
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::with_default()
    }
}

/// A cooperative cancellation flag shared between a controller and the
/// tasks it scheduled.
///
/// Cancellation is advisory: a task observes
/// [`is_cancelled`](CancelToken::is_cancelled) at its own safe points (e.g. between
/// `run_until` slices of a simulation) and winds down cleanly — typically
/// by checkpointing its progress so a later run can resume. Cloning the
/// token shares the flag; [`reset`](CancelToken::reset) re-arms it for
/// the next round.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Clears the flag so the token can gate another round of work.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::SeqCst);
    }
}

/// What the shared service queue holds: erased, one-shot task closures.
type ServiceTask = Box<dyn FnOnce() + Send + 'static>;

struct ServiceShared {
    queue: Mutex<VecDeque<ServiceTask>>,
    /// Signalled when a task is queued or shutdown is requested.
    available: Condvar,
    /// Once set, workers drain the remaining queue and exit.
    shutdown: AtomicBool,
}

/// A long-lived worker pool accepting **incremental** task submission —
/// the service-shaped counterpart to [`Executor::run`]'s batch mode.
///
/// [`Executor::run`] is built for sweeps whose task list is known up
/// front: it distributes the batch, joins, and returns ordered results.
/// A job-queue *service* instead receives work over its whole lifetime,
/// so `ExecutorService` keeps a fixed pool of workers parked on a shared
/// queue: [`spawn`](Self::spawn) enqueues a task and wakes one worker;
/// [`shutdown`](Self::shutdown) drains what was already queued and joins
/// the pool. Ordering across tasks is the caller's business (the sweep
/// service sequences its own result stream per submission).
///
/// A task that panics poisons nothing: the panic is caught and the
/// worker moves on (the sweep service reports job failures through its
/// own event stream, not through unwinding).
pub struct ExecutorService {
    shared: Arc<ServiceShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ExecutorService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorService")
            .field("workers", &self.workers.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl ExecutorService {
    /// Starts a pool of `threads` workers (clamped to at least 1).
    pub fn start(threads: usize) -> Self {
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let task = {
                        let mut queue = lock_ignore_poison(&shared.queue);
                        loop {
                            if let Some(task) = queue.pop_front() {
                                break task;
                            }
                            if shared.shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            queue = shared
                                .available
                                .wait(queue)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    // A panicking job must not take its worker down with
                    // it; the job's own error channel reports the failure.
                    let _ = catch_unwind(AssertUnwindSafe(task));
                })
            })
            .collect();
        Self { shared, workers }
    }

    /// A pool sized like this executor (see [`Executor::threads`]).
    pub fn from_executor(exec: &Executor) -> Self {
        Self::start(exec.threads())
    }

    /// Enqueues one task; a parked worker picks it up.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        lock_ignore_poison(&self.shared.queue).push_back(Box::new(task));
        self.shared.available.notify_one();
    }

    /// Tasks queued but not yet claimed by a worker.
    pub fn queued(&self) -> usize {
        lock_ignore_poison(&self.shared.queue).len()
    }

    /// The number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Drains every task already queued, then joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ExecutorService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 16] {
            let tasks: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
            let out = Executor::new(threads).run(tasks);
            assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_is_bounded() {
        use std::sync::atomic::AtomicUsize;
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..100)
            .map(|i| {
                move || {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                    i
                }
            })
            .collect();
        let out = Executor::new(3).run(tasks);
        assert_eq!(out.len(), 100);
        assert!(
            PEAK.load(Ordering::SeqCst) <= 3,
            "more concurrent tasks than workers: {}",
            PEAK.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn empty_and_single_task_batches() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(Executor::new(4).run(none).is_empty());
        assert_eq!(Executor::new(4).run(vec![|| 7u8]), vec![7]);
    }

    #[test]
    fn tasks_may_borrow_the_caller_stack() {
        let data = vec![1u64, 2, 3, 4];
        let data = &data;
        let tasks: Vec<_> = (0..data.len()).map(|i| move || data[i] * 10).collect();
        assert_eq!(Executor::new(2).run(tasks), vec![10, 20, 30, 40]);
    }

    #[test]
    fn task_panic_propagates_original_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..16u32)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("task five exploded");
                        }
                        i
                    }) as Box<dyn FnOnce() -> u32 + Send>
                })
                .collect();
            Executor::new(4).run(tasks)
        }))
        .expect_err("the task panic must propagate");
        // The payload is the original one, not a PoisonError cascade from
        // sibling workers dying on poisoned deque mutexes.
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .expect("original &str payload");
        assert_eq!(msg, "task five exploded");
    }

    #[test]
    fn siblings_finish_their_tasks_despite_a_panic() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        RAN.store(0, Ordering::SeqCst);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..32)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        panic!("early panic");
                    }
                    RAN.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| Executor::new(4).run(tasks)));
        assert!(result.is_err());
        assert_eq!(
            RAN.load(Ordering::SeqCst),
            31,
            "every non-panicking task must still run"
        );
    }

    #[test]
    fn first_panic_by_task_order_wins() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i| {
                    Box::new(move || {
                        // Two tasks panic; the lower-indexed payload must
                        // be the one re-raised, regardless of scheduling.
                        if i == 2 {
                            panic!("panic two");
                        }
                        if i == 6 {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            panic!("panic six");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            Executor::new(2).run(tasks)
        }))
        .expect_err("must panic");
        let msg = caught.downcast_ref::<&str>().copied().unwrap();
        assert_eq!(msg, "panic two");
    }

    #[test]
    fn instrumented_run_reports_every_task_once() {
        for threads in [1, 3] {
            let tasks: Vec<_> = (0..20u64).map(|i| move || i + 1).collect();
            let (out, stats) = Executor::new(threads).run_with_stats(tasks);
            assert_eq!(out, (1..=20u64).collect::<Vec<_>>());
            assert_eq!(stats.total_tasks(), 20);
            assert_eq!(stats.workers.len(), threads.min(20));
            assert!(stats.mean_utilization() >= 0.0 && stats.mean_utilization() <= 1.0);
        }
    }

    #[test]
    fn instrumented_run_measures_busy_time() {
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    i
                }
            })
            .collect();
        let (_, stats) = Executor::new(2).run_with_stats(tasks);
        let busy: Duration = stats.workers.iter().map(|w| w.busy).sum();
        assert!(busy >= Duration::from_millis(4), "busy = {busy:?}");
        assert!(stats.wall >= Duration::from_millis(2));
        assert!(stats.mean_utilization() > 0.0);
    }

    #[test]
    fn uninstrumented_stats_are_free() {
        let (out, stats) = Executor::new(2).run_inner(vec![|| 1, || 2], false);
        assert_eq!(out, vec![1, 2]);
        assert!(stats.is_none());
    }

    #[test]
    fn many_tiny_batches_never_deadlock() {
        // Regression: the steal path used to probe sibling deques while
        // still holding the guard on the worker's own (empty) deque — a
        // single `.or_else` chain keeps that temporary alive for the whole
        // statement — so two idle workers stealing from each other could
        // deadlock AB-BA. Tiny batches on a wide pool (the shape the
        // conservative ring driver produces every window) hit the race in
        // a few thousand iterations; with one-lock-at-a-time probing this
        // loop runs dry every time.
        for round in 0..2_000u64 {
            let n = (round % 3 + 2) as usize;
            let tasks: Vec<_> = (0..n as u64).map(|i| move || round + i).collect();
            let out = Executor::new(4).run(tasks);
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn cancel_token_is_shared_and_resettable() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
        token.reset();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn service_runs_incrementally_submitted_tasks() {
        let service = ExecutorService::start(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..50u64 {
            let tx = tx.clone();
            service.spawn(move || tx.send(i).unwrap());
        }
        // A second wave after the first may already be in flight.
        for i in 50..100u64 {
            let tx = tx.clone();
            service.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        service.shutdown();
    }

    #[test]
    fn service_shutdown_drains_queued_tasks() {
        static DONE: AtomicUsize = AtomicUsize::new(0);
        DONE.store(0, Ordering::SeqCst);
        let service = ExecutorService::start(1);
        for _ in 0..20 {
            service.spawn(|| {
                std::thread::sleep(Duration::from_micros(100));
                DONE.fetch_add(1, Ordering::SeqCst);
            });
        }
        service.shutdown();
        assert_eq!(DONE.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn service_survives_a_panicking_task() {
        let service = ExecutorService::start(1);
        let (tx, rx) = mpsc::channel();
        service.spawn(|| panic!("job exploded"));
        service.spawn(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        service.shutdown();
    }

    #[test]
    fn default_threads_is_positive_and_overridable() {
        assert!(default_threads() >= 1);
        set_default_threads(5);
        assert_eq!(default_threads(), 5);
        assert_eq!(Executor::with_default().threads(), 5);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
