//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The hot path chases `HashMap<LineAddr, …>` entries on every ring event.
//! `std`'s default SipHash-1-3 is DoS-resistant but costs tens of cycles
//! per lookup key — pure overhead here, because every key is
//! simulator-internal (line addresses, transaction ids), never attacker
//! supplied. This module inlines the multiply-rotate hash used by the
//! Rust compiler itself (`rustc_hash`/"FxHash"), so no external crate is
//! needed: one wrapping multiply per 8-byte word.
//!
//! Unlike `RandomState`, [`FxBuildHasher`] is stateless, so iteration
//! order of an `FxHashMap` is stable across runs for an identical insert
//! sequence — worth having even though the simulator never iterates maps
//! on a result-affecting path.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The multiplier from the golden ratio (2^64 / φ), as used by rustc's
/// FxHash; spreads consecutive integers across the full 64-bit range.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A non-cryptographic multiply-rotate hasher (rustc's "FxHash").
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Stateless builder for [`FxHasher`] (alias of `BuildHasherDefault`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"ring"), hash_of(&"ring"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Consecutive line addresses must not collide into the same slots.
        let hashes: HashSet<u64> = (0u64..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // 9 bytes: one full word plus a 1-byte tail; the tail must matter.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
