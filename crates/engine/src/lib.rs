//! Discrete-event simulation substrate for the flexsnoop simulator.
//!
//! This crate provides the timing machinery every other flexsnoop crate is
//! built on:
//!
//! * [`Cycle`] / [`Cycles`] — newtypes for absolute simulation time and
//!   durations, measured in processor clock cycles.
//! * [`EventQueue`] / [`queue::BucketQueue`] — deterministic time-ordered
//!   queues with FIFO tie-breaking for events scheduled at the same cycle
//!   (a binary heap and a timing wheel with identical pop order; see
//!   [`QueueKind`]).
//! * [`Scheduler`] — an event queue plus a simulation clock.
//! * [`Resource`] — a serially-occupied resource (bus, link, memory port)
//!   used to model contention.
//! * [`SplitMix64`] — a tiny deterministic RNG for reproducible simulations.
//! * [`fxhash`] — a fast deterministic hasher for simulator-internal maps.
//! * [`Executor`] — a bounded work-stealing pool for sweeping many
//!   independent simulations without oversubscribing the machine.
//!
//! # Example
//!
//! ```
//! use flexsnoop_engine::{Cycles, Scheduler};
//!
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.schedule_in(Cycles(10), "b");
//! sched.schedule_in(Cycles(5), "a");
//! let (t, ev) = sched.pop().unwrap();
//! assert_eq!((t.as_u64(), ev), (5, "a"));
//! let (t, ev) = sched.pop().unwrap();
//! assert_eq!((t.as_u64(), ev), (10, "b"));
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod fxhash;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod snap;
pub mod time;

pub use executor::{CancelToken, Executor, ExecutorService, ExecutorStats, WorkerStats};
pub use fxhash::{FxHashMap, FxHashSet};
pub use queue::{EventQueue, QueueKind};
pub use resource::Resource;
pub use rng::SplitMix64;
pub use shard::{run_conservative, segment_of, Outbox, RingSegment, ShardedScheduler};
pub use snap::{SnapError, SnapReader, SnapWriter, Snapshot};
pub use time::{Cycle, Cycles};

/// An event queue combined with a simulation clock.
///
/// The clock advances monotonically to the timestamp of each popped event.
/// Events may never be scheduled in the past; doing so is a logic error and
/// panics (see [`Scheduler::schedule_at`]).
///
/// The backing queue is chosen by [`QueueKind`]; both implementations pop
/// in the identical `(time, insertion order)` sequence, so the choice
/// never changes simulation results — only throughput.
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    now: Cycle,
    queue: AnyQueue<E>,
}

/// Dispatch between the two queue implementations.
#[derive(Debug, Clone)]
enum AnyQueue<E> {
    Heap(EventQueue<E>),
    Bucketed(queue::BucketQueue<E>),
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at cycle 0, backed by the
    /// default (bucketed) queue.
    pub fn new() -> Self {
        Self::with_queue(QueueKind::default())
    }

    /// Creates an empty scheduler backed by the given queue implementation.
    pub fn with_queue(kind: QueueKind) -> Self {
        Self {
            now: Cycle::ZERO,
            queue: match kind {
                QueueKind::Heap => AnyQueue::Heap(EventQueue::new()),
                QueueKind::Bucketed => AnyQueue::Bucketed(queue::BucketQueue::new()),
            },
        }
    }

    /// Which queue implementation backs this scheduler.
    pub fn queue_kind(&self) -> QueueKind {
        match &self.queue {
            AnyQueue::Heap(_) => QueueKind::Heap,
            AnyQueue::Bucketed(_) => QueueKind::Bucketed,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.queue {
            AnyQueue::Heap(q) => q.len(),
            AnyQueue::Bucketed(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time: an event
    /// in the past can never be dispatched by a monotonic clock and always
    /// indicates a model bug.
    #[inline]
    pub fn schedule_at(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        match &mut self.queue {
            AnyQueue::Heap(q) => q.push(at, event),
            AnyQueue::Bucketed(q) => q.push(at, event),
        }
    }

    /// Schedules `event` after a delay of `delay` cycles from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        let at = self.now + delay;
        match &mut self.queue {
            AnyQueue::Heap(q) => q.push(at, event),
            AnyQueue::Bucketed(q) => q.push(at, event),
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is drained; the clock keeps its last
    /// value so a post-mortem caller can still ask "when did we finish?".
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (t, e) = match &mut self.queue {
            AnyQueue::Heap(q) => q.pop()?,
            AnyQueue::Bucketed(q) => q.pop()?,
        };
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        Some((t, e))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        match &self.queue {
            AnyQueue::Heap(q) => q.peek_time(),
            AnyQueue::Bucketed(q) => q.peek_time(),
        }
    }

    /// Forces the clock to `at` without popping an event.
    ///
    /// Checkpoint restore only: re-inserting a snapshot's pending events
    /// into a fresh scheduler leaves the clock at zero (pushes never
    /// advance it), so the restorer rewinds — or rather fast-forwards —
    /// the clock to the snapshot's simulation time as the final step.
    ///
    /// # Panics
    ///
    /// Panics if a pending event would end up in the past, which would
    /// break the monotonic-clock contract the queues rely on.
    pub fn restore_clock(&mut self, at: Cycle) {
        if let Some(t) = self.peek_time() {
            assert!(
                t >= at,
                "restore_clock({at}) would strand a pending event at {t}"
            );
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_orders_by_time_then_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(Cycle::new(7), 1);
        s.schedule_at(Cycle::new(3), 2);
        s.schedule_at(Cycle::new(7), 3);
        assert_eq!(s.pop(), Some((Cycle::new(3), 2)));
        assert_eq!(s.now(), Cycle::new(3));
        assert_eq!(s.pop(), Some((Cycle::new(7), 1)));
        assert_eq!(s.pop(), Some((Cycle::new(7), 3)));
        assert_eq!(s.pop(), None);
        assert_eq!(s.now(), Cycle::new(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_in(Cycles(5), "x");
        let _ = s.pop();
        s.schedule_in(Cycles(5), "y");
        assert_eq!(s.pop(), Some((Cycle::new(10), "y")));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(Cycle::new(10), "x");
        let _ = s.pop();
        s.schedule_at(Cycle::new(5), "y");
    }

    #[test]
    fn empty_and_len() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_in(Cycles(1), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.peek_time(), Some(Cycle::new(1)));
    }
}
