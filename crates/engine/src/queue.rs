//! Deterministic time-ordered event queues.
//!
//! Two implementations with identical pop order:
//!
//! * [`EventQueue`] — a binary heap; O(log n) everywhere, no assumptions
//!   about the time distribution.
//! * [`BucketQueue`] — a timing wheel for the near-monotonic schedules a
//!   discrete-event simulator produces (almost every event lands within a
//!   few hundred cycles of "now"); O(1) push/pop for in-horizon events,
//!   with a heap fallback for far-future ones.
//!
//! Both order events by `(time, insertion sequence)`, so simulations are
//! bit-for-bit reproducible whichever queue backs the [`crate::Scheduler`]
//! — a property pinned by the determinism regression tests.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Which event-queue implementation a [`crate::Scheduler`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Binary heap ([`EventQueue`]).
    Heap,
    /// Timing wheel with heap overflow ([`BucketQueue`]); the default.
    #[default]
    Bucketed,
}

/// A priority queue of `(Cycle, E)` pairs ordered by ascending time.
///
/// Events with equal timestamps are returned in insertion (FIFO) order, which
/// makes simulations bit-for-bit reproducible regardless of heap internals.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{queue::EventQueue, Cycle};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), 'b');
/// q.push(Cycle::new(5), 'c');
/// q.push(Cycle::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

// The heap is a max-heap; invert the ordering to pop earliest-first, with
// the insertion sequence number breaking ties.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Inserts `event` with timestamp `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Wheel span in cycles. Ring hops, snoops and cache round-trips are all
/// tens of cycles and DRAM a few hundred, so nearly every event lands in
/// the wheel; only workload think times (thousands of cycles) overflow to
/// the heap.
const WHEEL: u64 = 4096;

/// A timing-wheel event queue with a heap fallback for events beyond the
/// wheel horizon.
///
/// Events within `WHEEL` cycles of the queue's clock go into per-cycle
/// FIFO buckets (O(1)); later events go into an overflow heap. `pop`
/// compares the earliest bucket against the heap top by
/// `(time, insertion sequence)`, so the pop order is identical to
/// [`EventQueue`]'s.
///
/// **Contract:** pushes must not be earlier than the last popped time
/// (enforced by [`crate::Scheduler`], which never schedules in the past).
/// This is what lets the wheel advance a monotonic cursor instead of
/// re-scanning.
#[derive(Debug, Clone)]
pub struct BucketQueue<E> {
    /// `WHEEL` per-cycle buckets, indexed by `time % WHEEL`; each bucket
    /// holds the events of exactly one timestamp, in insertion order.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// Lower bound on every wheel entry's time; advances on every pop.
    cursor: u64,
    /// Events currently in the wheel (not counting the overflow heap).
    in_wheel: usize,
    /// Events at or beyond `cursor + WHEEL` at push time.
    overflow: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for BucketQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BucketQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            buckets: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    #[inline]
    fn bucket_index(t: u64) -> usize {
        (t % WHEEL) as usize
    }

    /// Inserts `event` with timestamp `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is behind the last popped time. A past-time push
    /// would land in a bucket `WHEEL` cycles in the future and silently
    /// reorder events, so the contract is enforced unconditionally — the
    /// branch is perfectly predicted and free on the hot path.
    #[inline]
    pub fn push(&mut self, time: Cycle, event: E) {
        let t = time.as_u64();
        assert!(
            t >= self.cursor,
            "BucketQueue push at {t} behind cursor {}",
            self.cursor
        );
        let seq = self.seq;
        self.seq += 1;
        if t < self.cursor + WHEEL {
            self.buckets[Self::bucket_index(t)].push_back((seq, event));
            self.in_wheel += 1;
        } else {
            self.overflow.push(Entry { time, seq, event });
        }
    }

    /// Time of the earliest non-empty bucket, scanning forward from the
    /// cursor. `None` when the wheel is empty.
    #[inline]
    fn earliest_wheel_time(&self) -> Option<u64> {
        if self.in_wheel == 0 {
            return None;
        }
        // All wheel entries lie in [cursor, cursor + WHEEL), so the scan
        // finds one within WHEEL steps; the cursor's monotonic advance
        // makes the amortized cost O(1) per simulated cycle.
        let mut t = self.cursor;
        loop {
            if !self.buckets[Self::bucket_index(t)].is_empty() {
                return Some(t);
            }
            t += 1;
            debug_assert!(t < self.cursor + WHEEL, "wheel count out of sync");
        }
    }

    /// Removes and returns the earliest event (FIFO within a timestamp).
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let wheel_t = self.earliest_wheel_time();
        // Take the wheel entry unless the overflow heap holds something
        // earlier — or equal-time with a smaller sequence number (cannot
        // happen in practice: an overflow push predates, hence out-ranks,
        // any same-time wheel push; compared anyway for strict equivalence
        // with EventQueue).
        let from_wheel = match (wheel_t, self.overflow.peek()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(wt), Some(top)) => {
                let wseq = self.buckets[Self::bucket_index(wt)][0].0;
                (wt, wseq) < (top.time.as_u64(), top.seq)
            }
        };
        if from_wheel {
            let t = wheel_t.expect("wheel entry present");
            let (_, event) = self.buckets[Self::bucket_index(t)]
                .pop_front()
                .expect("bucket non-empty");
            self.in_wheel -= 1;
            self.cursor = t;
            Some((Cycle::new(t), event))
        } else {
            let e = self.overflow.pop().expect("overflow entry present");
            // The popped time is the global minimum, so it is still a
            // valid lower bound for every wheel entry.
            self.cursor = e.time.as_u64();
            Some((e.time, e.event))
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let wheel = self.earliest_wheel_time();
        let heap = self.overflow.peek().map(|e| e.time.as_u64());
        match (wheel, heap) {
            (None, None) => None,
            (Some(a), None) => Some(Cycle::new(a)),
            (None, Some(b)) => Some(Cycle::new(b)),
            (Some(a), Some(b)) => Some(Cycle::new(a.min(b))),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "a");
        assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
        q.push(Cycle::new(5), "b");
        q.push(Cycle::new(5), "c");
        assert_eq!(q.pop(), Some((Cycle::new(5), "b")));
        assert_eq!(q.pop(), Some((Cycle::new(5), "c")));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(9), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    // ----- BucketQueue ----------------------------------------------------

    #[test]
    fn bucket_pops_in_time_order() {
        let mut q = BucketQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_equal_times_are_fifo() {
        let mut q = BucketQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn bucket_overflow_beyond_horizon_round_trips() {
        let mut q = BucketQueue::new();
        // Far beyond the wheel: lands in the overflow heap.
        q.push(Cycle::new(10 * WHEEL), "far");
        q.push(Cycle::new(1), "near");
        q.push(Cycle::new(10 * WHEEL), "far2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Cycle::new(1), "near")));
        // FIFO survives the overflow path too.
        assert_eq!(q.pop(), Some((Cycle::new(10 * WHEEL), "far")));
        assert_eq!(q.pop(), Some((Cycle::new(10 * WHEEL), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_overflow_and_wheel_merge_fifo_at_equal_time() {
        let mut q = BucketQueue::new();
        // Pushed while 2*WHEEL is beyond the horizon: goes to overflow.
        q.push(Cycle::new(2 * WHEEL), "heap-resident");
        q.push(Cycle::new(WHEEL + 1), "mover");
        assert_eq!(q.pop(), Some((Cycle::new(WHEEL + 1), "mover")));
        // Now 2*WHEEL is inside the horizon: same time, wheel-resident,
        // pushed later — must pop after the overflow entry.
        q.push(Cycle::new(2 * WHEEL), "wheel-resident");
        assert_eq!(q.pop(), Some((Cycle::new(2 * WHEEL), "heap-resident")));
        assert_eq!(q.pop(), Some((Cycle::new(2 * WHEEL), "wheel-resident")));
    }

    #[test]
    fn bucket_peek_matches_pop() {
        let mut q = BucketQueue::new();
        q.push(Cycle::new(7), 'a');
        q.push(Cycle::new(3 + WHEEL * 5), 'z');
        assert_eq!(q.peek_time(), Some(Cycle::new(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle::new(3 + WHEEL * 5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "behind cursor")]
    fn bucket_rejects_push_behind_cursor() {
        let mut q = BucketQueue::new();
        q.push(Cycle::new(100), 'a');
        assert_eq!(q.pop(), Some((Cycle::new(100), 'a')));
        // The cursor now sits at 100; a past-time push must panic rather
        // than land in a future bucket and reorder events.
        q.push(Cycle::new(99), 'b');
    }

    /// The two queues must pop identically on a randomized near-monotonic
    /// schedule (the exact workload a simulator produces).
    #[test]
    fn heap_and_bucket_orders_are_identical() {
        let mut rng = crate::SplitMix64::new(0xdecaf);
        let mut heap = EventQueue::new();
        let mut wheel = BucketQueue::new();
        let mut now = 0u64;
        for step in 0..50_000u64 {
            // Mix of short hops, same-cycle events, and far think times.
            let delay = match rng.next_below(10) {
                0 => 0,
                1..=7 => rng.next_below(300),
                8 => rng.next_below(WHEEL * 2),
                _ => WHEEL * 2 + rng.next_below(10_000),
            };
            heap.push(Cycle::new(now + delay), step);
            wheel.push(Cycle::new(now + delay), step);
            if rng.next_below(3) > 0 {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "diverged at step {step}");
                if let Some((t, _)) = a {
                    now = t.as_u64();
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
