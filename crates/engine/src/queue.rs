//! Deterministic time-ordered event queues.
//!
//! Two implementations with identical pop order:
//!
//! * [`EventQueue`] — a binary heap; O(log n) everywhere, no assumptions
//!   about the time distribution.
//! * [`BucketQueue`] — a timing wheel for the near-monotonic schedules a
//!   discrete-event simulator produces (almost every event lands within a
//!   few hundred cycles of "now"); O(1) push/pop for in-horizon events,
//!   with a heap fallback for far-future ones.
//!
//! Both order events by `(time, insertion sequence)`, so simulations are
//! bit-for-bit reproducible whichever queue backs the [`crate::Scheduler`]
//! — a property pinned by the determinism regression tests.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Which event-queue implementation a [`crate::Scheduler`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Binary heap ([`EventQueue`]).
    Heap,
    /// Timing wheel with heap overflow ([`BucketQueue`]); the default.
    #[default]
    Bucketed,
}

/// A priority queue of `(Cycle, E)` pairs ordered by ascending time.
///
/// Events with equal timestamps are returned in insertion (FIFO) order, which
/// makes simulations bit-for-bit reproducible regardless of heap internals.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{queue::EventQueue, Cycle};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), 'b');
/// q.push(Cycle::new(5), 'c');
/// q.push(Cycle::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

// The heap is a max-heap; invert the ordering to pop earliest-first, with
// the insertion sequence number breaking ties.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Inserts `event` with timestamp `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Near-wheel span in cycles. Ring hops, snoops and cache round-trips are
/// all tens of cycles and DRAM a few hundred, so nearly every event lands
/// in the near wheel.
const WHEEL: u64 = 4096;

/// Far-wheel bucket count. Each far bucket spans `WHEEL` cycles, so the
/// far wheel covers `WHEEL * FAR_BUCKETS` ≈ 16.7M cycles beyond the near
/// horizon — enough for cross-chip torus data legs and requester timeouts
/// at million-node ring scale, which used to degrade to the heap fallback.
const FAR_BUCKETS: u64 = 4096;

/// Total horizon the two wheels cover before the heap fallback engages.
const FAR_SPAN: u64 = WHEEL * FAR_BUCKETS;

/// A hierarchical timing-wheel event queue with a heap fallback for events
/// beyond both wheel horizons.
///
/// Events within `WHEEL` cycles of the queue's clock go into per-cycle
/// FIFO *near* buckets (O(1)); events up to ~16.7M cycles out go into
/// `WHEEL`-cycle-wide *far* buckets that cascade into the near wheel as
/// the clock approaches them; only events beyond the far horizon go into
/// an overflow heap. `pop` compares the earliest wheel entry against the
/// heap top by `(time, insertion sequence)`, so the pop order is identical
/// to [`EventQueue`]'s.
///
/// **Contract:** pushes must not be earlier than the last popped time
/// (enforced by [`crate::Scheduler`], which never schedules in the past).
/// This is what lets the wheels advance monotonic cursors instead of
/// re-scanning.
#[derive(Debug, Clone)]
pub struct BucketQueue<E> {
    /// `WHEEL` per-cycle buckets, indexed by `time % WHEEL`; each bucket
    /// holds the events of exactly one timestamp, in insertion order.
    /// Near entries lie in `[cursor, far_start)`, and the push/pop
    /// invariant `far_start - cursor <= WHEEL` keeps the mapping
    /// injective (at most one timestamp per bucket).
    near: Vec<VecDeque<(u64, E)>>,
    /// `FAR_BUCKETS` buckets of `WHEEL` cycles each, indexed by
    /// `(time / WHEEL) % FAR_BUCKETS`; entries are *not* time-sorted
    /// within a bucket (they carry their timestamp) and cascade into the
    /// near wheel, in insertion order, when the clock reaches the bucket.
    far: Vec<Vec<(u64, u64, E)>>,
    /// Lower bound on every near entry's time; advances on every pop.
    cursor: u64,
    /// Lower bound on every far entry's time; always a multiple of
    /// `WHEEL`, advances one bucket per cascade. The far wheel covers
    /// `[far_start, far_start + FAR_SPAN)`.
    far_start: u64,
    /// Events currently in the near wheel.
    in_near: usize,
    /// Events currently in the far wheel.
    in_far: usize,
    /// Events at or beyond `far_start + FAR_SPAN` at push time.
    overflow: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for BucketQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BucketQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            near: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            far: (0..FAR_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            far_start: WHEEL,
            in_near: 0,
            in_far: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    #[inline]
    fn near_index(t: u64) -> usize {
        (t % WHEEL) as usize
    }

    #[inline]
    fn far_index(t: u64) -> usize {
        ((t / WHEEL) % FAR_BUCKETS) as usize
    }

    /// Inserts `event` with timestamp `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is behind the last popped time. A past-time push
    /// would land in a bucket `WHEEL` cycles in the future and silently
    /// reorder events, so the contract is enforced unconditionally — the
    /// branch is perfectly predicted and free on the hot path.
    #[inline]
    pub fn push(&mut self, time: Cycle, event: E) {
        let t = time.as_u64();
        assert!(
            t >= self.cursor,
            "BucketQueue push at {t} behind cursor {}",
            self.cursor
        );
        let seq = self.seq;
        self.seq += 1;
        if t < self.far_start {
            self.near[Self::near_index(t)].push_back((seq, event));
            self.in_near += 1;
        } else if t < self.far_start + FAR_SPAN {
            self.far[Self::far_index(t)].push((t, seq, event));
            self.in_far += 1;
        } else {
            self.overflow.push(Entry { time, seq, event });
        }
    }

    /// Time of the earliest non-empty near bucket, scanning forward from
    /// the cursor. `None` when the near wheel is empty.
    #[inline]
    fn earliest_near_time(&self) -> Option<u64> {
        if self.in_near == 0 {
            return None;
        }
        // All near entries lie in [cursor, far_start), so the scan finds
        // one within WHEEL steps; the cursor's monotonic advance makes the
        // amortized cost O(1) per simulated cycle.
        let mut t = self.cursor;
        loop {
            if !self.near[Self::near_index(t)].is_empty() {
                return Some(t);
            }
            t += 1;
            debug_assert!(t < self.cursor + WHEEL, "near wheel count out of sync");
        }
    }

    /// Cascades far buckets into the near wheel until the near wheel is
    /// non-empty (or the far wheel drains). Only called with an empty near
    /// wheel, so the cascaded bucket `[far_start, far_start + WHEEL)` maps
    /// injectively onto the near buckets. The cursor may only advance to
    /// `far_start` if the overflow heap holds nothing earlier — a heap
    /// entry below `far_start` is possible after long idle jumps, and
    /// passing it would let a later push land behind the cursor.
    fn cascade(&mut self) {
        while self.in_near == 0 && self.in_far > 0 {
            if let Some(top) = self.overflow.peek() {
                if top.time.as_u64() < self.far_start {
                    return; // the heap top pops first; do not pass it
                }
            }
            debug_assert!(self.cursor <= self.far_start);
            self.cursor = self.far_start;
            let idx = Self::far_index(self.far_start);
            self.far_start += WHEEL;
            let drained = std::mem::take(&mut self.far[idx]);
            self.in_far -= drained.len();
            self.in_near += drained.len();
            for (t, seq, event) in drained {
                debug_assert!(t >= self.cursor && t < self.far_start);
                self.near[Self::near_index(t)].push_back((seq, event));
            }
        }
    }

    /// Removes and returns the earliest event (FIFO within a timestamp).
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.in_near == 0 {
            self.cascade();
        }
        let near_t = self.earliest_near_time();
        // Take the near entry unless the overflow heap holds something
        // earlier — or equal-time with a smaller sequence number (an
        // overflow push predates, hence out-ranks, any same-time wheel
        // push, because the far horizon only moves forward between them;
        // compared by (time, seq) for strict equivalence with EventQueue).
        let from_wheel = match (near_t, self.overflow.peek()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(wt), Some(top)) => {
                let wseq = self.near[Self::near_index(wt)][0].0;
                (wt, wseq) < (top.time.as_u64(), top.seq)
            }
        };
        if from_wheel {
            let t = near_t.expect("near entry present");
            let (_, event) = self.near[Self::near_index(t)]
                .pop_front()
                .expect("bucket non-empty");
            self.in_near -= 1;
            self.cursor = t;
            Some((Cycle::new(t), event))
        } else {
            let e = self.overflow.pop().expect("overflow entry present");
            let t = e.time.as_u64();
            // The popped time is the global minimum, so it is still a
            // valid lower bound for every wheel entry.
            self.cursor = t;
            if self.in_near == 0 && self.in_far == 0 {
                // Both wheels drained: re-anchor the far horizon next to
                // the clock so follow-up events use the wheels again
                // instead of raining into the heap.
                self.far_start = (t / WHEEL + 1) * WHEEL;
            }
            Some((e.time, e.event))
        }
    }

    /// Minimum `(time, seq)` pending in the far wheel (scans the first
    /// non-empty bucket; far entries within a bucket are unsorted).
    fn earliest_far(&self) -> Option<(u64, u64)> {
        if self.in_far == 0 {
            return None;
        }
        let mut start = self.far_start;
        loop {
            let bucket = &self.far[Self::far_index(start)];
            if !bucket.is_empty() {
                return bucket.iter().map(|&(t, seq, _)| (t, seq)).min();
            }
            start += WHEEL;
            debug_assert!(start < self.far_start + FAR_SPAN, "far count out of sync");
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let near = self.earliest_near_time();
        let far = self.earliest_far().map(|(t, _)| t);
        let heap = self.overflow.peek().map(|e| e.time.as_u64());
        [near, far, heap]
            .into_iter()
            .flatten()
            .min()
            .map(Cycle::new)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_near + self.in_far + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events currently in the overflow heap (beyond both wheel
    /// horizons). Regression guard: simulator-scale latencies must land
    /// in the wheels, not here.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Events currently in the far wheel.
    pub fn far_len(&self) -> usize {
        self.in_far
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "a");
        assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
        q.push(Cycle::new(5), "b");
        q.push(Cycle::new(5), "c");
        assert_eq!(q.pop(), Some((Cycle::new(5), "b")));
        assert_eq!(q.pop(), Some((Cycle::new(5), "c")));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(9), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    // ----- BucketQueue ----------------------------------------------------

    #[test]
    fn bucket_pops_in_time_order() {
        let mut q = BucketQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_equal_times_are_fifo() {
        let mut q = BucketQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn bucket_overflow_beyond_horizon_round_trips() {
        let mut q = BucketQueue::new();
        // Beyond the near wheel: lands in the far wheel, not the heap.
        q.push(Cycle::new(10 * WHEEL), "far");
        q.push(Cycle::new(1), "near");
        q.push(Cycle::new(10 * WHEEL), "far2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.overflow_len(), 0);
        assert_eq!(q.far_len(), 2);
        assert_eq!(q.pop(), Some((Cycle::new(1), "near")));
        // FIFO survives the cascade path too.
        assert_eq!(q.pop(), Some((Cycle::new(10 * WHEEL), "far")));
        assert_eq!(q.pop(), Some((Cycle::new(10 * WHEEL), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_far_and_near_merge_fifo_at_equal_time() {
        let mut q = BucketQueue::new();
        // Pushed while 2*WHEEL is beyond the near horizon: far-resident.
        q.push(Cycle::new(2 * WHEEL), "far-resident");
        q.push(Cycle::new(WHEEL + 1), "mover");
        assert_eq!(q.pop(), Some((Cycle::new(WHEEL + 1), "mover")));
        // Now 2*WHEEL is inside the near horizon: same time, pushed later
        // — must pop after the far-wheel entry.
        q.push(Cycle::new(2 * WHEEL), "near-resident");
        assert_eq!(q.pop(), Some((Cycle::new(2 * WHEEL), "far-resident")));
        assert_eq!(q.pop(), Some((Cycle::new(2 * WHEEL), "near-resident")));
    }

    #[test]
    fn bucket_heap_and_wheel_merge_fifo_at_equal_time() {
        let mut q = BucketQueue::new();
        // Beyond even the far wheel at push time: goes to the heap.
        let t = WHEEL + FAR_SPAN + 5;
        q.push(Cycle::new(t), "heap-resident");
        assert_eq!(q.overflow_len(), 1);
        q.push(Cycle::new(WHEEL + 7), "mover");
        assert_eq!(q.pop(), Some((Cycle::new(WHEEL + 7), "mover")));
        // Now t fits the (advanced) far wheel: same time, pushed later —
        // must pop after the heap entry.
        q.push(Cycle::new(t), "wheel-resident");
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.pop(), Some((Cycle::new(t), "heap-resident")));
        assert_eq!(q.pop(), Some((Cycle::new(t), "wheel-resident")));
    }

    /// Regression for million-node horizons: torus data legs (~16k cycles
    /// at a 1000×1000 mesh) and recovery timeouts (tens of thousands of
    /// cycles) must stay in the wheels. Before the far wheel existed,
    /// every event past 4096 cycles degraded to the heap fallback.
    #[test]
    fn bucket_million_node_latencies_avoid_heap_fallback() {
        let mut q = BucketQueue::new();
        let mut rng = crate::SplitMix64::new(0xabcde);
        let mut now = 0u64;
        for step in 0..20_000u64 {
            // Million-node event mix: per-hop ring events, torus data
            // legs crossing a kilonode mesh, and deep recovery timeouts.
            let delay = match rng.next_below(4) {
                0 => rng.next_below(64),
                1 => 16_000 + rng.next_below(4_000),
                2 => 100_000 + rng.next_below(50_000),
                _ => 1_000_000 + rng.next_below(500_000),
            };
            q.push(Cycle::new(now + delay), step);
            assert_eq!(q.overflow_len(), 0, "heap fallback engaged at {step}");
            if rng.next_below(3) > 0 {
                if let Some((t, _)) = q.pop() {
                    now = t.as_u64();
                }
            }
        }
        while q.pop().is_some() {}
    }

    /// After an idle jump past the far horizon drains everything to the
    /// heap, the far wheel must re-anchor so subsequent pushes use the
    /// wheels again.
    #[test]
    fn bucket_reanchors_after_idle_jump() {
        let mut q = BucketQueue::new();
        let jump = 3 * FAR_SPAN + 17;
        q.push(Cycle::new(jump), "sleeper");
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.pop(), Some((Cycle::new(jump), "sleeper")));
        // Wheels re-anchored at the new clock: nearby pushes stay out of
        // the heap.
        q.push(Cycle::new(jump + 10), "near");
        q.push(Cycle::new(jump + 2 * WHEEL), "far");
        assert_eq!(q.overflow_len(), 0);
        assert_eq!(q.pop(), Some((Cycle::new(jump + 10), "near")));
        assert_eq!(q.pop(), Some((Cycle::new(jump + 2 * WHEEL), "far")));
    }

    #[test]
    fn bucket_peek_matches_pop() {
        let mut q = BucketQueue::new();
        q.push(Cycle::new(7), 'a');
        q.push(Cycle::new(3 + WHEEL * 5), 'z');
        assert_eq!(q.peek_time(), Some(Cycle::new(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle::new(3 + WHEEL * 5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "behind cursor")]
    fn bucket_rejects_push_behind_cursor() {
        let mut q = BucketQueue::new();
        q.push(Cycle::new(100), 'a');
        assert_eq!(q.pop(), Some((Cycle::new(100), 'a')));
        // The cursor now sits at 100; a past-time push must panic rather
        // than land in a future bucket and reorder events.
        q.push(Cycle::new(99), 'b');
    }

    /// Property sweep over non-power-of-two horizons: delays clustered
    /// at `{0, 1, h-1, h, h+1}` for horizons straddling the near-wheel
    /// (`WHEEL`) and far-wheel (`FAR_SPAN`) boundaries, plus uniform
    /// fill, cross-checked element-wise against the heap backend. This
    /// pins the bucket-sizing arithmetic exactly where an off-by-one in
    /// `near_index`/`far_index`/`far_start` would bite.
    #[test]
    fn bucket_non_power_of_two_horizons_match_heap() {
        let horizons = [
            3u64,
            1_000,
            3_000,
            WHEEL - 1,
            WHEEL,
            WHEEL + 1,
            10_007, // prime
            100_003,
            FAR_SPAN - 1,
            FAR_SPAN,
            FAR_SPAN + 1,
        ];
        for &h in &horizons {
            let mut rng = crate::SplitMix64::new(0x51ee7 ^ h);
            let mut heap = EventQueue::new();
            let mut wheel = BucketQueue::new();
            let mut now = 0u64;
            for step in 0..4_000u64 {
                let delay = match rng.next_below(8) {
                    0 => 0,
                    1 => 1,
                    2 => h - 1,
                    3 => h,
                    4 => h + 1,
                    _ => rng.next_below(h + 1),
                };
                heap.push(Cycle::new(now + delay), step);
                wheel.push(Cycle::new(now + delay), step);
                if rng.next_below(2) > 0 {
                    let a = heap.pop();
                    let b = wheel.pop();
                    assert_eq!(a, b, "diverged at step {step} (horizon {h})");
                    if let Some((t, _)) = a {
                        now = t.as_u64();
                    }
                }
            }
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "drain diverged (horizon {h})");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Zero-delay pushes landing exactly when the cursor sits on a
    /// wheel-rotation boundary (a multiple of `WHEEL`, reached through
    /// the cascade path) must keep FIFO order and match the heap.
    #[test]
    fn bucket_zero_delay_at_rotation_boundary_matches_heap() {
        let mut heap = EventQueue::new();
        let mut wheel = BucketQueue::new();
        for k in 1..=6u64 {
            heap.push(Cycle::new(k * WHEEL), (k, 0));
            wheel.push(Cycle::new(k * WHEEL), (k, 0));
        }
        for k in 1..=6u64 {
            // This pop cascades and parks the cursor exactly at k*WHEEL.
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b, "boundary pop {k}");
            // Zero-delay pushes at the boundary cycle itself; must pop
            // immediately and in insertion order.
            for i in 1..=3u64 {
                heap.push(Cycle::new(k * WHEEL), (k, i));
                wheel.push(Cycle::new(k * WHEEL), (k, i));
            }
            for i in 1..=3u64 {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "zero-delay at boundary {k} entry {i}");
                assert_eq!(a, Some((Cycle::new(k * WHEEL), (k, i))));
            }
        }
        assert_eq!(heap.pop(), None);
        assert_eq!(wheel.pop(), None);
    }

    /// The two queues must pop identically on a randomized near-monotonic
    /// schedule (the exact workload a simulator produces).
    #[test]
    fn heap_and_bucket_orders_are_identical() {
        let mut rng = crate::SplitMix64::new(0xdecaf);
        let mut heap = EventQueue::new();
        let mut wheel = BucketQueue::new();
        let mut now = 0u64;
        for step in 0..50_000u64 {
            // Mix of short hops, same-cycle events, and far think times.
            let delay = match rng.next_below(12) {
                0 => 0,
                1..=7 => rng.next_below(300),
                8 => rng.next_below(WHEEL * 2),
                9 => WHEEL * 2 + rng.next_below(10_000),
                10 => rng.next_below(FAR_SPAN),
                _ => FAR_SPAN + rng.next_below(FAR_SPAN),
            };
            heap.push(Cycle::new(now + delay), step);
            wheel.push(Cycle::new(now + delay), step);
            if rng.next_below(3) > 0 {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "diverged at step {step}");
                if let Some((t, _)) = a {
                    now = t.as_u64();
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
