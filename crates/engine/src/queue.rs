//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// A priority queue of `(Cycle, E)` pairs ordered by ascending time.
///
/// Events with equal timestamps are returned in insertion (FIFO) order, which
/// makes simulations bit-for-bit reproducible regardless of heap internals.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{queue::EventQueue, Cycle};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), 'b');
/// q.push(Cycle::new(5), 'c');
/// q.push(Cycle::new(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

// The heap is a max-heap; invert the ordering to pop earliest-first, with
// the insertion sequence number breaking ties.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Inserts `event` with timestamp `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(42), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "a");
        assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
        q.push(Cycle::new(5), "b");
        q.push(Cycle::new(5), "c");
        assert_eq!(q.pop(), Some((Cycle::new(5), "b")));
        assert_eq!(q.pop(), Some((Cycle::new(5), "c")));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(9), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
