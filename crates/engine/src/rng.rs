//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed, so the engine
//! carries its own tiny generator instead of depending on platform entropy.
//! [`SplitMix64`] (Steele, Lea & Flood, OOPSLA 2014) is statistically solid
//! for simulation workloads, has a 64-bit state, and splits cleanly into
//! independent streams — one per core — so adding a core never perturbs the
//! streams of the others.

/// A SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw 64-bit generator state.
    ///
    /// For checkpointing: `SplitMix64::new(state)` reconstructs a
    /// generator that continues the identical stream, because the seed
    /// *is* the state — `new` stores it verbatim.
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Derives an independent child generator; used to give each simulated
    /// core its own stream.
    pub fn split(&mut self) -> SplitMix64 {
        // The golden-gamma increment guarantees the child stream is offset
        // from the parent's trajectory.
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        if bound > 1 << 48 {
            // Wide bounds take classic rejection on the full 64-bit word.
            // Simulation code never uses bounds this large; the branch
            // exists so the uniformity contract holds for every input.
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let x = self.next_u64();
                if x <= zone {
                    return x % bound;
                }
            }
        }
        // Lemire's debiased widening multiply on a 48-bit draw. The
        // rejection zone has `2^48 mod bound` values, so for the bounds
        // simulations use (≤ 2^20) a redraw fires with probability
        // < 2^-28 — exact uniformity at effectively zero sequence drift
        // versus the unrejected multiply.
        let threshold = (1u64 << 48) % bound;
        loop {
            let m = (self.next_u64() >> 16) as u128 * bound as u128;
            if (m as u64) & ((1 << 48) - 1) >= threshold {
                return (m >> 48) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        self.pick_weighted_presummed(weights, total)
    }

    /// [`Self::pick_weighted`] with the weight total precomputed by the
    /// caller. Draws the same value and walks the same scan, so the result
    /// is identical to `pick_weighted` for the matching `total`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or `total` is not positive.
    pub fn pick_weighted_presummed(&mut self, weights: &[f64], total: f64) -> usize {
        assert!(
            !weights.is_empty() && total > 0.0,
            "pick_weighted needs positive total weight"
        );
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_of_sibling_count() {
        let mut parent1 = SplitMix64::new(99);
        let c0 = parent1.split();
        let mut parent2 = SplitMix64::new(99);
        let d0 = parent2.split();
        let _d1 = parent2.split();
        assert_eq!(c0, d0); // first child unchanged by adding a second
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn pick_weighted_matches_weights() {
        let mut r = SplitMix64::new(17);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        let mid = counts[1] as f64 / 30_000.0;
        assert!((mid - 0.5).abs() < 0.02, "mid={mid}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    /// Pearson chi-squared statistic of `counts` against a uniform
    /// expectation.
    fn chi_squared_uniform(counts: &[u64], draws: u64) -> f64 {
        let expected = draws as f64 / counts.len() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    // Fault schedules must not be skewed, so uniformity gets a real
    // statistical check, not just a coverage check. The 99.9% critical
    // values: df=16 → 39.25, df=2 → 13.82. Seeds are fixed, so these are
    // deterministic smoke tests, not flaky samplers.

    #[test]
    fn next_below_chi_squared_uniform() {
        const DRAWS: u64 = 170_000;
        let mut r = SplitMix64::new(0xC0FFEE);
        let mut counts = [0u64; 17]; // 17 does not divide 2^48: the biased case
        for _ in 0..DRAWS {
            counts[r.next_below(17) as usize] += 1;
        }
        let chi2 = chi_squared_uniform(&counts, DRAWS);
        assert!(chi2 < 39.25, "chi2={chi2} counts={counts:?}");
    }

    #[test]
    fn next_below_chi_squared_uniform_large_bound() {
        const DRAWS: u64 = 160_000;
        const BOUND: u64 = 12_289; // prime, so maximally non-dividing
        let mut r = SplitMix64::new(0xBADDECAF);
        // Bucket the prime range into 16 cells for a stable statistic.
        let mut counts = [0u64; 16];
        for _ in 0..DRAWS {
            let v = r.next_below(BOUND);
            counts[(v * 16 / BOUND) as usize] += 1;
        }
        // Cells are not exactly equiprobable (12289 = 16*768 + 1), but
        // the imbalance is ~1e-4 of a cell — far below the test's power.
        let chi2 = chi_squared_uniform(&counts, DRAWS);
        assert!(chi2 < 37.70, "chi2={chi2} counts={counts:?}"); // df=15
    }

    #[test]
    fn pick_weighted_chi_squared_matches_weights() {
        const DRAWS: u64 = 120_000;
        let weights = [1.0, 2.0, 5.0];
        let total: f64 = weights.iter().sum();
        let mut r = SplitMix64::new(0xFEED);
        let mut counts = [0u64; 3];
        for _ in 0..DRAWS {
            counts[r.pick_weighted(&weights)] += 1;
        }
        let chi2: f64 = weights
            .iter()
            .zip(&counts)
            .map(|(&w, &c)| {
                let expected = DRAWS as f64 * w / total;
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 13.82, "chi2={chi2} counts={counts:?}"); // df=2
    }

    #[test]
    fn next_below_rejection_keeps_unrejected_sequence() {
        // The debiased multiply must return the same values as the plain
        // multiply whenever no rejection fires (which, for small bounds,
        // is essentially always): artifact stability depends on it.
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..50_000 {
            let plain = (((b.next_u64() >> 16) as u128 * 1000u128) >> 48) as u64;
            assert_eq!(a.next_below(1000), plain);
        }
    }
}
