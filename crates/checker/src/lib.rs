//! Differential correctness harness for the flexsnoop simulators.
//!
//! One call to [`run_differential`] takes a workload profile, records its
//! access streams once into a [`Trace`], and replays that identical trace
//! through a matrix of configurations:
//!
//! * the four Table 3 ring algorithms (Subset, Superset Con, Superset
//!   Agg, Exact),
//! * × both event-queue backends ([`QueueKind::Heap`] and
//!   [`QueueKind::Bucketed`]),
//! * × a 1-worker and an N-worker [`Executor`] sweep,
//! * plus the directory-protocol baseline ([`DirSimulator`]).
//!
//! The matrix runs on a flat ring by default; [`DiffOptions::hier`]
//! switches every ring run to a hierarchical multi-ring shape
//! (`local × groups` with bridge nodes and the locality predictor)
//! while the directory baseline stays topology-blind — one oracle
//! validates both topologies against the identical trace.
//!
//! Every ring run executes with the per-retirement invariant oracle
//! enabled, and the harness diffs what is *guaranteed* invariant across
//! configurations:
//!
//! * **bit-for-bit reproducibility** — the same (algorithm, trace) must
//!   produce identical [`RunStats`] and identical final line-state
//!   snapshots across queue backends and executor widths;
//! * **oracle cleanliness** — zero recorded [`Violation`]s and a clean
//!   final [`check_all`](flexsnoop_mem::invariants::check_all) sweep;
//! * **accounting identities** — every ring read is supplied by exactly
//!   one of cache or memory; every directory read is either 2-hop or
//!   3-hop;
//! * **dirty provenance** — a line may end dirty (`D`/`T`) only if the
//!   trace wrote it;
//! * **cross-protocol residency** — for read-only traces, each core's
//!   final L2 line set is identical across all ring algorithms *and* the
//!   directory baseline (fills are then a function of the core's own
//!   stream alone).
//!
//! Final cache *states* are deliberately **not** diffed across
//! algorithms or protocols: timing differences legitimately reorder
//! invalidations and evictions, so state equality only holds per
//! configuration (where determinism makes it exact).
//!
//! When a run records a violation, the harness **rewinds to just before
//! the divergence**: it replays the run to shortly before the first
//! violation's cycle, checkpoints it there ([`Simulator::save_snapshot`]),
//! restores the checkpoint into a fresh simulator with a
//! [`Timeline`](flexsnoop::Timeline) recorder enabled, and steps only the
//! tail up to the violation — so the report attaches a pinpointed
//! walkthrough of the first divergent transaction without paying for
//! timeline recording on every (usually clean) run. [`ProtocolMutation`]
//! injection (see [`DiffOptions::mutation`]) is the self-test proving
//! this detection path works end to end.

pub mod cachecheck;
pub mod chaos;

pub use chaos::{
    run_chaos, ChaosCoverage, ChaosFailure, ChaosOptions, ChaosReport, ChaosTotals, FAULT_KINDS,
};

use std::collections::{BTreeMap, BTreeSet};

use flexsnoop::{
    energy_model_for, Algorithm, MachineConfig, ProtocolMutation, RunStats, Simulator, VecStream,
    Violation, WorkloadProfile,
};
use flexsnoop_directory::DirSimulator;
use flexsnoop_engine::{Cycle, Executor, QueueKind};
use flexsnoop_mem::{CoherState, LineAddr};
use flexsnoop_workload::{AccessStream, Trace};

/// The four predictor-driven algorithms of the paper's Table 3, in table
/// order. (Lazy and Eager are the predictor-free baselines; Oracle is
/// unimplementable hardware.)
pub const TABLE3_ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Subset,
    Algorithm::SupersetCon,
    Algorithm::SupersetAgg,
    Algorithm::Exact,
];

/// Knobs for one differential run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Accesses recorded (and replayed) per core.
    pub accesses_per_core: u64,
    /// Machine nodes; must divide the profile's core count.
    pub nodes: usize,
    /// Hierarchical shape `(local, groups)`; `None` runs the flat ring.
    /// When set, `local × groups` must equal [`DiffOptions::nodes`] —
    /// the same trace then circulates over local rings joined by bridge
    /// nodes on a global ring, with the locality predictor deciding the
    /// initial scope.
    pub hier: Option<(usize, usize)>,
    /// Worker count for the wide executor sweep (the narrow sweep always
    /// uses 1).
    pub threads: usize,
    /// Transactions the rewind replay's [`Timeline`](flexsnoop::Timeline)
    /// recorder keeps, for violation walkthroughs. Primary runs record no
    /// timeline; a recorder is only enabled on the checkpoint-restored
    /// replay of a violating run's tail.
    pub timeline_limit: usize,
    /// Deliberate protocol bug injected into every **ring** run (testing
    /// the harness itself; see [`ProtocolMutation`]).
    pub mutation: Option<ProtocolMutation>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            accesses_per_core: 400,
            nodes: 4,
            hier: None,
            threads: 4,
            timeline_limit: 4096,
            mutation: None,
        }
    }
}

impl DiffOptions {
    /// The full-budget configuration: paper-scale node count and a longer
    /// trace. CI runs this behind `--ignored`.
    pub fn full() -> Self {
        Self {
            accesses_per_core: 2000,
            nodes: 8,
            threads: 8,
            ..Self::default()
        }
    }

    /// A hierarchical matrix over `local × groups` nodes (the node count
    /// is implied by the shape; every other knob keeps its default).
    pub fn hier(local: usize, groups: usize) -> Self {
        Self {
            nodes: local * groups,
            hier: Some((local, groups)),
            ..Self::default()
        }
    }
}

/// One discrepancy found by the harness.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which configuration (profile/algorithm/backend/width) diverged.
    pub context: String,
    /// What differed, with the offending values. When the oracle caught a
    /// protocol violation this embeds the first divergent transaction's
    /// rendered Timeline.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.context, self.detail)
    }
}

/// The result of one [`run_differential`] call.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Profile name the trace was recorded from.
    pub profile: String,
    /// Stream seed.
    pub seed: u64,
    /// Ring configurations executed (algorithms × backends × widths).
    pub ring_runs: usize,
    /// Whether the recorded trace contained no stores.
    pub read_only: bool,
    /// Everything that diverged; empty means the matrix agreed.
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    /// True when no configuration diverged and no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// A human-readable report; one block per divergence, first (i.e.
    /// most useful for minimization) first.
    pub fn render(&self) -> String {
        let mut out = format!(
            "differential {} (seed {}): {} ring runs + directory: ",
            self.profile, self.seed, self.ring_runs
        );
        if self.is_clean() {
            out.push_str("clean\n");
            return out;
        }
        out.push_str(&format!("{} divergence(s)\n", self.divergences.len()));
        for d in &self.divergences {
            out.push_str(&format!("\n{d}\n"));
        }
        out
    }
}

/// A canonical `(line, cmp, core, state)` snapshot.
type Snapshot = Vec<(LineAddr, usize, usize, CoherState)>;

/// Everything comparable from one ring run.
struct RingOutcome {
    stats: RunStats,
    snapshot: Snapshot,
    violations: Vec<Violation>,
    /// Rendered Timeline of the first violating transaction, if any.
    violation_walkthrough: Option<String>,
    coherence: Result<(), String>,
}

pub(crate) fn machine_for(
    trace: &Trace,
    nodes: usize,
    hier: Option<(usize, usize)>,
) -> Result<MachineConfig, String> {
    let cores = trace.cores();
    if nodes == 0 || !cores.is_multiple_of(nodes) {
        return Err(format!(
            "trace cores ({cores}) must be a multiple of {nodes} nodes"
        ));
    }
    let mut machine = MachineConfig {
        nodes,
        ..MachineConfig::isca2006(cores / nodes)
    };
    if let Some((local, groups)) = hier {
        if local * groups != nodes {
            return Err(format!(
                "hier shape {local}x{groups} does not cover {nodes} nodes"
            ));
        }
        machine.ring.hier = Some(flexsnoop::default_hier(local, groups));
    }
    Ok(machine)
}

pub(crate) fn boxed_streams(trace: &Trace) -> Vec<Box<dyn AccessStream + Send>> {
    VecStream::from_trace(trace)
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
        .collect()
}

fn build_ring_sim(
    trace: &Trace,
    alg: Algorithm,
    kind: QueueKind,
    opts: &DiffOptions,
) -> Result<Simulator, String> {
    let machine = machine_for(trace, opts.nodes, opts.hier)?;
    let predictor = alg.default_predictor();
    let energy = energy_model_for(&predictor);
    let mut sim = Simulator::new(
        machine,
        alg,
        predictor,
        energy,
        boxed_streams(trace),
        opts.accesses_per_core,
    )?;
    sim.use_event_queue(kind);
    sim.enable_invariant_checks();
    if let Some(m) = opts.mutation {
        sim.inject_mutation(m);
    }
    Ok(sim)
}

/// Cycles before the first violation the rewind replay backs up to —
/// generous enough to cover a lossless transaction's whole lifetime
/// (ring round trip plus a memory access), so the walkthrough captures
/// the divergent transaction from issue to retirement.
const REWIND_WINDOW: u64 = 16_384;

/// Time-travels a violating run: replays it to just before the first
/// violation, checkpoints there, restores the checkpoint into a fresh
/// simulator with the timeline recorder on, and steps the tail through
/// the violation. Determinism makes the replay exact, so the rendered
/// walkthrough is the one the original run would have recorded — without
/// every clean run paying for a recorder.
fn rewind_walkthrough(
    trace: &Trace,
    alg: Algorithm,
    kind: QueueKind,
    opts: &DiffOptions,
    v: &Violation,
) -> Option<String> {
    let rewind_to = Cycle::new(v.at.as_u64().saturating_sub(REWIND_WINDOW));
    let mut donor = build_ring_sim(trace, alg, kind, opts).ok()?;
    donor.run_until(Some(rewind_to));
    let checkpoint = donor.save_snapshot();
    let mut replay = build_ring_sim(trace, alg, kind, opts).ok()?;
    replay.enable_timeline(opts.timeline_limit);
    replay.restore_snapshot(&checkpoint).ok()?;
    // Step only the tail: everything up to and including the violation
    // cycle (run_until stops before popping events at the stop cycle).
    replay.run_until(Some(Cycle::new(v.at.as_u64() + 1)));
    Some(format!(
        "first divergent transaction (rewound to cycle {rewind_to} via checkpoint, \
         violation at cycle {}):\n{}",
        v.at,
        replay.timeline().render(v.txn)
    ))
}

fn run_ring(
    trace: &Trace,
    alg: Algorithm,
    kind: QueueKind,
    opts: &DiffOptions,
) -> Result<RingOutcome, String> {
    let mut sim = build_ring_sim(trace, alg, kind, opts)?;
    let stats = sim.run();
    let violations = sim.violations().to_vec();
    let violation_walkthrough = violations
        .first()
        .and_then(|v| rewind_walkthrough(trace, alg, kind, opts, v));
    Ok(RingOutcome {
        stats,
        snapshot: sim.state_snapshot(),
        violations,
        violation_walkthrough,
        coherence: sim.validate_coherence(),
    })
}

/// Lines the trace ever stores to.
pub(crate) fn written_lines(trace: &Trace) -> BTreeSet<LineAddr> {
    (0..trace.cores())
        .flat_map(|c| trace.core(c).iter().filter(|a| a.write).map(|a| a.line))
        .collect()
}

/// Per-core L2 residency: which lines each `(cmp, core)` holds, states
/// ignored.
fn residency(snapshot: &Snapshot) -> BTreeMap<(usize, usize), BTreeSet<LineAddr>> {
    let mut out: BTreeMap<(usize, usize), BTreeSet<LineAddr>> = BTreeMap::new();
    for &(line, cmp, core, _) in snapshot {
        out.entry((cmp, core)).or_default().insert(line);
    }
    out
}

fn dirty_lines(snapshot: &Snapshot) -> BTreeSet<LineAddr> {
    snapshot
        .iter()
        .filter(|(_, _, _, st)| st.is_dirty())
        .map(|&(line, _, _, _)| line)
        .collect()
}

/// Checks that hold within any single ring run, whatever the algorithm.
fn check_single_run(
    ctx: &str,
    out: &RingOutcome,
    written: &BTreeSet<LineAddr>,
    divergences: &mut Vec<Divergence>,
) {
    if let Some(v) = out.violations.first() {
        let mut detail = format!(
            "invariant oracle recorded {} violation(s); first: {v}",
            out.violations.len()
        );
        if let Some(walk) = &out.violation_walkthrough {
            detail.push('\n');
            detail.push_str(walk);
        }
        divergences.push(Divergence {
            context: ctx.to_string(),
            detail,
        });
    }
    if let Err(e) = &out.coherence {
        divergences.push(Divergence {
            context: ctx.to_string(),
            detail: format!("final coherence sweep failed: {e}"),
        });
    }
    let s = &out.stats;
    if s.read_txns != s.reads_cache_supplied + s.reads_from_memory {
        divergences.push(Divergence {
            context: ctx.to_string(),
            detail: format!(
                "read supply accounting broken: {} txns != {} cache + {} memory",
                s.read_txns, s.reads_cache_supplied, s.reads_from_memory
            ),
        });
    }
    let rogue: Vec<_> = dirty_lines(&out.snapshot)
        .difference(written)
        .copied()
        .collect();
    if !rogue.is_empty() {
        divergences.push(Divergence {
            context: ctx.to_string(),
            detail: format!("dirty lines never written by the trace: {rogue:?}"),
        });
    }
}

fn diff_outcomes(
    ctx: &str,
    what: &str,
    a: &RingOutcome,
    b: &RingOutcome,
    divergences: &mut Vec<Divergence>,
) {
    if a.stats != b.stats {
        divergences.push(Divergence {
            context: ctx.to_string(),
            detail: format!("RunStats differ across {what} (must be bit-for-bit identical)"),
        });
    }
    if a.snapshot != b.snapshot {
        let detail = first_snapshot_diff(&a.snapshot, &b.snapshot)
            .map(|d| format!("final line states differ across {what}: {d}"))
            .unwrap_or_else(|| format!("final line states differ across {what}"));
        divergences.push(Divergence {
            context: ctx.to_string(),
            detail,
        });
    }
}

/// The first `(line, cmp, core, state)` entry present in only one of two
/// snapshots — the minimized witness for a state divergence. Snapshots
/// are already canonically sorted, so a two-pointer walk finds it.
fn first_snapshot_diff(a: &Snapshot, b: &Snapshot) -> Option<String> {
    let render = |side: &str, (line, cmp, core, st): (LineAddr, usize, usize, CoherState)| {
        format!("only in {side}: {st}@cmp{cmp}/core{core} for {line}")
    };
    let key =
        |(line, cmp, core, st): (LineAddr, usize, usize, CoherState)| (line, cmp, core, st as u8);
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match key(a[i]).cmp(&key(b[j])) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => return Some(render("first", a[i])),
            std::cmp::Ordering::Greater => return Some(render("second", b[j])),
        }
    }
    if i < a.len() {
        Some(render("first", a[i]))
    } else {
        b.get(j).map(|&e| render("second", e))
    }
}

/// Runs the full differential matrix for one workload profile.
///
/// The same recorded trace drives every ring configuration *and* the
/// directory baseline on identical hardware, the comparison at the heart
/// of `examples/ring_vs_directory.rs`:
///
/// ```
/// use flexsnoop_checker::{run_differential, DiffOptions};
/// use flexsnoop_workload::profiles;
///
/// # fn main() -> Result<(), String> {
/// let opts = DiffOptions {
///     accesses_per_core: 60,
///     threads: 1,
///     ..DiffOptions::default()
/// };
/// let report = run_differential(&profiles::specjbb(), 77, &opts)?;
/// // 4 Table 3 algorithms × 2 queue backends × 2 executor widths, all
/// // bit-identical, invariant-clean, and consistent with the directory.
/// assert_eq!(report.ring_runs, 16);
/// assert!(report.is_clean(), "{}", report.render());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns a message if a simulator rejects the configuration (the
/// comparison itself never errors — discrepancies land in the report).
pub fn run_differential(
    profile: &WorkloadProfile,
    seed: u64,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let mut streams = profile.streams(seed);
    let trace = Trace::record(&mut streams, opts.accesses_per_core);
    let read_only = (0..trace.cores()).all(|c| trace.core(c).iter().all(|a| !a.write));
    let written = written_lines(&trace);

    let configs: Vec<(Algorithm, QueueKind)> = TABLE3_ALGORITHMS
        .iter()
        .flat_map(|&alg| [(alg, QueueKind::Heap), (alg, QueueKind::Bucketed)])
        .collect();
    let make_tasks = || -> Vec<_> {
        configs
            .iter()
            .map(|&(alg, kind)| {
                let trace = &trace;
                move || run_ring(trace, alg, kind, opts)
            })
            .collect()
    };
    // The same task list through a 1-worker and an N-worker pool: the
    // executor must not affect any result.
    let narrow = Executor::new(1).run(make_tasks());
    let wide = Executor::new(opts.threads.max(2)).run(make_tasks());
    let narrow: Vec<RingOutcome> = narrow.into_iter().collect::<Result<_, _>>()?;
    let wide: Vec<RingOutcome> = wide.into_iter().collect::<Result<_, _>>()?;

    let mut divergences = Vec::new();
    let ctx_of = |alg: Algorithm, kind: QueueKind| format!("{}/{alg}/{kind:?}", profile.name);

    for (i, &(alg, kind)) in configs.iter().enumerate() {
        let ctx = ctx_of(alg, kind);
        check_single_run(&ctx, &narrow[i], &written, &mut divergences);
        diff_outcomes(
            &ctx,
            "executor widths 1 vs N",
            &narrow[i],
            &wide[i],
            &mut divergences,
        );
    }
    // Heap vs Bucketed per algorithm (configs interleave the two kinds).
    for pair in configs.chunks(2).zip(narrow.chunks(2)) {
        let ((alg, _), outs) = (pair.0[0], pair.1);
        let ctx = format!("{}/{alg}", profile.name);
        diff_outcomes(
            &ctx,
            "queue backends Heap vs Bucketed",
            &outs[0],
            &outs[1],
            &mut divergences,
        );
    }

    // The directory baseline over the identical trace. The directory
    // protocol never touches the ring, so the hierarchical shape changes
    // nothing on this side — which is exactly the point: the oracle is
    // topology-blind.
    let machine = machine_for(&trace, opts.nodes, opts.hier)?;
    let mut dsim = DirSimulator::new(machine, boxed_streams(&trace), opts.accesses_per_core)?;
    dsim.enable_invariant_checks();
    let dstats = dsim.run();
    let dctx = format!("{}/Directory", profile.name);
    if let Some(v) = dsim.first_violation() {
        divergences.push(Divergence {
            context: dctx.clone(),
            detail: format!(
                "invariant oracle recorded {} violation(s); first: {v}",
                dsim.violations().len()
            ),
        });
    }
    if let Err(e) = dsim.validate_coherence() {
        divergences.push(Divergence {
            context: dctx.clone(),
            detail: format!("final coherence sweep failed: {e}"),
        });
    }
    if dstats.read_txns != dstats.reads_two_hop + dstats.reads_three_hop {
        divergences.push(Divergence {
            context: dctx.clone(),
            detail: format!(
                "read hop accounting broken: {} txns != {} two-hop + {} three-hop",
                dstats.read_txns, dstats.reads_two_hop, dstats.reads_three_hop
            ),
        });
    }
    let dsnapshot = dsim.state_snapshot();
    let rogue: Vec<_> = dirty_lines(&dsnapshot)
        .difference(&written)
        .copied()
        .collect();
    if !rogue.is_empty() {
        divergences.push(Divergence {
            context: dctx.clone(),
            detail: format!("dirty lines never written by the trace: {rogue:?}"),
        });
    }

    // For read-only traces each core's fill sequence depends only on its
    // own stream, so final L2 residency must agree across every
    // algorithm and both protocols.
    if read_only {
        let reference = residency(&narrow[0].snapshot);
        for (i, &(alg, kind)) in configs.iter().enumerate().skip(1) {
            if residency(&narrow[i].snapshot) != reference {
                divergences.push(Divergence {
                    context: ctx_of(alg, kind),
                    detail: "read-only L2 residency differs from the first ring run".to_string(),
                });
            }
        }
        if residency(&dsnapshot) != reference {
            divergences.push(Divergence {
                context: dctx,
                detail: "read-only L2 residency differs between directory and ring".to_string(),
            });
        }
    }

    Ok(DiffReport {
        profile: profile.name.clone(),
        seed,
        ring_runs: narrow.len() + wide.len(),
        read_only,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsnoop_workload::profiles;

    fn tiny() -> DiffOptions {
        DiffOptions {
            accesses_per_core: 60,
            threads: 2,
            ..DiffOptions::default()
        }
    }

    #[test]
    fn specweb_matrix_is_clean() {
        let report = run_differential(&profiles::specweb(), 11, &tiny()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.ring_runs, 16);
        assert!(!report.read_only);
    }

    #[test]
    fn read_only_microbench_checks_residency() {
        let profile = profiles::uniform_microbench(8, 60);
        let report = run_differential(&profile, 3, &tiny()).unwrap();
        assert!(report.read_only);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn skipped_supplier_downgrade_is_pinpointed() {
        let opts = DiffOptions {
            mutation: Some(ProtocolMutation::SkipSupplierDowngrade),
            ..tiny()
        };
        let report = run_differential(&profiles::specweb(), 11, &opts).unwrap();
        assert!(!report.is_clean(), "mutation must be detected");
        let rendered = report.render();
        assert!(
            rendered.contains("first divergent transaction"),
            "report must pinpoint the transaction:\n{rendered}"
        );
        assert!(rendered.contains("txn"), "{rendered}");
    }

    #[test]
    fn skipped_write_invalidation_is_detected() {
        let opts = DiffOptions {
            mutation: Some(ProtocolMutation::SkipWriteInvalidation),
            ..tiny()
        };
        let report = run_differential(&profiles::specweb(), 11, &opts).unwrap();
        assert!(!report.is_clean(), "mutation must be detected");
    }

    #[test]
    fn bad_node_count_is_rejected() {
        let opts = DiffOptions { nodes: 3, ..tiny() };
        let err = run_differential(&profiles::specweb(), 1, &opts).unwrap_err();
        assert!(err.contains("multiple"), "{err}");
    }

    #[test]
    fn mismatched_hier_shape_is_rejected() {
        let opts = DiffOptions {
            hier: Some((3, 3)),
            ..tiny()
        };
        let err = run_differential(&profiles::specweb(), 1, &opts).unwrap_err();
        assert!(err.contains("shape"), "{err}");
    }

    #[test]
    fn hier_shapes_match_the_directory_baseline() {
        // The ISSUE's hierarchical net: 2×4, 4×4 and 8×8, each through
        // the full Table 3 × backend × width matrix plus the directory
        // oracle over the identical trace.
        for (local, groups, accesses) in [(2usize, 4usize, 60u64), (4, 4, 40), (8, 8, 25)] {
            let profile = profiles::specweb().with_cores(local * groups);
            let opts = DiffOptions {
                accesses_per_core: accesses,
                threads: 2,
                ..DiffOptions::hier(local, groups)
            };
            let report = run_differential(&profile, 11, &opts).unwrap();
            assert!(report.is_clean(), "{local}x{groups}:\n{}", report.render());
            assert_eq!(report.ring_runs, 16);
        }
    }

    #[test]
    fn hier_divergence_is_pinpointed_via_rewind() {
        // The checkpoint time-travel walkthrough must work unchanged on
        // a hierarchical topology: inject a protocol bug and demand the
        // first divergent transaction's timeline in the report.
        let opts = DiffOptions {
            accesses_per_core: 60,
            threads: 2,
            mutation: Some(ProtocolMutation::SkipSupplierDowngrade),
            ..DiffOptions::hier(2, 4)
        };
        let report = run_differential(&profiles::specweb(), 11, &opts).unwrap();
        assert!(!report.is_clean(), "mutation must be detected on hier");
        let rendered = report.render();
        assert!(
            rendered.contains("first divergent transaction"),
            "report must pinpoint the transaction:\n{rendered}"
        );
    }
}
