//! Determinism cross-check for the sweep service's results cache.
//!
//! The cache's soundness rests on one claim: the bytes it stores for a
//! [`JobKey`](flexsnoop_serve::JobKey) are a pure function of the key.
//! This module attacks the claim from three directions and fails loudly
//! on the first divergence:
//!
//! 1. **Executor width** — the same sweep run through services of
//!    different worker counts must produce byte-identical results (the
//!    scheduler must not leak concurrency into the simulation).
//! 2. **Cache vs. recomputation** — a warm resubmission must return the
//!    stored bytes with zero new executions, and those bytes must equal
//!    a direct, service-free recomputation.
//! 3. **Queue backend** — the direct recomputation is repeated under
//!    both event-queue backends ([`QueueKind::Heap`] and
//!    [`QueueKind::Bucketed`]); the configuration fingerprint excludes
//!    the backend, so the cache is only sound if results do not depend
//!    on it.
//!
//! `flexsnoop serve --self-check` runs [`self_check`]; CI runs it in the
//! `serve` job.

use std::sync::Arc;

use flexsnoop_engine::QueueKind;
use flexsnoop_serve::{JobOutput, ResultsCache, ServiceOptions, SweepRequest, SweepService};

/// Sealed result bytes, one entry per job in submission order.
type SealedResults = Vec<Arc<Vec<u8>>>;

/// Runs one sweep through a fresh service and returns each job's sealed
/// result bytes in submission order.
///
/// # Errors
///
/// Propagates submission failures and job errors.
fn run_through_service(
    request: &SweepRequest,
    threads: usize,
) -> Result<(SweepService, SealedResults), String> {
    let service = SweepService::new(
        ServiceOptions {
            threads,
            slice_cycles: 10_000,
        },
        ResultsCache::in_memory(),
    );
    let bytes = collect_bytes(&service, request)?;
    Ok((service, bytes))
}

fn collect_bytes(service: &SweepService, request: &SweepRequest) -> Result<SealedResults, String> {
    service
        .submit(request)?
        .collect()
        .results
        .into_iter()
        .map(|r| r.map(|job| job.bytes))
        .collect()
}

/// Recomputes one job without the service, under the given queue
/// backend, and returns the sealed bytes it would cache.
///
/// # Errors
///
/// Propagates build errors.
fn recompute(spec: &flexsnoop_serve::JobSpec, backend: QueueKind) -> Result<Vec<u8>, String> {
    let mut sim = spec.build()?;
    sim.use_event_queue(backend);
    sim.run_until(None);
    let stats = sim.finalize();
    let probe = sim.probe_report();
    sim.validate_coherence()?;
    Ok(JobOutput { stats, probe }.encode())
}

/// Cross-checks `request` across executor widths, a warm cache pass,
/// and direct recomputation under both queue backends. Returns a
/// human-readable summary on success.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn check_request(request: &SweepRequest, widths: &[usize]) -> Result<String, String> {
    let specs = request.expand();
    if specs.is_empty() {
        return Err("self-check request expands to zero jobs".to_string());
    }
    let (first_width, rest) = widths.split_first().ok_or("need at least one width")?;
    let (service, baseline) = run_through_service(request, *first_width)?;
    for &width in rest {
        let (_, other) = run_through_service(request, width)?;
        for (i, (a, b)) in baseline.iter().zip(&other).enumerate() {
            if a != b {
                return Err(format!(
                    "job {i}: results differ between {first_width}-wide and {width}-wide executors"
                ));
            }
        }
    }
    // Warm pass: zero new executions, identical bytes.
    let executed_before = service.stats().executed;
    let warm = collect_bytes(&service, request)?;
    let stats = service.stats();
    if stats.executed != executed_before {
        return Err(format!(
            "warm resubmission re-ran {} jobs instead of hitting the cache",
            stats.executed - executed_before
        ));
    }
    for (i, (a, b)) in baseline.iter().zip(&warm).enumerate() {
        if a != b {
            return Err(format!("job {i}: cached bytes differ from the cold run"));
        }
    }
    // Cache vs. direct recomputation under both backends.
    for (i, (spec, cached)) in specs.iter().zip(&baseline).enumerate() {
        for backend in [QueueKind::Heap, QueueKind::Bucketed] {
            let direct = recompute(spec, backend)?;
            if direct != **cached {
                return Err(format!(
                    "job {i} ({} × {} seed {}): cached result differs from direct \
                     recomputation under {backend:?}",
                    spec.workload, spec.algorithm, spec.seed
                ));
            }
        }
    }
    Ok(format!(
        "cache determinism: {} jobs × {} widths, warm pass {} hits / 0 re-runs, \
         direct recomputation matched under Heap and Bucketed backends\n",
        specs.len(),
        widths.len(),
        stats.cache.hits,
    ))
}

/// The standing self-check `flexsnoop serve --self-check` runs: a small
/// paper sweep (two workloads × two Table 3 algorithms) crossed over
/// 1-wide and `threads`-wide executors.
///
/// # Errors
///
/// Returns the first divergence found.
pub fn self_check(threads: usize) -> Result<String, String> {
    let request = SweepRequest {
        workloads: vec!["specjbb".to_string(), "specweb".to_string()],
        algorithms: vec!["superset-agg".to_string(), "exact".to_string()],
        seeds: vec![20_060_617],
        accesses: 120,
        ..SweepRequest::default()
    };
    let wide = if threads == 0 { 4 } else { threads.max(2) };
    check_request(&request, &[1, wide])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_passes() {
        let summary = self_check(2).unwrap();
        assert!(summary.contains("0 re-runs"), "{summary}");
    }

    #[test]
    fn check_rejects_empty_requests() {
        let req = SweepRequest::default(); // no workloads/algorithms
        assert!(check_request(&req, &[1]).is_err());
    }
}
