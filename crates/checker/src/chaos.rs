//! Seeded chaos campaign: randomized ring-fault schedules × Table 3.
//!
//! The fault model ([`FaultPlan`]) makes the embedded ring drop,
//! duplicate and delay messages and stall nodes; the recovery layer in
//! [`flexsnoop::Simulator`] answers with sequence-number deduplication,
//! requester timeouts, bounded-backoff retries, and per-line degradation
//! to Lazy forwarding. This module is the harness that earns trust in
//! that machinery: [`run_chaos`] sweeps many randomized schedules across
//! every Table 3 algorithm and demands that **every** run still
//!
//! * retires every transaction (nothing left in flight, no stranded
//!   cores),
//! * records zero invariant-oracle violations and passes the final
//!   Figure 2(b) coherence sweep,
//! * keeps the (fault-relaxed) supply accounting consistent — a retried
//!   read may be supplied more than once, never less than once,
//! * dirties only lines the trace actually wrote.
//!
//! The identical trace also drives the fault-free directory-protocol
//! baseline once per campaign ([`ChaosReport::baseline_reasons`]): the
//! independent reference implementation must pass the same sound
//! invariants the faulted ring runs are held to.
//!
//! A failing `(schedule, algorithm)` pair is **shrunk** to a minimal
//! reproducer: the fault budget is binary-searched down to the smallest
//! failing prefix (randomized faults are consumed in draw order, so a
//! smaller budget replays a prefix of the same schedule), then whole
//! fault kinds are removed while the failure persists. The report's
//! reproducer line (`seed=… budget=…`) plugs straight into
//! `flexsnoop chaos --schedule <seed>`.
//!
//! The campaign's self-test is [`ChaosOptions::recovery`]` = false`
//! (CLI: `--no-retry`): with retries disabled, lossy schedules really do
//! strand transactions, proving the harness can see the failures the
//! recovery layer prevents.

use flexsnoop::{
    energy_model_for, Algorithm, FaultPlan, FaultStats, RunStats, Simulator, TimeoutPolicy,
    Violation,
};
use flexsnoop_directory::DirSimulator;
use flexsnoop_engine::{Cycle, Executor, QueueKind, SplitMix64};
use flexsnoop_mem::LineAddr;
use flexsnoop_scenario::{chaos_expectations, RunOutcome};
use flexsnoop_workload::{Trace, WorkloadProfile};

use crate::{boxed_streams, machine_for, written_lines, TABLE3_ALGORITHMS};
use std::collections::BTreeSet;
use std::time::Instant;

/// Knobs for one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Randomized fault schedules to draw (each runs every Table 3
    /// algorithm).
    pub schedules: u64,
    /// Seed for the schedule-seed stream (campaigns are reproducible).
    pub base_seed: u64,
    /// Accesses recorded (and replayed) per core.
    pub accesses_per_core: u64,
    /// Machine nodes; must divide the profile's core count.
    pub nodes: usize,
    /// Hierarchical shape `(local, groups)`; `None` runs the flat ring.
    /// When set, `local × groups` must equal [`ChaosOptions::nodes`],
    /// and the drawn plans' bridge-link drop schedules become live
    /// (flat rings have no bridge links and never consult them).
    pub hier: Option<(usize, usize)>,
    /// Worker threads for the campaign sweep.
    pub threads: usize,
    /// Timeout/retry recovery on (the default). `false` is the harness
    /// self-test: faults must then visibly strand transactions.
    pub recovery: bool,
    /// Shrink every failure to a minimal reproducer.
    pub shrink: bool,
    /// Resume the shrinker's budget-bisection probes from a mid-run
    /// checkpoint of the failing run instead of replaying each probe
    /// from cycle zero. Budgets at or above the faults already injected
    /// at the checkpoint replay bit-identically (faults are consumed in
    /// draw order), so the minimized plan is unchanged — only the wall
    /// time drops. The winning prefix is always re-verified from
    /// scratch before it is reported.
    pub snapshot_bisect: bool,
    /// For the first N schedules, re-run each algorithm on the second
    /// queue backend and compare bit-for-bit (determinism under faults).
    pub determinism_probes: u64,
    /// Run exactly this schedule seed instead of drawing `schedules`
    /// seeds — the reproducer mode (`flexsnoop chaos --schedule SEED`).
    pub schedule: Option<u64>,
    /// Override the drawn plans' fault budget (replays a shrunk
    /// reproducer's prefix).
    pub budget: Option<u64>,
    /// Strip every ring fault from the drawn plans and guarantee torus
    /// drops instead: the campaign then exercises only the data-network
    /// fault path (memory legs, cache supplies) and its recovery.
    pub torus_only: bool,
    /// Override the machine's requester-timeout policy (`None` keeps the
    /// config default, [`TimeoutPolicy::Adaptive`]). `Static` replays the
    /// pre-EWMA fixed-slack timeouts for A/B comparison.
    pub timeout_policy: Option<TimeoutPolicy>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            schedules: 40,
            base_seed: 0x00C0FFEE,
            accesses_per_core: 150,
            nodes: 4,
            hier: None,
            threads: 4,
            recovery: true,
            shrink: true,
            snapshot_bisect: true,
            determinism_probes: 2,
            schedule: None,
            budget: None,
            torus_only: false,
            timeout_policy: None,
        }
    }
}

impl ChaosOptions {
    /// The full acceptance campaign (≥1000 schedules × 4 algorithms).
    /// CI runs this behind `--ignored`.
    pub fn full() -> Self {
        Self {
            schedules: 1000,
            threads: 8,
            ..Self::default()
        }
    }
}

/// Everything observable from one faulted run.
#[derive(Debug, Clone)]
struct ChaosOutcome {
    stats: RunStats,
    fault_stats: FaultStats,
    violations: Vec<Violation>,
    coherence: Result<(), String>,
    in_flight: usize,
    snapshot: Vec<(LineAddr, usize, usize, flexsnoop_mem::CoherState)>,
}

/// One failing `(schedule, algorithm)` pair.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The schedule seed ([`FaultPlan::random`] input).
    pub seed: u64,
    /// The algorithm that failed under it.
    pub algorithm: Algorithm,
    /// The full plan as drawn.
    pub plan: FaultPlan,
    /// Why the run counts as failed (one line per broken property).
    pub reasons: Vec<String>,
    /// The shrunk plan (fewest faults still failing), when shrinking ran.
    pub minimized: Option<FaultPlan>,
    /// How the shrink ran: wall time plus how many probes resumed from
    /// the mid-run checkpoint versus replayed from cycle zero.
    pub shrink_note: Option<String>,
}

/// Campaign-wide fault and recovery totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosTotals {
    /// Messages dropped by fault plans.
    pub drops: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Torus data messages dropped by fault plans.
    pub torus_drops: u64,
    /// Hierarchical bridge-link messages dropped by fault plans.
    pub bridge_drops: u64,
    /// Ring hops refused by partition windows.
    pub partition_blocked: u64,
    /// Injected duplicates suppressed by sequence numbers.
    pub duplicates_suppressed: u64,
    /// Deliveries discarded as belonging to superseded attempts.
    pub stale_deliveries: u64,
    /// Recovery timeouts fired.
    pub timeouts: u64,
    /// Retries issued.
    pub retries: u64,
    /// Retries proven unnecessary by a late stale reply.
    pub spurious_retries: u64,
    /// Round-trip samples fed to the adaptive timeout estimators.
    pub rtt_samples: u64,
    /// Lines that entered degraded (Lazy-forwarding) mode.
    pub degraded_entries: u64,
    /// Degraded lines re-armed after a clean probation window.
    pub probation_exits: u64,
    /// Probation counters reset by a fresh fault burst.
    pub probation_resets: u64,
}

impl ChaosTotals {
    fn absorb(&mut self, s: &RunStats) {
        let r = &s.robustness;
        self.drops += r.ring_drops;
        self.duplicates += r.ring_duplicates;
        self.delays += r.ring_delays;
        self.torus_drops += r.torus_drops;
        self.bridge_drops += r.bridge_drops;
        self.partition_blocked += r.partition_blocked;
        self.duplicates_suppressed += r.duplicates_suppressed;
        self.stale_deliveries += r.stale_deliveries;
        self.timeouts += r.timeouts;
        self.retries += r.retries;
        self.spurious_retries += r.spurious_retries;
        self.rtt_samples += r.rtt_samples;
        self.degraded_entries += r.degraded_entries;
        self.probation_exits += r.probation_exits;
        self.probation_resets += r.probation_resets;
    }
}

/// The enabled fault kinds, in report/baseline order. `bridge` (drops on
/// the global-ring links of hierarchical topologies) was appended last,
/// so baselines written before it existed still parse.
pub const FAULT_KINDS: [&str; 7] = [
    "drop",
    "duplicate",
    "delay",
    "stall",
    "torus-drop",
    "partition",
    "bridge",
];

/// Per-kind fault coverage: how many plans armed each fault kind and how
/// many fault events each kind actually injected across the campaign.
/// The coverage ratchet fails CI when a kind a baseline proves reachable
/// silently stops injecting (`[ChaosCoverage::regressions]`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCoverage {
    /// `[plans that armed the kind, events the kind injected]`, indexed
    /// like [`FAULT_KINDS`].
    pub kinds: [[u64; 2]; 7],
}

impl ChaosCoverage {
    fn absorb_plan(&mut self, plan: &FaultPlan, hier: bool) {
        let ring = plan.budget > 0;
        let armed = [
            ring && plan.drop > 0.0,
            ring && plan.duplicate > 0.0,
            ring && plan.delay > 0.0,
            !plan.stalls.is_empty(),
            plan.torus_faults(),
            !plan.partitions.is_empty(),
            // A flat machine has no bridge links: the schedule is drawn
            // but can never fire, so it does not count as armed.
            hier && plan.bridge_faults(),
        ];
        for (slot, on) in self.kinds.iter_mut().zip(armed) {
            slot[0] += on as u64;
        }
    }

    fn absorb_events(&mut self, f: &FaultStats) {
        let injected = [
            f.drops,
            f.duplicates,
            f.delays,
            f.stall_hits,
            f.torus_drops,
            f.partition_blocked,
            f.bridge_drops,
        ];
        for (slot, n) in self.kinds.iter_mut().zip(injected) {
            slot[1] += n;
        }
    }

    /// Events the named kind injected; panics on an unknown kind.
    pub fn injected(&self, kind: &str) -> u64 {
        let idx = FAULT_KINDS.iter().position(|&k| k == kind).expect("kind");
        self.kinds[idx][1]
    }

    /// Kinds that at least one plan armed but that injected zero events —
    /// the campaign silently lost coverage of them.
    pub fn starved_kinds(&self) -> Vec<&'static str> {
        FAULT_KINDS
            .iter()
            .zip(self.kinds)
            .filter(|&(_, [armed, injected])| armed > 0 && injected == 0)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Serializes the per-kind injected counts as the checked-in
    /// baseline format (`<kind> <count>` per line).
    pub fn render_baseline(&self) -> String {
        FAULT_KINDS
            .iter()
            .zip(self.kinds)
            .map(|(k, [_, injected])| format!("{k} {injected}\n"))
            .collect()
    }

    /// Parses a baseline produced by [`ChaosCoverage::render_baseline`]
    /// (unknown kinds and blank lines are ignored, so baselines survive
    /// kind additions).
    ///
    /// # Errors
    ///
    /// Returns a message for a line that is not `<kind> <count>`.
    pub fn parse_baseline(text: &str) -> Result<ChaosCoverage, String> {
        let mut cov = ChaosCoverage::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.split_whitespace();
            let (Some(kind), Some(count)) = (parts.next(), parts.next()) else {
                return Err(format!("malformed coverage baseline line: `{line}`"));
            };
            let count: u64 = count
                .parse()
                .map_err(|e| format!("bad count in baseline line `{line}`: {e}"))?;
            if let Some(idx) = FAULT_KINDS.iter().position(|&k| k == kind) {
                cov.kinds[idx][1] = count;
            }
        }
        Ok(cov)
    }

    /// The ratchet: every kind the baseline proves reachable (nonzero
    /// injected count) must still inject at least one event. Returns one
    /// line per regressed kind, empty when coverage held.
    pub fn regressions(&self, baseline: &ChaosCoverage) -> Vec<String> {
        FAULT_KINDS
            .iter()
            .zip(self.kinds.iter().zip(baseline.kinds))
            .filter(|&(_, (now, base))| base[1] > 0 && now[1] == 0)
            .map(|(k, (_, base))| {
                format!(
                    "fault kind `{k}` injected 0 events (baseline proved {})",
                    base[1]
                )
            })
            .collect()
    }
}

/// The result of one [`run_chaos`] campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Profile the trace was recorded from.
    pub profile: String,
    /// Campaign base seed: seeds the recorded trace and (unless a
    /// schedule was pinned) the schedule-seed stream. Reproducer
    /// commands must pin it, or they replay a different trace.
    pub base_seed: u64,
    /// Ring nodes each run simulated.
    pub nodes: usize,
    /// Hierarchical shape the campaign ran on (`None` = flat ring).
    pub hier: Option<(usize, usize)>,
    /// Accesses recorded per core.
    pub accesses_per_core: u64,
    /// Schedules drawn.
    pub schedules: u64,
    /// Total `(schedule, algorithm)` runs executed.
    pub runs: u64,
    /// Whether recovery was enabled.
    pub recovery: bool,
    /// Campaign-wide fault/recovery totals.
    pub totals: ChaosTotals,
    /// Per-kind fault coverage (plans armed / events injected), the
    /// quantity the CI coverage ratchet diffs against its baseline.
    pub coverage: ChaosCoverage,
    /// Determinism cross-checks performed (and passed, unless listed in
    /// `failures`).
    pub determinism_checks: u64,
    /// Problems found in the fault-free directory-protocol baseline run
    /// over the identical trace (empty when the reference implementation
    /// is clean). Exact ring-vs-directory state equality is only sound
    /// for read-only traces (DESIGN.md §7); under faults the shared
    /// ground truth is the sound-invariant set, checked per run against
    /// the same trace-derived written-line set this baseline must also
    /// respect.
    pub baseline_reasons: Vec<String>,
    /// Every failing pair, in schedule order.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// True when every run satisfied every property and the fault-free
    /// directory baseline was clean.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.baseline_reasons.is_empty()
    }

    /// Renders the campaign summary (the CI artifact body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Chaos campaign: {}\n\n\
             - schedules: {} (runs: {}, recovery: {})\n\
             - faults injected: {} drops, {} duplicates, {} delays, {} torus drops, \
             {} bridge drops, {} partition-blocked hops\n\
             - recovery activity: {} dup-suppressed, {} stale discarded, \
             {} timeouts, {} retries ({} spurious), {} rtt samples, {} degraded lines, \
             {} probation exits, {} probation resets\n\
             - determinism cross-checks: {}\n\
             - verdict: **{}**\n",
            self.profile,
            self.schedules,
            self.runs,
            if self.recovery { "on" } else { "off" },
            self.totals.drops,
            self.totals.duplicates,
            self.totals.delays,
            self.totals.torus_drops,
            self.totals.bridge_drops,
            self.totals.partition_blocked,
            self.totals.duplicates_suppressed,
            self.totals.stale_deliveries,
            self.totals.timeouts,
            self.totals.retries,
            self.totals.spurious_retries,
            self.totals.rtt_samples,
            self.totals.degraded_entries,
            self.totals.probation_exits,
            self.totals.probation_resets,
            self.determinism_checks,
            if self.is_clean() {
                "CLEAN".to_string()
            } else {
                format!(
                    "{} FAILURE(S)",
                    self.failures.len() + self.baseline_reasons.len()
                )
            }
        ));
        out.push_str(
            "\n## Fault coverage\n\n| kind | plans armed | events injected |\n|---|---|---|\n",
        );
        for (kind, [armed, injected]) in FAULT_KINDS.iter().zip(self.coverage.kinds) {
            out.push_str(&format!("| {kind} | {armed} | {injected} |\n"));
        }
        out.push('\n');
        if self.baseline_reasons.is_empty() {
            out.push_str("- directory baseline (fault-free): clean\n");
        } else {
            out.push_str("- directory baseline (fault-free): BROKEN\n");
            for r in &self.baseline_reasons {
                out.push_str(&format!("  - {r}\n"));
            }
        }
        for f in &self.failures {
            out.push_str(&format!(
                "\n## seed {} / {}\n\nplan: `{}`\n",
                f.seed,
                f.algorithm,
                f.plan.describe()
            ));
            for r in &f.reasons {
                out.push_str(&format!("- {r}\n"));
            }
            if let Some(min) = &f.minimized {
                // The budget prefix is replayable from the CLI; the
                // kind-eliminated probabilities are extra diagnosis (the
                // prefix already failed before elimination).
                out.push_str(&format!(
                    "\nminimal reproducer: `{}`\n(reproduce: `flexsnoop chaos --workload {} \
                     --seed {} --nodes {} --accesses {} --schedule {} --budget {}{}{}`)\n",
                    min.describe(),
                    self.profile,
                    self.base_seed,
                    self.nodes,
                    self.accesses_per_core,
                    min.seed,
                    min.budget,
                    match self.hier {
                        Some((l, g)) => format!(" --topology hier:{l}x{g}"),
                        None => String::new(),
                    },
                    if self.recovery { "" } else { " --no-retry" },
                ));
            }
            if let Some(note) = &f.shrink_note {
                out.push_str(&format!("({note})\n"));
            }
        }
        out
    }
}

/// Builds (without running) the simulator for one faulted run — shared
/// by the scratch runs and the shrinker's checkpoint-resumed probes.
fn build_sim(
    trace: &Trace,
    alg: Algorithm,
    plan: &FaultPlan,
    kind: QueueKind,
    opts: &ChaosOptions,
) -> Result<Simulator, String> {
    let mut machine = machine_for(trace, opts.nodes, opts.hier)?;
    if let Some(policy) = opts.timeout_policy {
        machine.recovery.timeout_policy = policy;
    }
    let predictor = alg.default_predictor();
    let energy = energy_model_for(&predictor);
    let mut sim = Simulator::new(
        machine,
        alg,
        predictor,
        energy,
        boxed_streams(trace),
        opts.accesses_per_core,
    )?;
    sim.use_event_queue(kind);
    sim.enable_invariant_checks();
    sim.set_fault_plan(plan.clone());
    sim.set_recovery_enabled(opts.recovery);
    Ok(sim)
}

fn collect_outcome(sim: Simulator, stats: RunStats) -> ChaosOutcome {
    ChaosOutcome {
        stats,
        fault_stats: sim.fault_stats(),
        violations: sim.violations().to_vec(),
        coherence: sim.validate_coherence(),
        in_flight: sim.in_flight(),
        snapshot: sim.state_snapshot(),
    }
}

fn run_one(
    trace: &Trace,
    alg: Algorithm,
    plan: &FaultPlan,
    kind: QueueKind,
    opts: &ChaosOptions,
) -> Result<ChaosOutcome, String> {
    let mut sim = build_sim(trace, alg, plan, kind, opts)?;
    let stats = sim.run();
    Ok(collect_outcome(sim, stats))
}

/// The campaign's failure predicate: one line per broken property,
/// empty when the run survived the schedule. The properties themselves
/// live in the scenario crate ([`chaos_expectations`] evaluates the
/// historical set, in the historical report order — the same checks a
/// declarative scenario can mix with recovery expectations), so
/// reproducer verdicts are byte-identical across the port.
fn failure_reasons(out: &ChaosOutcome, written: &BTreeSet<LineAddr>) -> Vec<String> {
    // Under faults a retried read may be supplied twice (once per
    // surviving circulation), so the supply expectation relaxes to "at
    // least one supply per read" — but never fewer.
    let outcome = RunOutcome {
        stats: out.stats.clone(),
        violations: out.violations.clone(),
        coherence: out.coherence.clone(),
        in_flight: out.in_flight,
        // The chaos expectation set carries no degradation budget — a
        // schedule may legitimately leave lines degraded.
        degraded_lines: 0,
        dirty_lines: out
            .snapshot
            .iter()
            .filter(|(_, _, _, st)| st.is_dirty())
            .map(|&(line, _, _, _)| line)
            .collect(),
        written: written.clone(),
        last_disruption_end: 0,
    };
    chaos_expectations()
        .iter()
        .flat_map(|e| e.check(&outcome))
        .collect()
}

/// Draws the fault plan for one schedule seed, applying the campaign's
/// plan-level overrides (`torus_only`, pinned budget).
fn draw_plan(seed: u64, opts: &ChaosOptions, rings: usize) -> FaultPlan {
    let mut plan = FaultPlan::random(seed, opts.nodes, rings);
    if opts.torus_only {
        plan.drop = 0.0;
        plan.duplicate = 0.0;
        plan.delay = 0.0;
        plan.link_drops.clear();
        plan.stalls.clear();
        plan.bridge_drop = 0.0;
        if !plan.torus_faults() {
            // The seed drew a ring-only plan; give it a deterministic
            // torus schedule instead so every run exercises the path.
            plan.torus_drop = 0.03 + (seed % 10) as f64 * 0.01;
            plan.torus_budget = 2 + seed % 10;
        }
    }
    if let Some(budget) = opts.budget {
        // Mirror the shrinker's `with_budget` exactly (it also clamps the
        // torus budget), so `--budget` replays the very plan the shrinker
        // verified — not a look-alike with a longer torus drop schedule.
        plan = plan.with_budget(budget);
    }
    plan
}

/// A mid-run checkpoint of the failing full-budget run, taken at half
/// its execution time for budget bisection.
struct BisectCheckpoint {
    bytes: Vec<u8>,
    /// Smallest budget that may legally resume the checkpoint: the
    /// faults (ring and torus) already injected at the save point. A
    /// probe at or above this budget behaves identically to a scratch
    /// run up to the checkpoint, so resuming it is exact; below it the
    /// probe must replay from cycle zero.
    min_budget: u64,
}

/// Runs the failing plan to half of `exec_cycles` and checkpoints it.
fn bisect_checkpoint(
    trace: &Trace,
    alg: Algorithm,
    plan: &FaultPlan,
    opts: &ChaosOptions,
    exec_cycles: Cycle,
) -> Option<BisectCheckpoint> {
    let mut sim = build_sim(trace, alg, plan, QueueKind::Heap, opts).ok()?;
    sim.run_until(Some(Cycle::new(exec_cycles.as_u64() / 2)));
    let spent = sim.fault_stats();
    Some(BisectCheckpoint {
        bytes: sim.save_snapshot(),
        min_budget: spent.injected().max(spent.torus_drops).max(1),
    })
}

/// One budget probe resumed from the checkpoint instead of cycle zero.
/// `None` means the resume path was unavailable (restore refused the
/// plan); the caller falls back to a full run.
fn resumed_probe_fails(
    trace: &Trace,
    alg: Algorithm,
    plan: &FaultPlan,
    opts: &ChaosOptions,
    checkpoint: &BisectCheckpoint,
    written: &BTreeSet<LineAddr>,
) -> Option<bool> {
    let mut sim = build_sim(trace, alg, plan, QueueKind::Heap, opts).ok()?;
    sim.restore_snapshot(&checkpoint.bytes).ok()?;
    sim.run_until(None);
    let stats = sim.finalize();
    let out = collect_outcome(sim, stats);
    Some(!failure_reasons(&out, written).is_empty())
}

/// Shrinks a failing plan to a minimal reproducer: binary-search the
/// smallest failing budget prefix, then drop whole fault kinds while the
/// failure persists (fewest distinct faults, then fewest fault kinds).
/// Returns the minimized plan plus a note recording the shrink wall time
/// and how many probes resumed from the mid-run checkpoint.
fn shrink_plan(
    trace: &Trace,
    alg: Algorithm,
    plan: &FaultPlan,
    opts: &ChaosOptions,
    written: &BTreeSet<LineAddr>,
    failing_exec_cycles: Cycle,
) -> (FaultPlan, String) {
    let started = Instant::now();
    let mut full_runs = 0u32;
    let mut resumed_runs = 0u32;
    let mut fails = |p: &FaultPlan| -> bool {
        full_runs += 1;
        run_one(trace, alg, p, QueueKind::Heap, opts)
            .map(|out| !failure_reasons(&out, written).is_empty())
            .unwrap_or(false)
    };
    let mut best = plan.clone();
    // Budget prefix: the plan draws faults in a fixed order, so budget b
    // replays the first b faults of the original schedule. `hi` is known
    // to fail; find the smallest failing prefix.
    if best.budget > 1 {
        let checkpoint = if opts.snapshot_bisect {
            bisect_checkpoint(trace, alg, &best, opts, failing_exec_cycles)
        } else {
            None
        };
        let (mut lo, mut hi) = (1, best.budget);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let cand = best.with_budget(mid);
            let failed = match &checkpoint {
                Some(c) if mid >= c.min_budget => {
                    match resumed_probe_fails(trace, alg, &cand, opts, c, written) {
                        Some(failed) => {
                            resumed_runs += 1;
                            failed
                        }
                        None => fails(&cand),
                    }
                }
                _ => fails(&cand),
            };
            if failed {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // The kept reproducer is always proven by a full run from cycle
        // zero; checkpoint-resumed probes only guide the search.
        let cand = best.with_budget(lo);
        if fails(&cand) {
            best = cand;
        }
    }
    // Kind elimination: remove whole fault classes while still failing.
    // Partition windows shrink first: they are the scenario-scheduled
    // disruption, and a reproducer that fails without them points
    // straight at the randomized faults.
    let simplifications: [fn(&mut FaultPlan); 8] = [
        |p| p.partitions.clear(),
        |p| p.bridge_drop = 0.0,
        |p| p.torus_drop = 0.0,
        |p| p.stalls.clear(),
        |p| p.link_drops.clear(),
        |p| p.delay = 0.0,
        |p| p.duplicate = 0.0,
        |p| p.drop = 0.0,
    ];
    for simplify in simplifications {
        let mut cand = best.clone();
        simplify(&mut cand);
        if cand != best && fails(&cand) {
            best = cand;
        }
    }
    let note = format!(
        "shrunk in {:.1?}: {} probe(s) resumed from a mid-run checkpoint, {} full run(s)",
        started.elapsed(),
        resumed_runs,
        full_runs
    );
    (best, note)
}

/// Runs a seeded chaos campaign over one workload profile.
///
/// Records the profile's access trace once, then for each of
/// `opts.schedules` randomized [`FaultPlan`]s runs every Table 3
/// algorithm under that plan and checks the campaign's survival
/// properties (see the [module docs](self)). Failures are shrunk to
/// minimal reproducers when `opts.shrink` is set.
///
/// ```
/// use flexsnoop_checker::chaos::{run_chaos, ChaosOptions};
/// use flexsnoop_workload::profiles;
///
/// # fn main() -> Result<(), String> {
/// let opts = ChaosOptions {
///     schedules: 3,
///     accesses_per_core: 60,
///     threads: 2,
///     ..ChaosOptions::default()
/// };
/// let report = run_chaos(&profiles::specweb(), &opts)?;
/// assert!(report.is_clean(), "{}", report.render());
/// assert_eq!(report.runs, 12); // 3 schedules × 4 Table 3 algorithms
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns a message if a simulator rejects the configuration (property
/// failures land in the report, not the error).
pub fn run_chaos(profile: &WorkloadProfile, opts: &ChaosOptions) -> Result<ChaosReport, String> {
    let mut streams = profile.streams(opts.base_seed);
    let trace = Trace::record(&mut streams, opts.accesses_per_core);
    let written = written_lines(&trace);
    let machine = machine_for(&trace, opts.nodes, opts.hier)?;
    let rings = machine.ring.rings;

    // The fault-free directory baseline over the identical trace: the
    // independent reference implementation every faulted ring run is
    // held against (through the shared sound-invariant set).
    let baseline_reasons = directory_baseline(&trace, opts, &written)?;

    // Draw the schedule seeds up front from a private stream, so the
    // campaign is a pure function of `base_seed` — unless a single
    // reproducer seed was pinned.
    let seeds: Vec<u64> = match opts.schedule {
        Some(seed) => vec![seed],
        None => {
            let mut seed_rng = SplitMix64::new(opts.base_seed ^ 0x5EED_CA05);
            (0..opts.schedules).map(|_| seed_rng.next_u64()).collect()
        }
    };

    let configs: Vec<(u64, Algorithm)> = seeds
        .iter()
        .flat_map(|&seed| TABLE3_ALGORITHMS.iter().map(move |&alg| (seed, alg)))
        .collect();
    let tasks: Vec<_> = configs
        .iter()
        .map(|&(seed, alg)| {
            let trace = &trace;
            move || {
                let plan = draw_plan(seed, opts, rings);
                run_one(trace, alg, &plan, QueueKind::Heap, opts).map(|out| (plan, out))
            }
        })
        .collect();
    let results = Executor::new(opts.threads.max(1)).run(tasks);

    let mut totals = ChaosTotals::default();
    let mut coverage = ChaosCoverage::default();
    let mut failures = Vec::new();
    let mut outcomes = Vec::with_capacity(configs.len());
    for (&(seed, alg), result) in configs.iter().zip(results) {
        let (plan, out) = result?;
        totals.absorb(&out.stats);
        coverage.absorb_plan(&plan, opts.hier.is_some());
        coverage.absorb_events(&out.fault_stats);
        let reasons = failure_reasons(&out, &written);
        if !reasons.is_empty() {
            let (minimized, shrink_note) = match opts
                .shrink
                .then(|| shrink_plan(&trace, alg, &plan, opts, &written, out.stats.exec_cycles))
            {
                Some((min, note)) => (Some(min), Some(note)),
                None => (None, None),
            };
            failures.push(ChaosFailure {
                seed,
                algorithm: alg,
                plan: plan.clone(),
                reasons,
                minimized,
                shrink_note,
            });
        }
        outcomes.push((seed, alg, plan, out));
    }

    // Determinism under faults: the same (plan, algorithm) must be
    // bit-for-bit identical on the other queue backend.
    let probes = (opts.determinism_probes * TABLE3_ALGORITHMS.len() as u64)
        .min(outcomes.len() as u64) as usize;
    for (seed, alg, plan, heap_out) in &outcomes[..probes] {
        let bucketed = run_one(&trace, *alg, plan, QueueKind::Bucketed, opts)?;
        if bucketed.stats != heap_out.stats || bucketed.snapshot != heap_out.snapshot {
            failures.push(ChaosFailure {
                seed: *seed,
                algorithm: *alg,
                plan: plan.clone(),
                reasons: vec![
                    "faulted run diverges across queue backends (must be bit-for-bit)".into(),
                ],
                minimized: None,
                shrink_note: None,
            });
        }
    }

    Ok(ChaosReport {
        profile: profile.name.clone(),
        base_seed: opts.base_seed,
        nodes: opts.nodes,
        hier: opts.hier,
        accesses_per_core: opts.accesses_per_core,
        schedules: seeds.len() as u64,
        runs: configs.len() as u64,
        recovery: opts.recovery,
        totals,
        coverage,
        determinism_checks: probes as u64,
        baseline_reasons,
        failures,
    })
}

/// Runs the fault-free directory-protocol baseline on `trace` and
/// returns everything wrong with it (empty = clean). Mirrors the
/// directory leg of [`crate::run_differential`].
fn directory_baseline(
    trace: &Trace,
    opts: &ChaosOptions,
    written: &BTreeSet<LineAddr>,
) -> Result<Vec<String>, String> {
    let machine = machine_for(trace, opts.nodes, opts.hier)?;
    let mut dsim = DirSimulator::new(machine, boxed_streams(trace), opts.accesses_per_core)?;
    dsim.enable_invariant_checks();
    let dstats = dsim.run();
    let mut reasons = Vec::new();
    if let Some(v) = dsim.violations().first() {
        reasons.push(format!(
            "invariant oracle recorded {} violation(s); first: {v}",
            dsim.violations().len()
        ));
    }
    if let Err(e) = dsim.validate_coherence() {
        reasons.push(format!("final coherence sweep failed: {e}"));
    }
    if dstats.read_txns != dstats.reads_two_hop + dstats.reads_three_hop {
        reasons.push(format!(
            "read hop accounting broken: {} txns != {} two-hop + {} three-hop",
            dstats.read_txns, dstats.reads_two_hop, dstats.reads_three_hop
        ));
    }
    let rogue: Vec<LineAddr> = dsim
        .state_snapshot()
        .iter()
        .filter(|(_, _, _, st)| st.is_dirty())
        .map(|&(line, _, _, _)| line)
        .filter(|l| !written.contains(l))
        .collect();
    if !rogue.is_empty() {
        reasons.push(format!("dirty lines never written by the trace: {rogue:?}"));
    }
    Ok(reasons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsnoop_workload::profiles;

    fn tiny() -> ChaosOptions {
        ChaosOptions {
            schedules: 4,
            accesses_per_core: 60,
            threads: 2,
            determinism_probes: 1,
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn small_campaign_is_clean_and_injects_faults() {
        let report = run_chaos(&profiles::specweb(), &tiny()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.runs, 16);
        assert!(
            report.totals.drops + report.totals.duplicates + report.totals.delays > 0,
            "campaign must actually inject faults: {:?}",
            report.totals
        );
        assert!(report.render().contains("CLEAN"));
    }

    #[test]
    fn no_retry_campaign_fails_and_shrinks() {
        let opts = ChaosOptions {
            recovery: false,
            schedules: 6,
            ..tiny()
        };
        let report = run_chaos(&profiles::specweb(), &opts).unwrap();
        assert!(
            !report.is_clean(),
            "dropping messages without retries must strand transactions"
        );
        let f = &report.failures[0];
        assert!(!f.reasons.is_empty());
        let min = f.minimized.as_ref().expect("shrinking was on");
        assert!(
            min.budget <= f.plan.budget,
            "shrunk budget {} must not exceed original {}",
            min.budget,
            f.plan.budget
        );
        // The minimal reproducer must still fail.
        let rendered = report.render();
        assert!(rendered.contains("minimal reproducer"), "{rendered}");
        assert!(rendered.contains("--no-retry"), "{rendered}");
    }

    #[test]
    fn snapshot_bisection_matches_full_shrink() {
        let bisect = ChaosOptions {
            recovery: false,
            schedules: 6,
            ..tiny()
        };
        let scratch = ChaosOptions {
            snapshot_bisect: false,
            ..bisect.clone()
        };
        let fast = run_chaos(&profiles::specweb(), &bisect).unwrap();
        let slow = run_chaos(&profiles::specweb(), &scratch).unwrap();
        assert!(!fast.is_clean() && !slow.is_clean());
        assert_eq!(fast.failures.len(), slow.failures.len());
        for (a, b) in fast.failures.iter().zip(&slow.failures) {
            assert_eq!(
                a.minimized, b.minimized,
                "checkpoint bisection changed the minimized plan for seed {}",
                a.seed
            );
        }
        // The speedup must be real, not a silent fallback: at least one
        // shrink resumed probes from its checkpoint, and the report logs
        // the wall time either way.
        assert!(
            fast.failures.iter().any(|f| f
                .shrink_note
                .as_deref()
                .is_some_and(|n| !n.contains("0 probe(s) resumed"))),
            "no shrink ever resumed from its checkpoint: {:?}",
            fast.failures
                .iter()
                .map(|f| &f.shrink_note)
                .collect::<Vec<_>>()
        );
        for report in [&fast, &slow] {
            assert!(
                report.render().contains("shrunk in"),
                "shrink wall time missing from the report"
            );
        }
    }

    #[test]
    fn pinned_reproducer_replays_identical_verdict() {
        let opts = ChaosOptions {
            recovery: false,
            schedules: 6,
            ..tiny()
        };
        let report = run_chaos(&profiles::specweb(), &opts).unwrap();
        let f = report
            .failures
            .iter()
            .find(|f| f.minimized.is_some())
            .expect("no-retry campaign must fail and shrink");
        let min = f.minimized.as_ref().unwrap();

        // The verdict the shrinker verified: the budget-truncated prefix
        // of the drawn plan, run from scratch. (Kind eliminations are
        // extra diagnosis; the reproducer line replays the prefix.)
        let mut streams = profiles::specweb().streams(opts.base_seed);
        let trace = Trace::record(&mut streams, opts.accesses_per_core);
        let written = written_lines(&trace);
        let rings = machine_for(&trace, opts.nodes, opts.hier)
            .unwrap()
            .ring
            .rings;
        let prefix = FaultPlan::random(min.seed, opts.nodes, rings).with_budget(min.budget);
        let direct = run_one(&trace, f.algorithm, &prefix, QueueKind::Heap, &opts).unwrap();
        let expected = failure_reasons(&direct, &written);
        assert!(!expected.is_empty(), "minimized prefix must still fail");

        // The CLI reproducer path: the same campaign entry point with the
        // schedule seed and budget pinned, exactly as the rendered
        // `flexsnoop chaos --schedule … --budget …` line does.
        let repro_opts = ChaosOptions {
            schedule: Some(min.seed),
            budget: Some(min.budget),
            shrink: false,
            determinism_probes: 0,
            ..opts.clone()
        };
        let repro = run_chaos(&profiles::specweb(), &repro_opts).unwrap();
        let again = repro
            .failures
            .iter()
            .find(|g| g.algorithm == f.algorithm)
            .expect("pinned reproducer must fail the same algorithm");
        assert_eq!(
            again.reasons, expected,
            "reproducer verdict drifted from the shrunk probe (same oracle \
             verdict and failing transaction id required)"
        );
    }

    #[test]
    fn torus_only_campaign_is_clean_and_drops_only_torus_messages() {
        let opts = ChaosOptions {
            torus_only: true,
            ..tiny()
        };
        let report = run_chaos(&profiles::specweb(), &opts).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(
            report.totals.torus_drops > 0,
            "torus-only campaign must inject torus drops: {:?}",
            report.totals
        );
        assert_eq!(
            report.totals.drops + report.totals.duplicates + report.totals.delays,
            0,
            "torus-only plans must carry no ring faults"
        );
        for kind in ["drop", "duplicate", "delay", "stall"] {
            assert_eq!(report.coverage.injected(kind), 0, "{kind}");
        }
        assert!(report.coverage.injected("torus-drop") > 0);
    }

    #[test]
    fn static_timeout_override_changes_retry_behaviour_not_correctness() {
        let static_opts = ChaosOptions {
            timeout_policy: Some(TimeoutPolicy::Static),
            ..tiny()
        };
        let report = run_chaos(&profiles::specweb(), &static_opts).unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn coverage_baseline_roundtrip_and_ratchet() {
        let cov = ChaosCoverage {
            kinds: [[3, 30], [2, 20], [4, 40], [1, 5], [2, 7], [1, 11], [2, 9]],
        };
        let text = cov.render_baseline();
        let parsed = ChaosCoverage::parse_baseline(&text).unwrap();
        assert_eq!(parsed.injected("drop"), 30);
        assert_eq!(parsed.injected("torus-drop"), 7);
        assert_eq!(parsed.injected("partition"), 11);
        assert_eq!(parsed.injected("bridge"), 9);
        // Baselines written before the partition and bridge kinds
        // existed parse fine (unknown-kind lines are the symmetric case,
        // also ignored).
        let old = "drop 30\nduplicate 20\ndelay 40\nstall 5\ntorus-drop 7\n";
        let old_cov = ChaosCoverage::parse_baseline(old).unwrap();
        assert_eq!(old_cov.injected("partition"), 0);
        assert_eq!(old_cov.injected("bridge"), 0);
        assert!(cov.regressions(&parsed).is_empty());
        // A kind the baseline proved reachable going silent is a failure…
        let mut starved = cov;
        starved.kinds[4][1] = 0;
        let regs = starved.regressions(&parsed);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("torus-drop"), "{regs:?}");
        // …but a kind the baseline never saw is not.
        let mut sparse_base = parsed;
        sparse_base.kinds[4][1] = 0;
        assert!(starved.regressions(&sparse_base).is_empty());
        assert!(
            ChaosCoverage::parse_baseline("drop notanumber").is_err(),
            "malformed counts must be rejected"
        );
        assert_eq!(starved.starved_kinds(), vec!["torus-drop"]);
    }

    #[test]
    fn hier_campaign_survives_and_injects_bridge_drops() {
        // On a hierarchical machine the drawn plans' bridge schedules go
        // live: global-ring crossings get dropped and the timeout/retry
        // layer must still retire everything, on every Table 3 algorithm.
        let opts = ChaosOptions {
            nodes: 8,
            hier: Some((2, 4)),
            schedules: 6,
            ..tiny()
        };
        let report = run_chaos(&profiles::specweb(), &opts).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(
            report.totals.bridge_drops > 0,
            "campaign never dropped a bridge crossing: {:?}",
            report.totals
        );
        assert!(report.coverage.injected("bridge") > 0);
        assert!(report.render().contains("bridge drops"));
    }

    #[test]
    fn hier_reproducer_line_pins_the_topology() {
        // A failure found on a hierarchical machine must replay on one:
        // the rendered reproducer carries the shape.
        let opts = ChaosOptions {
            nodes: 8,
            hier: Some((2, 4)),
            recovery: false,
            schedules: 6,
            ..tiny()
        };
        let report = run_chaos(&profiles::specweb(), &opts).unwrap();
        assert!(!report.is_clean(), "no-retry hier campaign must fail");
        let rendered = report.render();
        assert!(
            rendered.contains("--topology hier:2x4"),
            "reproducer line must pin the hier shape:\n{rendered}"
        );
    }

    #[test]
    fn campaign_is_reproducible() {
        let a = run_chaos(&profiles::specweb(), &tiny()).unwrap();
        let b = run_chaos(&profiles::specweb(), &tiny()).unwrap();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
