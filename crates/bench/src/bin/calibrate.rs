//! Calibration harness: prints the four main figure metrics for the full
//! (workload x algorithm) matrix so profile/energy constants can be tuned
//! against the paper's reported shapes.
use flexsnoop::Algorithm;
use flexsnoop_bench::{aggregate, paper_workloads, render_aggregate, run_matrix, SEED};

fn main() {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let algorithms = Algorithm::PAPER_SET;
    let t0 = std::time::Instant::now();
    let results = run_matrix(&paper_workloads(), &algorithms, accesses, SEED);
    eprintln!("matrix done in {:?}", t0.elapsed());
    type Metric = Box<dyn Fn(&flexsnoop::RunStats) -> f64>;
    let figs: [(&str, Metric, bool); 4] = [
        (
            "Fig 6: snoops per read request (absolute)",
            Box::new(|s: &flexsnoop::RunStats| s.snoops_per_read()),
            false,
        ),
        (
            "Fig 7: ring read messages (normalized to Lazy)",
            Box::new(|s: &flexsnoop::RunStats| s.read_ring_hops as f64),
            true,
        ),
        (
            "Fig 8: execution time (normalized to Lazy)",
            Box::new(|s: &flexsnoop::RunStats| s.exec_time()),
            true,
        ),
        (
            "Fig 9: snoop energy (normalized to Lazy)",
            Box::new(|s: &flexsnoop::RunStats| s.energy_nj()),
            true,
        ),
    ];
    for (title, metric, norm) in figs {
        let agg = aggregate(&results, &algorithms, metric, norm);
        println!("\n{}", render_aggregate(title, &agg, &algorithms));
    }
    // supplementary diagnostics
    println!("\nDiagnostics (per workload, Lazy): supply% / mem% / ring-reads per access");
    for cell in results.iter().filter(|c| c.algorithm == Algorithm::Lazy) {
        let s = &cell.stats;
        let accesses_total = s.l1_hits
            + s.l2_hits
            + s.local_peer_hits
            + s.read_txns
            + s.write_txns
            + s.silent_write_hits;
        println!(
            "  {:<12} supply={:4.1}% ringrd/acc={:5.3} l1={:4.1}% peer={:4.1}% col={} exactDG: -",
            cell.workload,
            s.cache_supply_fraction() * 100.0,
            s.read_txns as f64 / accesses_total as f64,
            100.0 * s.l1_hits as f64 / accesses_total as f64,
            100.0 * s.local_peer_hits as f64 / accesses_total as f64,
            s.collisions,
        );
    }
    println!("\nExact diagnostics: downgrades / dirty-wb / rereads per read txn");
    for cell in results.iter().filter(|c| c.algorithm == Algorithm::Exact) {
        let s = &cell.stats;
        println!(
            "  {:<12} dg/rd={:5.2} dgwb/rd={:5.2} reread/rd={:5.2} mem%={:4.1}",
            cell.workload,
            s.downgrades as f64 / s.read_txns as f64,
            s.downgrade_writebacks as f64 / s.read_txns as f64,
            s.downgrade_rereads as f64 / s.read_txns as f64,
            100.0 * s.reads_from_memory as f64 / s.read_txns as f64
        );
    }
}
