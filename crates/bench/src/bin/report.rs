//! Regenerates every measured table of EXPERIMENTS.md in one run and
//! writes them to `results/report.md` (and stdout).
//!
//! ```text
//! cargo run --release -p flexsnoop-bench --bin report [accesses_per_core]
//! ```
//!
//! Unlike `cargo bench`, this skips Criterion timing and produces only the
//! simulation results, which are deterministic.

use std::fmt::Write as _;

use flexsnoop::Algorithm;
use flexsnoop_bench::sweeps::{
    figure10_cases, figure10_sweep, figure11_accuracy, figure11_configs,
};
use flexsnoop_bench::{aggregate, paper_workloads, render_aggregate, run_matrix, SEED};
use flexsnoop_metrics::Table;

fn main() {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_000);
    let t0 = std::time::Instant::now();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# flexsnoop measured report\n\nSeed {SEED}, {accesses} accesses/core.\n"
    );

    // Figures 6-9 share one matrix.
    let algorithms = Algorithm::PAPER_SET;
    let results = run_matrix(&paper_workloads(), &algorithms, accesses, SEED);
    eprintln!("figure matrix: {:?}", t0.elapsed());
    type Metric = fn(&flexsnoop::RunStats) -> f64;
    let figures: [(&str, Metric, bool); 4] = [
        (
            "Figure 6 — snoops per read request (absolute)",
            |s| s.snoops_per_read(),
            false,
        ),
        (
            "Figure 7 — ring read messages (x Lazy)",
            |s| s.read_ring_hops as f64,
            true,
        ),
        (
            "Figure 8 — execution time (x Lazy)",
            |s| s.exec_time(),
            true,
        ),
        ("Figure 9 — snoop energy (x Lazy)", |s| s.energy_nj(), true),
    ];
    for (title, metric, norm) in figures {
        let agg = aggregate(&results, &algorithms, metric, norm);
        let _ = writeln!(out, "## {title}\n\n```");
        let _ = writeln!(out, "{}```\n", render_aggregate("", &agg, &algorithms));
    }

    // Figure 10.
    let _ = writeln!(
        out,
        "## Figure 10 — predictor-size sensitivity (x the 2K config)\n\n```"
    );
    let mut t10 =
        Table::with_columns(&["algorithm", "predictor", "SPLASH-2", "SPECjbb", "SPECweb"]);
    for (algorithm, configs) in figure10_cases() {
        for (name, rows) in figure10_sweep(algorithm, configs, accesses) {
            let get = |key: &str| {
                rows.iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into())
            };
            t10.row(vec![
                algorithm.to_string(),
                name,
                get("SPLASH-2"),
                get("SPECjbb"),
                get("SPECweb"),
            ]);
        }
    }
    let _ = writeln!(out, "{}```\n", t10.render());
    eprintln!("figure 10: {:?}", t0.elapsed());

    // Figure 11.
    let _ = writeln!(out, "## Figure 11 — predictor accuracy\n\n```");
    let mut t11 = Table::with_columns(&["predictor", "group", "TP", "TN", "FP", "FN"]);
    for (name, algorithm, spec) in figure11_configs() {
        for (group, acc) in figure11_accuracy(algorithm, spec, accesses) {
            t11.row(vec![
                name.to_string(),
                group.to_string(),
                format!("{:.3}", acc.fraction_true_positive()),
                format!("{:.3}", acc.fraction_true_negative()),
                format!("{:.3}", acc.fraction_false_positive()),
                format!("{:.3}", acc.fraction_false_negative()),
            ]);
        }
    }
    let _ = writeln!(out, "{}```", t11.render());
    eprintln!("figure 11: {:?}", t0.elapsed());

    print!("{out}");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/report.md", &out).is_ok()
    {
        eprintln!("wrote results/report.md in {:?}", t0.elapsed());
    }
}
