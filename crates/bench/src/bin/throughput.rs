//! Simulator-throughput smoke benchmark.
//!
//! Runs the Figure 4 design-space sweep (every paper algorithm over the
//! near-unloaded supplier-distance workload) plus one loaded full-suite
//! column, and reports aggregate events/sec and transactions/sec as JSON
//! on stdout. The numbers in EXPERIMENTS.md's "Performance" section come
//! from this binary; run it before and after any hot-path change.
//!
//! Usage: `throughput [--accesses N] [--threads N] [--repeat N]`

use std::time::Instant;

use flexsnoop::{run_workload, Algorithm, RunStats};
use flexsnoop_bench::SEED;
use flexsnoop_workload::{profiles, PoolKind, PoolSpec, WorkloadGroup, WorkloadProfile};

/// The Figure 4 near-unloaded scenario (same shape as the fig4 bench
/// target): one active reader over a pool the other nodes pre-warmed.
fn unloaded_workload(accesses: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "unloaded".to_string(),
        group: WorkloadGroup::Splash2,
        cores: 8,
        accesses_per_core: accesses,
        write_fraction: 0.0,
        think: (2_000, 3_000),
        cluster: 0,
        pools: vec![PoolSpec {
            kind: PoolKind::SharedRo,
            lines: 1_024,
            weight: 1.0,
            hot_fraction: 0.0,
        }],
    }
}

fn main() {
    let mut accesses: u64 = 3_000;
    let mut threads: usize = 0;
    let mut repeat: u32 = 1;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(key) = it.next() {
        let value = it.next().map(String::as_str).unwrap_or("");
        match key.as_str() {
            "--accesses" => accesses = value.parse().expect("--accesses N"),
            "--threads" => threads = value.parse().expect("--threads N"),
            "--repeat" => repeat = value.parse().expect("--repeat N"),
            other => {
                eprintln!("unknown option {other}; usage: throughput [--accesses N] [--threads N] [--repeat N]");
                std::process::exit(2);
            }
        }
    }
    if threads > 0 {
        flexsnoop_engine::executor::set_default_threads(threads);
    }
    let threads_used = flexsnoop_engine::executor::default_threads();

    let fig4 = unloaded_workload(accesses);
    let loaded = profiles::all();
    let mut best: Option<(f64, u64, u64)> = None;
    for _ in 0..repeat {
        let start = Instant::now();
        // Figure 4 design space: every paper algorithm, one workload.
        let mut runs: Vec<RunStats> = flexsnoop::run_algorithms(&fig4, &Algorithm::PAPER_SET, SEED)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        // One loaded column: the full suite under the default adaptive
        // algorithm, sized down to keep the smoke run in seconds.
        for w in &loaded {
            let w = w.clone().with_accesses(accesses.min(1_500));
            runs.push(run_workload(&w, Algorithm::SupersetAgg, None, SEED).expect("loaded run"));
        }
        let wall = start.elapsed().as_secs_f64();
        let events: u64 = runs.iter().map(|s| s.events).sum();
        let txns: u64 = runs.iter().map(|s| s.read_txns + s.write_txns).sum();
        if best.is_none_or(|(w, _, _)| wall < w) {
            best = Some((wall, events, txns));
        }
    }
    let (wall, events, txns) = best.expect("at least one repeat");
    println!(
        "{{\"bench\":\"fig4_design_space\",\"accesses\":{accesses},\"threads\":{threads_used},\
\"wall_s\":{wall:.3},\"events\":{events},\"txns\":{txns},\
\"events_per_sec\":{:.0},\"txns_per_sec\":{:.0}}}",
        events as f64 / wall,
        txns as f64 / wall,
    );
}
