//! Shared experiment harness for the figure/table benchmarks.
//!
//! Each Criterion bench target regenerates one paper table or figure by
//! calling into this library, printing the rows the paper reports, and then
//! timing a representative simulation kernel. The heavy lifting — running
//! every (workload × algorithm) pair and aggregating per group — lives
//! here so the calibration binary, the benches and the examples all agree.

pub mod sweeps;

use std::collections::BTreeMap;

use flexsnoop::probe::ProbeReport;
use flexsnoop::{run_workload, Algorithm, GroupAggregator, RunStats, Simulator};
use flexsnoop_engine::ExecutorStats;
use flexsnoop_predictor::PredictorSpec;
use flexsnoop_workload::{profiles, WorkloadGroup, WorkloadProfile};

/// How many accesses per core the figure experiments run.
///
/// Large enough to warm the caches and exercise predictor capacity
/// pressure; small enough that regenerating every figure stays in minutes.
pub const FIGURE_ACCESSES: u64 = 12_000;

/// The default seed for every figure experiment (results are deterministic).
pub const SEED: u64 = 20060617; // ISCA 2006 conference date

/// One (workload, algorithm) result.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Workload group.
    pub group: WorkloadGroup,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Collected statistics.
    pub stats: RunStats,
    /// Observability counters, when the cell ran with the probe on.
    pub probe: Option<ProbeReport>,
}

/// Runs every workload under every algorithm, fanning the individual
/// (workload, algorithm) cells out over the shared bounded executor
/// instead of spawning one OS thread per workload (which oversubscribed
/// the machine on wide sweeps). `accesses` overrides each profile's
/// per-core access count. Results come back in workload-major order
/// regardless of the worker count.
///
/// # Panics
///
/// Panics if any simulation fails to configure.
pub fn run_matrix(
    workloads: &[WorkloadProfile],
    algorithms: &[Algorithm],
    accesses: u64,
    seed: u64,
) -> Vec<CellResult> {
    run_matrix_instrumented(workloads, algorithms, accesses, seed, false).0
}

/// [`run_matrix`] with optional per-cell probes and executor utilization.
///
/// With `probe` set, each simulation runs with the counting probe
/// installed and its [`ProbeReport`] lands in the matching
/// [`CellResult::probe`]; either way the sweep itself is timed through
/// [`Executor::run_with_stats`](flexsnoop_engine::Executor::run_with_stats)
/// so callers see per-worker utilization.
///
/// # Panics
///
/// Panics if any simulation fails to configure.
pub fn run_matrix_instrumented(
    workloads: &[WorkloadProfile],
    algorithms: &[Algorithm],
    accesses: u64,
    seed: u64,
    probe: bool,
) -> (Vec<CellResult>, ExecutorStats) {
    let profiles: Vec<WorkloadProfile> = workloads
        .iter()
        .map(|p| p.clone().with_accesses(accesses))
        .collect();
    let tasks: Vec<_> = profiles
        .iter()
        .flat_map(|profile| {
            algorithms.iter().map(move |&algorithm| {
                move || {
                    let (stats, report) = run_cell(profile, algorithm, seed, probe);
                    CellResult {
                        workload: profile.name.clone(),
                        group: profile.group,
                        algorithm,
                        stats,
                        probe: report,
                    }
                }
            })
        })
        .collect();
    flexsnoop_engine::Executor::with_default().run_with_stats(tasks)
}

/// Runs one (workload, algorithm) cell, optionally with the counting
/// probe installed.
///
/// # Panics
///
/// Panics if the simulation fails to configure.
fn run_cell(
    profile: &WorkloadProfile,
    algorithm: Algorithm,
    seed: u64,
    probe: bool,
) -> (RunStats, Option<ProbeReport>) {
    if !probe {
        let stats = run_workload(profile, algorithm, None, seed)
            .unwrap_or_else(|e| panic!("{algorithm} on {}: {e}", profile.name));
        return (stats, None);
    }
    let mut sim = Simulator::for_workload(profile, algorithm, None, seed)
        .unwrap_or_else(|e| panic!("{algorithm} on {}: {e}", profile.name));
    sim.enable_probe();
    let stats = sim.run();
    (stats, sim.probe_report())
}

/// The paper's standard workload suite (11 SPLASH-2 apps + SPECjbb +
/// SPECweb).
pub fn paper_workloads() -> Vec<WorkloadProfile> {
    profiles::all()
}

/// Aggregates one metric of a result matrix per (algorithm, group).
///
/// `absolute` metrics (Figure 6) use the arithmetic mean over SPLASH-2;
/// normalized metrics (Figures 7–9) are first normalized to Lazy per
/// workload and then aggregated with the geometric mean, exactly as the
/// paper does.
pub fn aggregate<F>(
    results: &[CellResult],
    algorithms: &[Algorithm],
    metric: F,
    normalize_to_lazy: bool,
) -> BTreeMap<String, Vec<(&'static str, f64)>>
where
    F: Fn(&RunStats) -> f64,
{
    // metric per (workload -> algorithm) for normalization.
    let mut lazy_per_workload: BTreeMap<&str, f64> = BTreeMap::new();
    if normalize_to_lazy {
        for cell in results {
            if cell.algorithm == Algorithm::Lazy {
                lazy_per_workload.insert(&cell.workload, metric(&cell.stats));
            }
        }
    }
    let mut out = BTreeMap::new();
    for &algorithm in algorithms {
        let mut agg = GroupAggregator::new();
        for cell in results.iter().filter(|c| c.algorithm == algorithm) {
            let mut v = metric(&cell.stats);
            if normalize_to_lazy {
                let base = lazy_per_workload
                    .get(cell.workload.as_str())
                    .copied()
                    .expect("Lazy baseline present");
                v /= base;
            }
            agg.record(cell.group, v);
        }
        let rows = if normalize_to_lazy {
            agg.geomeans()
        } else {
            agg.means()
        };
        out.insert(algorithm.to_string(), rows);
    }
    out
}

/// Renders an aggregate as a paper-style table: one row per algorithm, one
/// column per workload group.
pub fn render_aggregate(
    title: &str,
    agg: &BTreeMap<String, Vec<(&'static str, f64)>>,
    algorithms: &[Algorithm],
) -> String {
    let mut table =
        flexsnoop_metrics::Table::with_columns(&["algorithm", "SPLASH-2", "SPECjbb", "SPECweb"]);
    for &alg in algorithms {
        let name = alg.to_string();
        let rows = &agg[&name];
        let get = |key: &str| {
            rows.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![name, get("SPLASH-2"), get("SPECjbb"), get("SPECweb")]);
    }
    format!("{title}\n{}", table.render())
}

/// Convenience: run the full paper matrix and render one metric.
pub fn figure_report<F>(title: &str, metric: F, normalize_to_lazy: bool, accesses: u64) -> String
where
    F: Fn(&RunStats) -> f64,
{
    let algorithms = Algorithm::PAPER_SET;
    let results = run_matrix(&paper_workloads(), &algorithms, accesses, SEED);
    let agg = aggregate(&results, &algorithms, metric, normalize_to_lazy);
    render_aggregate(title, &agg, &algorithms)
}

/// Runs a single sensitivity cell: one workload group under one algorithm
/// with an explicit predictor.
///
/// # Panics
///
/// Panics if the simulation fails to configure.
pub fn run_with_predictor(
    profile: &WorkloadProfile,
    algorithm: Algorithm,
    predictor: PredictorSpec,
    accesses: u64,
) -> RunStats {
    let profile = profile.clone().with_accesses(accesses);
    run_workload(&profile, algorithm, Some(predictor), SEED)
        .unwrap_or_else(|e| panic!("{algorithm}/{predictor} on {}: {e}", profile.name))
}

/// Runs one workload with a tweaked machine configuration (for ablations).
///
/// # Panics
///
/// Panics if the simulation fails to configure.
pub fn run_with_machine(
    profile: &WorkloadProfile,
    algorithm: Algorithm,
    accesses: u64,
    tweak: impl FnOnce(&mut flexsnoop::MachineConfig),
) -> RunStats {
    use flexsnoop_workload::AccessStream;
    let profile = profile.clone().with_accesses(accesses);
    let nodes = 8;
    assert!(
        profile.cores.is_multiple_of(nodes),
        "cores must divide nodes"
    );
    let mut machine = flexsnoop::MachineConfig::isca2006(profile.cores / nodes);
    tweak(&mut machine);
    let predictor = algorithm.default_predictor();
    let streams: Vec<Box<dyn AccessStream + Send>> = profile
        .streams(SEED)
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
        .collect();
    let mut sim = flexsnoop::Simulator::new(
        machine,
        algorithm,
        predictor,
        flexsnoop::energy_model_for(&predictor),
        streams,
        profile.accesses_per_core,
    )
    .unwrap_or_else(|e| panic!("ablation config: {e}"));
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_pairs() {
        let workloads = vec![profiles::uniform_microbench(8, 200)];
        let algorithms = [Algorithm::Lazy, Algorithm::Eager];
        let cells = run_matrix(&workloads, &algorithms, 200, 1);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.stats.read_txns > 0));
    }

    #[test]
    fn instrumented_matrix_carries_probes_and_utilization() {
        let workloads = vec![profiles::uniform_microbench(8, 200)];
        let algorithms = [Algorithm::Lazy, Algorithm::SupersetCon];
        let (cells, exec) = run_matrix_instrumented(&workloads, &algorithms, 200, 1, true);
        assert_eq!(cells.len(), 2);
        assert_eq!(exec.total_tasks(), 2);
        assert!(!exec.workers.is_empty());
        for cell in &cells {
            let probe = cell.probe.as_ref().expect("probe requested");
            assert_eq!(probe.events, cell.stats.events);
        }
        // Without the probe flag, cells carry no report.
        let (cells, _) = run_matrix_instrumented(&workloads, &algorithms, 200, 1, false);
        assert!(cells.iter().all(|c| c.probe.is_none()));
    }

    #[test]
    fn aggregation_normalizes_to_lazy() {
        let workloads = vec![profiles::uniform_microbench(8, 200)];
        let algorithms = [Algorithm::Lazy, Algorithm::Eager];
        let cells = run_matrix(&workloads, &algorithms, 200, 1);
        let agg = aggregate(&cells, &algorithms, |s| s.ring_hops_per_read(), true);
        let lazy = agg["Lazy"]
            .iter()
            .find(|(k, _)| *k == "SPLASH-2")
            .unwrap()
            .1;
        assert!((lazy - 1.0).abs() < 1e-9, "Lazy normalizes to itself");
        let eager = agg["Eager"]
            .iter()
            .find(|(k, _)| *k == "SPLASH-2")
            .unwrap()
            .1;
        assert!(eager > 1.5, "Eager ≈ 2x Lazy messages, got {eager}");
    }
}
