//! Structured experiment sweeps shared by the bench targets and the
//! report generator: the Table 1 and Table 3 characterizations, the
//! Figure 10 predictor-size sensitivity study and the Figure 11 accuracy
//! study.

use std::collections::BTreeMap;

use flexsnoop::{run_workload, Algorithm, GroupAggregator, PredictorSpec};
use flexsnoop_predictor::AccuracyStats;
use flexsnoop_workload::{profiles, WorkloadGroup};

use crate::{run_with_predictor, SEED};

/// One row of Table 1: a baseline algorithm's characteristics under the
/// perfectly-uniform microbenchmark (one node can always supply).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The baseline algorithm.
    pub algorithm: Algorithm,
    /// Measured snoop operations per read request.
    pub snoops_per_request: f64,
    /// Measured ring messages per request, normalized to Lazy.
    pub msgs_x_lazy: f64,
    /// Mean read latency in cycles (unloaded-latency proxy).
    pub mean_read_latency: f64,
    /// The paper's analytical snoop count for N = 8 nodes.
    pub paper_snoops: &'static str,
    /// The paper's analytical message count (× Lazy).
    pub paper_msgs: &'static str,
}

/// Runs the Table 1 characterization: Lazy, Eager and Oracle on the
/// uniform microbenchmark at `accesses` per core.
///
/// # Panics
///
/// Panics if a simulation fails to configure.
pub fn table1_rows(accesses: u64) -> Vec<Table1Row> {
    let workload = profiles::uniform_microbench(8, accesses);
    let lazy_hops = run_workload(&workload, Algorithm::Lazy, None, SEED)
        .expect("lazy run")
        .ring_hops_per_read();
    [
        (Algorithm::Lazy, "(N-1)/2 = 3.5", "1.00"),
        (Algorithm::Eager, "N-1 = 7", "~2"),
        (Algorithm::Oracle, "1", "1.00"),
    ]
    .into_iter()
    .map(|(algorithm, paper_snoops, paper_msgs)| {
        let stats = run_workload(&workload, algorithm, None, SEED).expect("run");
        Table1Row {
            algorithm,
            snoops_per_request: stats.snoops_per_read(),
            msgs_x_lazy: stats.ring_hops_per_read() / lazy_hops,
            mean_read_latency: stats.read_latency.mean(),
            paper_snoops,
            paper_msgs,
        }
    })
    .collect()
}

/// One row of Table 3: an adaptive algorithm's error class and resulting
/// snoop/message counts on a sharing-heavy workload (barnes).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The adaptive algorithm.
    pub algorithm: Algorithm,
    /// Observed predictor false positives.
    pub false_positives: u64,
    /// Observed predictor false negatives.
    pub false_negatives: u64,
    /// Measured snoop operations per read request.
    pub snoops_per_request: f64,
    /// `snoops_per_request` minus Lazy's (positive = more than Lazy).
    pub snoops_vs_lazy: f64,
    /// Ring messages per request, normalized to Lazy.
    pub msgs_x_lazy: f64,
}

/// Runs the Table 3 characterization: the four adaptive algorithms on
/// barnes at `accesses` per core, against a Lazy baseline.
///
/// # Panics
///
/// Panics if a simulation fails to configure.
pub fn table3_rows(accesses: u64) -> Vec<Table3Row> {
    let workload = profiles::splash2_apps()
        .into_iter()
        .next()
        .expect("barnes")
        .with_accesses(accesses);
    let lazy = run_workload(&workload, Algorithm::Lazy, None, SEED).expect("lazy");
    [
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ]
    .into_iter()
    .map(|algorithm| {
        let s = run_workload(&workload, algorithm, None, SEED).expect("run");
        Table3Row {
            algorithm,
            false_positives: s.accuracy.false_positives,
            false_negatives: s.accuracy.false_negatives,
            snoops_per_request: s.snoops_per_read(),
            snoops_vs_lazy: s.snoops_per_read() - lazy.snoops_per_read(),
            msgs_x_lazy: s.ring_hops_per_read() / lazy.ring_hops_per_read(),
        }
    })
    .collect()
}

/// Renders Table 1 rows in the paper's layout (measured values with the
/// analytical expectations in parentheses).
pub fn render_table1(rows: &[Table1Row]) -> flexsnoop_metrics::Table {
    let mut table = flexsnoop_metrics::Table::with_columns(&[
        "algorithm",
        "snoops/request (paper)",
        "ring msgs/request, x Lazy (paper)",
        "mean unloaded latency [cyc]",
    ]);
    for r in rows {
        table.row(vec![
            r.algorithm.to_string(),
            format!("{:.2}  ({})", r.snoops_per_request, r.paper_snoops),
            format!("{:.2}  ({})", r.msgs_x_lazy, r.paper_msgs),
            format!("{:.0}", r.mean_read_latency),
        ]);
    }
    table
}

/// Renders Table 3 rows in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> flexsnoop_metrics::Table {
    let mut table = flexsnoop_metrics::Table::with_columns(&[
        "algorithm",
        "FP observed",
        "FN observed",
        "snoops/request",
        "vs Lazy",
        "msgs/request (x Lazy)",
    ]);
    for r in rows {
        table.row(vec![
            r.algorithm.to_string(),
            r.false_positives.to_string(),
            r.false_negatives.to_string(),
            format!("{:.2}", r.snoops_per_request),
            format!("{:+.2}", r.snoops_vs_lazy),
            format!("{:.2}", r.msgs_x_lazy),
        ]);
    }
    table
}

/// The three Subset predictor sizes of §5.2.
pub const SUBSET_CONFIGS: [(&str, PredictorSpec); 3] = [
    ("Sub512", PredictorSpec::SUB512),
    ("Sub2k", PredictorSpec::SUB2K),
    ("Sub8k", PredictorSpec::SUB8K),
];

/// The three Superset predictor organizations of §5.2 (shared by the
/// conservative and aggressive algorithms).
pub const SUPERSET_CONFIGS: [(&str, PredictorSpec); 3] = [
    ("y512", PredictorSpec::SUP_Y512),
    ("y2k", PredictorSpec::SUP_Y2K),
    ("n2k", PredictorSpec::SUP_N2K),
];

/// The three Exact predictor sizes of §5.2.
pub const EXACT_CONFIGS: [(&str, PredictorSpec); 3] = [
    ("Exa512", PredictorSpec::EXA512),
    ("Exa2k", PredictorSpec::EXA2K),
    ("Exa8k", PredictorSpec::EXA8K),
];

/// The four (algorithm, predictor set) cases of Figure 10.
pub fn figure10_cases() -> [(Algorithm, &'static [(&'static str, PredictorSpec)]); 4] {
    [
        (Algorithm::Subset, &SUBSET_CONFIGS),
        (Algorithm::SupersetCon, &SUPERSET_CONFIGS),
        (Algorithm::SupersetAgg, &SUPERSET_CONFIGS),
        (Algorithm::Exact, &EXACT_CONFIGS),
    ]
}

/// Runs one algorithm over its predictor configurations and the full
/// workload suite; returns per-config execution times per group,
/// normalized to the middle (2K, §6.1 default) configuration.
pub fn figure10_sweep(
    algorithm: Algorithm,
    configs: &[(&str, PredictorSpec)],
    accesses: u64,
) -> Vec<(String, Vec<(&'static str, f64)>)> {
    figure10_sweep_on(&profiles::all(), algorithm, configs, accesses)
}

/// [`figure10_sweep`] over an explicit workload subset (used by the
/// report pipeline's scaled-down self-tests).
pub fn figure10_sweep_on(
    workloads: &[flexsnoop_workload::WorkloadProfile],
    algorithm: Algorithm,
    configs: &[(&str, PredictorSpec)],
    accesses: u64,
) -> Vec<(String, Vec<(&'static str, f64)>)> {
    let mut per_config: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    for (name, spec) in configs {
        let mut agg = GroupAggregator::new();
        let tasks: Vec<_> = workloads
            .iter()
            .map(|w| {
                move || {
                    (
                        w.group,
                        run_with_predictor(w, algorithm, *spec, accesses).exec_time(),
                    )
                }
            })
            .collect();
        for (group, exec) in flexsnoop_engine::Executor::with_default().run(tasks) {
            agg.record(group, exec);
        }
        per_config.push((name.to_string(), agg.means()));
    }
    let baseline: BTreeMap<&'static str, f64> = per_config[1].1.iter().copied().collect();
    for (_, rows) in &mut per_config {
        for (group, v) in rows.iter_mut() {
            *v /= baseline[group];
        }
    }
    per_config
}

/// The ten predictor configurations of Figure 11, each with the algorithm
/// that exercises it. The perfect predictor rides Oracle; the two
/// Superset algorithms behave very similarly, so (like the paper) only
/// the conservative one is measured.
pub fn figure11_configs() -> Vec<(&'static str, Algorithm, PredictorSpec)> {
    vec![
        ("Perfect", Algorithm::Oracle, PredictorSpec::Perfect),
        ("Sub512", Algorithm::Subset, PredictorSpec::SUB512),
        ("Sub2k", Algorithm::Subset, PredictorSpec::SUB2K),
        ("Sub8k", Algorithm::Subset, PredictorSpec::SUB8K),
        ("SupCy512", Algorithm::SupersetCon, PredictorSpec::SUP_Y512),
        ("SupCy2k", Algorithm::SupersetCon, PredictorSpec::SUP_Y2K),
        ("SupCn2k", Algorithm::SupersetCon, PredictorSpec::SUP_N2K),
        ("Exa512", Algorithm::Exact, PredictorSpec::EXA512),
        ("Exa2k", Algorithm::Exact, PredictorSpec::EXA2K),
        ("Exa8k", Algorithm::Exact, PredictorSpec::EXA8K),
    ]
}

/// Runs one (algorithm, predictor) pair over the full suite, returning
/// merged accuracy per workload group in reporting order.
pub fn figure11_accuracy(
    algorithm: Algorithm,
    spec: PredictorSpec,
    accesses: u64,
) -> Vec<(&'static str, AccuracyStats)> {
    figure11_accuracy_on(&profiles::all(), algorithm, spec, accesses)
}

/// [`figure11_accuracy`] over an explicit workload subset.
pub fn figure11_accuracy_on(
    workloads: &[flexsnoop_workload::WorkloadProfile],
    algorithm: Algorithm,
    spec: PredictorSpec,
    accesses: u64,
) -> Vec<(&'static str, AccuracyStats)> {
    let mut per_group: Vec<(&'static str, AccuracyStats)> = vec![
        ("SPLASH-2", AccuracyStats::default()),
        ("SPECjbb", AccuracyStats::default()),
        ("SPECweb", AccuracyStats::default()),
    ];
    let tasks: Vec<_> = workloads
        .iter()
        .map(|w| {
            move || {
                (
                    w.group,
                    run_with_predictor(w, algorithm, spec, accesses).accuracy,
                )
            }
        })
        .collect();
    for (group, acc) in flexsnoop_engine::Executor::with_default().run(tasks) {
        let idx = match group {
            WorkloadGroup::Splash2 => 0,
            WorkloadGroup::SpecJbb => 1,
            WorkloadGroup::SpecWeb => 2,
        };
        per_group[idx].1.merge(&acc);
    }
    per_group
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_normalizes_to_middle_config() {
        // A tiny sweep: the middle config must read exactly 1.0 per group.
        let rows = figure10_sweep(Algorithm::Subset, &SUBSET_CONFIGS, 300);
        assert_eq!(rows.len(), 3);
        for (group, v) in &rows[1].1 {
            assert!((v - 1.0).abs() < 1e-12, "{group}: {v}");
        }
    }

    #[test]
    fn table1_matches_paper_shape() {
        let rows = table1_rows(400);
        assert_eq!(rows.len(), 3);
        let lazy = &rows[0];
        let eager = &rows[1];
        let oracle = &rows[2];
        assert!((lazy.msgs_x_lazy - 1.0).abs() < 1e-12);
        assert!(eager.snoops_per_request > lazy.snoops_per_request);
        assert!(oracle.snoops_per_request < lazy.snoops_per_request);
        assert_eq!(render_table1(&rows).render().lines().count(), 3 + 2);
    }

    #[test]
    fn table3_error_classes_hold() {
        let rows = table3_rows(500);
        assert_eq!(rows.len(), 4);
        let by_alg = |a: Algorithm| rows.iter().find(|r| r.algorithm == a).unwrap();
        assert_eq!(by_alg(Algorithm::Subset).false_positives, 0);
        assert_eq!(by_alg(Algorithm::SupersetCon).false_negatives, 0);
        assert_eq!(by_alg(Algorithm::SupersetAgg).false_negatives, 0);
        assert_eq!(by_alg(Algorithm::Exact).false_positives, 0);
        assert_eq!(by_alg(Algorithm::Exact).false_negatives, 0);
        assert_eq!(render_table3(&rows).render().lines().count(), 4 + 2);
    }

    #[test]
    fn figure11_perfect_predictor_never_errs() {
        let rows = figure11_accuracy(Algorithm::Oracle, PredictorSpec::Perfect, 300);
        for (group, acc) in rows {
            assert_eq!(acc.false_positives, 0, "{group}");
            assert_eq!(acc.false_negatives, 0, "{group}");
            assert!(acc.total() > 0, "{group}");
        }
    }
}
