//! Structured experiment sweeps shared by the bench targets and the
//! report generator: the Figure 10 predictor-size sensitivity study and
//! the Figure 11 accuracy study.

use std::collections::BTreeMap;

use flexsnoop::{Algorithm, GroupAggregator, PredictorSpec};
use flexsnoop_predictor::AccuracyStats;
use flexsnoop_workload::{profiles, WorkloadGroup};

use crate::run_with_predictor;

/// The three Subset predictor sizes of §5.2.
pub const SUBSET_CONFIGS: [(&str, PredictorSpec); 3] = [
    ("Sub512", PredictorSpec::SUB512),
    ("Sub2k", PredictorSpec::SUB2K),
    ("Sub8k", PredictorSpec::SUB8K),
];

/// The three Superset predictor organizations of §5.2 (shared by the
/// conservative and aggressive algorithms).
pub const SUPERSET_CONFIGS: [(&str, PredictorSpec); 3] = [
    ("y512", PredictorSpec::SUP_Y512),
    ("y2k", PredictorSpec::SUP_Y2K),
    ("n2k", PredictorSpec::SUP_N2K),
];

/// The three Exact predictor sizes of §5.2.
pub const EXACT_CONFIGS: [(&str, PredictorSpec); 3] = [
    ("Exa512", PredictorSpec::EXA512),
    ("Exa2k", PredictorSpec::EXA2K),
    ("Exa8k", PredictorSpec::EXA8K),
];

/// The four (algorithm, predictor set) cases of Figure 10.
pub fn figure10_cases() -> [(Algorithm, &'static [(&'static str, PredictorSpec)]); 4] {
    [
        (Algorithm::Subset, &SUBSET_CONFIGS),
        (Algorithm::SupersetCon, &SUPERSET_CONFIGS),
        (Algorithm::SupersetAgg, &SUPERSET_CONFIGS),
        (Algorithm::Exact, &EXACT_CONFIGS),
    ]
}

/// Runs one algorithm over its predictor configurations and the full
/// workload suite; returns per-config execution times per group,
/// normalized to the middle (2K, §6.1 default) configuration.
pub fn figure10_sweep(
    algorithm: Algorithm,
    configs: &[(&str, PredictorSpec)],
    accesses: u64,
) -> Vec<(String, Vec<(&'static str, f64)>)> {
    let workloads = profiles::all();
    let mut per_config: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    for (name, spec) in configs {
        let mut agg = GroupAggregator::new();
        let tasks: Vec<_> = workloads
            .iter()
            .map(|w| {
                move || {
                    (
                        w.group,
                        run_with_predictor(w, algorithm, *spec, accesses).exec_time(),
                    )
                }
            })
            .collect();
        for (group, exec) in flexsnoop_engine::Executor::with_default().run(tasks) {
            agg.record(group, exec);
        }
        per_config.push((name.to_string(), agg.means()));
    }
    let baseline: BTreeMap<&'static str, f64> = per_config[1].1.iter().copied().collect();
    for (_, rows) in &mut per_config {
        for (group, v) in rows.iter_mut() {
            *v /= baseline[group];
        }
    }
    per_config
}

/// The ten predictor configurations of Figure 11, each with the algorithm
/// that exercises it. The perfect predictor rides Oracle; the two
/// Superset algorithms behave very similarly, so (like the paper) only
/// the conservative one is measured.
pub fn figure11_configs() -> Vec<(&'static str, Algorithm, PredictorSpec)> {
    vec![
        ("Perfect", Algorithm::Oracle, PredictorSpec::Perfect),
        ("Sub512", Algorithm::Subset, PredictorSpec::SUB512),
        ("Sub2k", Algorithm::Subset, PredictorSpec::SUB2K),
        ("Sub8k", Algorithm::Subset, PredictorSpec::SUB8K),
        ("SupCy512", Algorithm::SupersetCon, PredictorSpec::SUP_Y512),
        ("SupCy2k", Algorithm::SupersetCon, PredictorSpec::SUP_Y2K),
        ("SupCn2k", Algorithm::SupersetCon, PredictorSpec::SUP_N2K),
        ("Exa512", Algorithm::Exact, PredictorSpec::EXA512),
        ("Exa2k", Algorithm::Exact, PredictorSpec::EXA2K),
        ("Exa8k", Algorithm::Exact, PredictorSpec::EXA8K),
    ]
}

/// Runs one (algorithm, predictor) pair over the full suite, returning
/// merged accuracy per workload group in reporting order.
pub fn figure11_accuracy(
    algorithm: Algorithm,
    spec: PredictorSpec,
    accesses: u64,
) -> Vec<(&'static str, AccuracyStats)> {
    let workloads = profiles::all();
    let mut per_group: Vec<(&'static str, AccuracyStats)> = vec![
        ("SPLASH-2", AccuracyStats::default()),
        ("SPECjbb", AccuracyStats::default()),
        ("SPECweb", AccuracyStats::default()),
    ];
    let tasks: Vec<_> = workloads
        .iter()
        .map(|w| {
            move || {
                (
                    w.group,
                    run_with_predictor(w, algorithm, spec, accesses).accuracy,
                )
            }
        })
        .collect();
    for (group, acc) in flexsnoop_engine::Executor::with_default().run(tasks) {
        let idx = match group {
            WorkloadGroup::Splash2 => 0,
            WorkloadGroup::SpecJbb => 1,
            WorkloadGroup::SpecWeb => 2,
        };
        per_group[idx].1.merge(&acc);
    }
    per_group
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_normalizes_to_middle_config() {
        // A tiny sweep: the middle config must read exactly 1.0 per group.
        let rows = figure10_sweep(Algorithm::Subset, &SUBSET_CONFIGS, 300);
        assert_eq!(rows.len(), 3);
        for (group, v) in &rows[1].1 {
            assert!((v - 1.0).abs() < 1e-12, "{group}: {v}");
        }
    }

    #[test]
    fn figure11_perfect_predictor_never_errs() {
        let rows = figure11_accuracy(Algorithm::Oracle, PredictorSpec::Perfect, 300);
        for (group, acc) in rows {
            assert_eq!(acc.false_positives, 0, "{group}");
            assert_eq!(acc.false_negatives, 0, "{group}");
            assert!(acc.total() > 0, "{group}");
        }
    }
}
