//! Reproduces **Figure 11**: Supplier Predictor accuracy — the fraction of
//! true-positive, true-negative, false-positive and false-negative
//! predictions issued by read snoop requests, for each predictor
//! implementation plus a perfect predictor.
//!
//! Paper shape: the perfect predictor makes ~4 negative predictions per
//! positive on SPLASH-2/SPECweb (supplier ≈ 5 nodes away) and almost only
//! negatives on SPECjbb (no suppliers); Subset predictors show few false
//! negatives, vanishing at 8K entries; Superset predictors show 20–40%
//! false positives; Exact predictors' true-positive fraction shrinks as
//! the table shrinks (downgrades remove suppliers).

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{Algorithm, PredictorSpec};
use flexsnoop_bench::sweeps::{figure11_accuracy, figure11_configs};
use flexsnoop_bench::{run_with_predictor, FIGURE_ACCESSES};
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 11: Supplier Predictor accuracy (fractions of predictions) ===");
    let mut table = Table::with_columns(&["predictor", "group", "TP", "TN", "FP", "FN"]);
    for (name, algorithm, spec) in figure11_configs() {
        for (group, acc) in figure11_accuracy(algorithm, spec, FIGURE_ACCESSES) {
            table.row(vec![
                name.to_string(),
                group.to_string(),
                format!("{:.3}", acc.fraction_true_positive()),
                format!("{:.3}", acc.fraction_true_negative()),
                format!("{:.3}", acc.fraction_false_positive()),
                format!("{:.3}", acc.fraction_false_negative()),
            ]);
        }
    }
    println!("{}", table.render());
    let workload = profiles::specweb().with_accesses(400);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("specweb_exa2k_400", |b| {
        b.iter(|| run_with_predictor(&workload, Algorithm::Exact, PredictorSpec::EXA2K, 400))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
