//! Reproduces **Figure 4**: the design space of Flexible Snooping
//! algorithms — unloaded snoop-request latency until the supplier is found
//! (X) versus snoop operations per request (Y).
//!
//! The paper places the algorithms qualitatively: Eager at (low, N−1),
//! Lazy at (high, (N−1)/2), Oracle at the origin, Subset on the low-latency
//! axis above Lazy, the Supersets at low/medium latency with few snoops,
//! and Exact at the origin with Oracle.
//!
//! An unloaded machine is approximated with a single-core-active uniform
//! workload (one outstanding request at a time, no contention).

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::SEED;
use flexsnoop_metrics::Table;
use flexsnoop_workload::{PoolKind, PoolSpec, WorkloadGroup, WorkloadProfile};

/// A near-unloaded scenario: core 0 on CMP 0 reads a shared pool that the
/// other seven nodes already cached (they warm it up early, then idle), so
/// each of core 0's reads finds a supplier at a uniform distance with no
/// competing traffic.
fn unloaded_workload() -> WorkloadProfile {
    WorkloadProfile {
        name: "unloaded".to_string(),
        group: WorkloadGroup::Splash2,
        cores: 8,
        accesses_per_core: 3_000,
        write_fraction: 0.0,
        // Long think times keep at most one request in flight on average.
        think: (2_000, 3_000),
        cluster: 0,
        pools: vec![PoolSpec {
            kind: PoolKind::SharedRo,
            lines: 1_024,
            weight: 1.0,
            hot_fraction: 0.0,
        }],
    }
}

fn fig4_rows() -> Table {
    let workload = unloaded_workload();
    let mut table = Table::with_columns(&[
        "algorithm",
        "unloaded latency [cyc]",
        "snoops/request",
        "paper placement",
    ]);
    let placement = |alg: Algorithm| match alg {
        Algorithm::Lazy => "high latency, (N-1)/2 snoops",
        Algorithm::Eager => "low latency, N-1 snoops",
        Algorithm::Oracle => "origin",
        Algorithm::Subset => "low latency, above Lazy snoops",
        Algorithm::SupersetCon => "medium latency, few snoops",
        Algorithm::SupersetAgg => "low latency, few snoops",
        Algorithm::Exact => "origin (with Oracle)",
        Algorithm::SupersetDyn(_) => "between Con and Agg",
    };
    for alg in Algorithm::PAPER_SET {
        let s = run_workload(&workload, alg, None, SEED).expect("run");
        table.row(vec![
            alg.to_string(),
            format!("{:.0}", s.read_latency.mean()),
            format!("{:.2}", s.snoops_per_read()),
            placement(alg).to_string(),
        ]);
    }
    table
}

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 4: design space (unloaded latency vs snoops/request) ===");
    println!("{}", fig4_rows().render());
    let workload = unloaded_workload().with_accesses(300);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("unloaded_oracle_300", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Oracle, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
