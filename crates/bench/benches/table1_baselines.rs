//! Reproduces **Table 1**: characteristics of the Lazy, Eager and Oracle
//! baselines under a perfectly-uniform access distribution where one node
//! can always supply the data.
//!
//! Paper's analytical values (N = 8 CMP nodes):
//!
//! | algorithm | snoops/request | messages/request | latency class |
//! |-----------|----------------|------------------|---------------|
//! | Lazy      | (N−1)/2 = 3.5  | 1                | high          |
//! | Eager     | N−1 = 7        | ≈2               | low           |
//! | Oracle    | 1              | 1                | low           |

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::SEED;
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

/// Runs the uniform microbenchmark with a warm shared pool so that nearly
/// every ring read finds a supplier at a uniformly-distributed distance.
fn table1_rows() -> Table {
    let workload = profiles::uniform_microbench(8, 4_000);
    let mut table = Table::with_columns(&[
        "algorithm",
        "snoops/request (paper)",
        "ring msgs/request, x Lazy (paper)",
        "mean unloaded latency [cyc]",
    ]);
    let lazy_hops = run_workload(&workload, Algorithm::Lazy, None, SEED)
        .expect("lazy run")
        .ring_hops_per_read();
    for (alg, paper_snoops, paper_msgs) in [
        (Algorithm::Lazy, "(N-1)/2 = 3.5", "1.00"),
        (Algorithm::Eager, "N-1 = 7", "~2"),
        (Algorithm::Oracle, "1", "1.00"),
    ] {
        let stats = run_workload(&workload, alg, None, SEED).expect("run");
        table.row(vec![
            alg.to_string(),
            format!("{:.2}  ({paper_snoops})", stats.snoops_per_read()),
            format!(
                "{:.2}  ({paper_msgs})",
                stats.ring_hops_per_read() / lazy_hops
            ),
            format!("{:.0}", stats.read_latency.mean()),
        ]);
    }
    table
}

fn bench(c: &mut Criterion) {
    println!("\n=== Table 1: baseline algorithm characteristics ===");
    println!("{}", table1_rows().render());
    let workload = profiles::uniform_microbench(8, 500);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("lazy_uniform_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Lazy, None, SEED).unwrap())
    });
    group.bench_function("eager_uniform_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Eager, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
