//! Reproduces **Table 1**: characteristics of the Lazy, Eager and Oracle
//! baselines under a perfectly-uniform access distribution where one node
//! can always supply the data.
//!
//! Paper's analytical values (N = 8 CMP nodes):
//!
//! | algorithm | snoops/request | messages/request | latency class |
//! |-----------|----------------|------------------|---------------|
//! | Lazy      | (N−1)/2 = 3.5  | 1                | high          |
//! | Eager     | N−1 = 7        | ≈2               | low           |
//! | Oracle    | 1              | 1                | low           |

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::sweeps::{render_table1, table1_rows};
use flexsnoop_bench::SEED;
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Table 1: baseline algorithm characteristics ===");
    println!("{}", render_table1(&table1_rows(4_000)).render());
    let workload = profiles::uniform_microbench(8, 500);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("lazy_uniform_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Lazy, None, SEED).unwrap())
    });
    group.bench_function("eager_uniform_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Eager, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
