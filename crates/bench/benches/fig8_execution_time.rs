//! Reproduces **Figure 8**: total execution time, normalized to Lazy.
//!
//! Paper shape: Lazy is the slowest; Superset Agg is the fastest and
//! tracks Oracle (−14% / −13% / −6% vs Lazy on SPLASH-2 / SPECjbb /
//! SPECweb); Eager and Subset track Superset Agg closely; Superset Con is
//! slightly slower (false positives put snoops on the critical path);
//! Exact loses ground where downgrades push supply to memory.

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::{figure_report, FIGURE_ACCESSES, SEED};
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 8: execution time, normalized to Lazy ===");
    println!(
        "{}",
        figure_report(
            "rows: algorithm; columns: workload group (SPLASH-2 = geometric mean)",
            |s| s.exec_time(),
            true,
            FIGURE_ACCESSES,
        )
    );
    let workload = profiles::splash2_apps().remove(0).with_accesses(400);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("barnes_superset_agg_400", |b| {
        b.iter(|| run_workload(&workload, Algorithm::SupersetAgg, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
