//! Reproduces **Figure 10**: sensitivity of execution time to the
//! Supplier Predictor size and organization.
//!
//! Twelve predictor configurations (paper §5.2): `Sub512/Sub2k/Sub8k` for
//! Subset, `y512/y2k/n2k` for each Superset variant, `Exa512/Exa2k/Exa8k`
//! for Exact. Each bar is normalized to the §6.1 default (the middle, 2K
//! configuration) of its algorithm and workload group.
//!
//! Paper shape: almost flat everywhere — "these environments are not very
//! sensitive to the size and organization of the Supplier Predictor" —
//! except Exact on SPLASH-2, where small predictors cause many downgrades.

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{Algorithm, PredictorSpec};
use flexsnoop_bench::sweeps::{figure10_cases, figure10_sweep};
use flexsnoop_bench::{run_with_predictor, FIGURE_ACCESSES};
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 10: execution time vs predictor size (normalized to the 2K config) ===");
    let mut table =
        Table::with_columns(&["algorithm", "predictor", "SPLASH-2", "SPECjbb", "SPECweb"]);
    for (algorithm, configs) in figure10_cases() {
        for (name, rows) in figure10_sweep(algorithm, configs, FIGURE_ACCESSES) {
            let get = |key: &str| {
                rows.iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                algorithm.to_string(),
                name,
                get("SPLASH-2"),
                get("SPECjbb"),
                get("SPECweb"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: near-1.0 everywhere except Exact/Exa512 on SPLASH-2\n\
         (small Exact tables downgrade aggressively; paper §6.2)."
    );
    let workload = profiles::specweb().with_accesses(400);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("specweb_sub512_400", |b| {
        b.iter(|| run_with_predictor(&workload, Algorithm::Subset, PredictorSpec::SUB512, 400))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
