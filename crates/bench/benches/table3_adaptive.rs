//! Reproduces **Table 3**: characterization of the adaptive Flexible
//! Snooping algorithms — their predictor error class and the resulting
//! snoop-operation and message counts:
//!
//! | algorithm    | FP? | FN? | snoops/request    | msgs/request |
//! |--------------|-----|-----|-------------------|--------------|
//! | Subset       | no  | yes | Lazy + α·FN       | 1–2          |
//! | Superset Con | yes | no  | 1 + α·FP          | 1            |
//! | Superset Agg | yes | no  | 1 + α·FP          | 1–2          |
//! | Exact        | no  | no  | 1                 | 1            |
//!
//! The harness verifies all four claims empirically on a sharing-heavy
//! workload: error-class counters, snoop counts relative to Lazy, and
//! message counts relative to Lazy (1.0 = combined, up to ~2 = split).

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::sweeps::{render_table3, table3_rows};
use flexsnoop_bench::SEED;
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Table 3: adaptive algorithm characterization ===");
    println!("{}", render_table3(&table3_rows(8_000)).render());
    println!(
        "expectations: Subset FP=0, Superset/Exact FN=0; Subset snoops ≥ Lazy;\n\
         Superset snoops small; Exact ≈ 1 per supplied request;\n\
         msgs: SupersetCon & Exact = 1.00x, Subset & SupersetAgg in (1, 2)."
    );
    let workload = profiles::specweb().with_accesses(500);
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("superset_con_specweb_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::SupersetCon, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
