//! Reproduces **Table 3**: characterization of the adaptive Flexible
//! Snooping algorithms — their predictor error class and the resulting
//! snoop-operation and message counts:
//!
//! | algorithm    | FP? | FN? | snoops/request    | msgs/request |
//! |--------------|-----|-----|-------------------|--------------|
//! | Subset       | no  | yes | Lazy + α·FN       | 1–2          |
//! | Superset Con | yes | no  | 1 + α·FP          | 1            |
//! | Superset Agg | yes | no  | 1 + α·FP          | 1–2          |
//! | Exact        | no  | no  | 1                 | 1            |
//!
//! The harness verifies all four claims empirically on a sharing-heavy
//! workload: error-class counters, snoop counts relative to Lazy, and
//! message counts relative to Lazy (1.0 = combined, up to ~2 = split).

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::SEED;
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn table3_rows() -> Table {
    let workload = profiles::splash2_apps()
        .into_iter()
        .next()
        .expect("barnes")
        .with_accesses(8_000);
    let lazy = run_workload(&workload, Algorithm::Lazy, None, SEED).expect("lazy");
    let mut table = Table::with_columns(&[
        "algorithm",
        "FP observed",
        "FN observed",
        "snoops/request",
        "vs Lazy",
        "msgs/request (x Lazy)",
    ]);
    for alg in [
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ] {
        let s = run_workload(&workload, alg, None, SEED).expect("run");
        table.row(vec![
            alg.to_string(),
            s.accuracy.false_positives.to_string(),
            s.accuracy.false_negatives.to_string(),
            format!("{:.2}", s.snoops_per_read()),
            format!("{:+.2}", s.snoops_per_read() - lazy.snoops_per_read()),
            format!("{:.2}", s.ring_hops_per_read() / lazy.ring_hops_per_read()),
        ]);
    }
    table
}

fn bench(c: &mut Criterion) {
    println!("\n=== Table 3: adaptive algorithm characterization ===");
    let rows = table3_rows();
    println!("{}", rows.render());
    println!(
        "expectations: Subset FP=0, Superset/Exact FN=0; Subset snoops ≥ Lazy;\n\
         Superset snoops small; Exact ≈ 1 per supplied request;\n\
         msgs: SupersetCon & Exact = 1.00x, Subset & SupersetAgg in (1, 2)."
    );
    let workload = profiles::specweb().with_accesses(500);
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("superset_con_specweb_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::SupersetCon, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
