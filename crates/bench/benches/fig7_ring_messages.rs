//! Reproduces **Figure 7**: total number of read snoop requests and
//! replies in the ring (counted as ring-link crossings), normalized to
//! Lazy.
//!
//! Paper shape: Eager ≈ 1.9× (request + reply on all but the first
//! segment); Subset and Superset Agg in between and similar — except on
//! SPECjbb, where Superset Agg filters most nodes and stays low while
//! Subset still splits; Superset Con, Exact and Oracle at exactly 1×.

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::{figure_report, FIGURE_ACCESSES, SEED};
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 7: ring read messages, normalized to Lazy ===");
    println!(
        "{}",
        figure_report(
            "rows: algorithm; columns: workload group (SPLASH-2 = geometric mean)",
            |s| s.read_ring_hops as f64,
            true,
            FIGURE_ACCESSES,
        )
    );
    let workload = profiles::specweb().with_accesses(500);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("specweb_subset_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Subset, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
