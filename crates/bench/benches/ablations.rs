//! Ablation studies for the design choices DESIGN.md calls out — beyond
//! the paper's own evaluation:
//!
//! * **Embedded rings: 1 vs 2** — address-interleaved rings halve snoop
//!   traffic per link (§2.2 "one or more unidirectional rings").
//! * **Home-node prefetch: on vs off** — §2.2's heuristic DRAM prefetch
//!   (312 vs 710-cycle remote memory round trips).
//! * **Exclude cache: on vs off** — the JETTY-style false-positive filter
//!   of the Superset predictor (§4.3.2).
//! * **Exclusive fill: on vs off** — installing `E` on memory fills when
//!   the ring proved no other copy exists.
//! * **Dynamic Con/Agg governor** — the adaptive system §6.1.5 envisions.
//! * **Write-snoop presence filtering** — §5.3 notes write snoops would
//!   need a *presence* predictor; this implements one (counting Bloom over
//!   all cached lines, no false negatives) and measures the saving.

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{Algorithm, DynPolicy, PredictorSpec};
use flexsnoop_bench::{run_with_machine, run_with_predictor};
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

const ACCESSES: u64 = 8_000;

fn rings_ablation(table: &mut Table) {
    let w = profiles::splash2_apps().remove(0); // barnes
    for rings in [1usize, 2] {
        let s = run_with_machine(&w, Algorithm::SupersetAgg, ACCESSES, |m| {
            m.ring.rings = rings
        });
        table.row(vec![
            format!("rings={rings}"),
            "SupersetAgg/barnes".into(),
            format!("{}", s.exec_cycles.as_u64()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.snoops_per_read()),
        ]);
    }
}

fn prefetch_ablation(table: &mut Table) {
    let w = profiles::specjbb();
    for on in [true, false] {
        let s = run_with_machine(&w, Algorithm::Lazy, ACCESSES, |m| {
            m.memory.home_prefetch = on
        });
        table.row(vec![
            format!("home_prefetch={on}"),
            "Lazy/specjbb".into(),
            format!("{}", s.exec_cycles.as_u64()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.snoops_per_read()),
        ]);
    }
}

fn exclude_cache_ablation(table: &mut Table) {
    let w = profiles::specweb();
    for (name, spec) in [
        ("exclude=2k", PredictorSpec::SUP_Y2K),
        (
            "exclude=off",
            PredictorSpec::Superset {
                bloom: flexsnoop_predictor::spec::BloomVariant::Y,
                exclude_entries: 0,
            },
        ),
    ] {
        let s = run_with_predictor(&w, Algorithm::SupersetCon, spec, ACCESSES);
        table.row(vec![
            name.into(),
            "SupersetCon/specweb".into(),
            format!("{}", s.exec_cycles.as_u64()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.snoops_per_read()),
        ]);
    }
}

fn exclusive_fill_ablation(table: &mut Table) {
    let w = profiles::splash2_apps().remove(0);
    for on in [false, true] {
        let s = run_with_machine(&w, Algorithm::Lazy, ACCESSES, |m| {
            m.policy.exclusive_fill = on
        });
        table.row(vec![
            format!("exclusive_fill={on}"),
            "Lazy/barnes".into(),
            format!("{}", s.exec_cycles.as_u64()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.snoops_per_read()),
        ]);
    }
}

fn dynamic_governor_ablation(table: &mut Table) {
    let w = profiles::specweb();
    for (name, alg) in [
        ("SupersetCon", Algorithm::SupersetCon),
        // The specweb snoop-energy rate is ~110 nJ/kcycle under the
        // conservative policy; budgets bracket it so the governor's two
        // regimes are both visible.
        (
            "Dyn(EnergyBudget=110nJ/kcyc)",
            Algorithm::SupersetDyn(DynPolicy::EnergyBudget(110.0)),
        ),
        (
            "Dyn(EnergyBudget=140nJ/kcyc)",
            Algorithm::SupersetDyn(DynPolicy::EnergyBudget(140.0)),
        ),
        ("SupersetAgg", Algorithm::SupersetAgg),
    ] {
        let s = run_with_machine(&w, alg, ACCESSES, |_| {});
        table.row(vec![
            name.into(),
            "specweb".into(),
            format!("{}", s.exec_cycles.as_u64()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.snoops_per_read()),
        ]);
    }
}

fn write_filter_ablation(table: &mut Table) {
    let w = profiles::specjbb();
    for on in [false, true] {
        let s = run_with_machine(&w, Algorithm::SupersetCon, ACCESSES, |m| {
            m.policy.write_filtering = on
        });
        table.row(vec![
            format!("write_filtering={on}"),
            "SupersetCon/specjbb".into(),
            format!("{}", s.exec_cycles.as_u64()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.write_snoops as f64 / s.write_txns.max(1) as f64),
        ]);
    }
}

fn bench(c: &mut Criterion) {
    println!("\n=== Ablations (design-choice studies beyond the paper) ===");
    let mut table = Table::with_columns(&[
        "configuration",
        "scenario",
        "exec cycles",
        "energy [uJ]",
        "snoops/read",
    ]);
    rings_ablation(&mut table);
    prefetch_ablation(&mut table);
    exclude_cache_ablation(&mut table);
    exclusive_fill_ablation(&mut table);
    dynamic_governor_ablation(&mut table);
    write_filter_ablation(&mut table);
    println!("{}", table.render());
    println!("(write_filtering rows report write snoops per write transaction)");
    let w = profiles::specweb().with_accesses(400);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("single_ring_specweb_400", |b| {
        b.iter(|| run_with_machine(&w, Algorithm::SupersetAgg, 400, |m| m.ring.rings = 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
