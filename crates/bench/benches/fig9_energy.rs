//! Reproduces **Figure 9**: energy consumed by read and write snoop
//! requests and replies, normalized to Lazy.
//!
//! Paper shape: Eager ≈ 1.8× Lazy (twice the messages, all the snoops);
//! Subset and Superset Agg in between, with Superset Agg 9–17% below
//! Eager; Superset Con the most efficient (Lazy's message count, a
//! fraction of its snoops, minus predictor overhead ⇒ just below Lazy, and
//! 36–42% below Superset Agg); Exact pays for downgrades (write-backs,
//! re-reads and upgrade transactions) — dramatically so in the paper's
//! SPLASH-2 runs (3.22×), directionally here (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::{
    aggregate, paper_workloads, render_aggregate, run_matrix, FIGURE_ACCESSES, SEED,
};
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 9: snoop energy, normalized to Lazy ===");
    let algorithms = Algorithm::PAPER_SET;
    let results = run_matrix(&paper_workloads(), &algorithms, FIGURE_ACCESSES, SEED);
    let agg = aggregate(&results, &algorithms, |s| s.energy_nj(), true);
    println!(
        "{}",
        render_aggregate(
            "rows: algorithm; columns: workload group (SPLASH-2 = geometric mean)",
            &agg,
            &algorithms
        )
    );
    // The headline claims, computed directly:
    let get = |alg: &str, grp: &str| {
        agg[alg]
            .iter()
            .find(|(k, _)| *k == grp)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    for grp in ["SPLASH-2", "SPECjbb", "SPECweb"] {
        let eager = get("Eager", grp);
        let agg_v = get("SupersetAgg", grp);
        let con = get("SupersetCon", grp);
        println!(
            "{grp}: SupersetAgg is {:.0}% below Eager (paper: 9-17%); \
             SupersetCon is {:.0}% below SupersetAgg (paper: 36-42%)",
            (1.0 - agg_v / eager) * 100.0,
            (1.0 - con / agg_v) * 100.0
        );
    }
    let workload = profiles::specjbb().with_accesses(500);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("specjbb_eager_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Eager, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
