//! Microbenchmarks for the million-node scaling substrate: sharded
//! event-wheel push/pop throughput and struct-of-arrays node-state
//! access (the flat predictor bank and a full tiny-cache scale machine).
//!
//! Macro numbers (events/sec, bytes/node at 1k/128k/1M nodes) come from
//! `flexsnoop bench --scale`; these benches isolate the two data
//! structures that sweep leans on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flexsnoop::{energy_model_for, Algorithm, MachineConfig, Simulator, VecStream};
use flexsnoop_engine::{Cycle, Cycles, QueueKind, ShardedScheduler, SplitMix64};
use flexsnoop_predictor::PredictorSpec;
use flexsnoop_workload::{AccessStream, LineAddr, MemAccess};

const EVENTS: u64 = 20_000;

/// Pushes `EVENTS` timestamped events round-robin across the shards,
/// then pops them all back in global order.
fn wheel_push_pop(segments: usize) -> u64 {
    let mut sched: ShardedScheduler<u64> = ShardedScheduler::new(QueueKind::Bucketed, segments);
    let mut rng = SplitMix64::new(0xFEED + segments as u64);
    for i in 0..EVENTS {
        let at = Cycle::new(rng.next_u64() % 10_000);
        sched.schedule_at(i as usize % segments, at, i);
    }
    let mut sum = 0u64;
    while let Some((_, _, ev)) = sched.pop() {
        sum = sum.wrapping_add(ev);
    }
    sum
}

/// Sweeps predictions across a 100k-node flat Subset bank (the
/// struct-of-arrays predictor layout).
fn bank_sweep(nodes: usize, lookups: u64) -> u64 {
    let mut bank = PredictorSpec::Subset { entries: 8 }.build_bank(nodes);
    let mut hits = 0u64;
    for i in 0..lookups {
        let node = (i as usize * 7919) % nodes;
        let line = LineAddr(i % 64);
        if i % 3 == 0 {
            bank.supplier_gained(node, line);
        }
        hits += u64::from(bank.predict(node, line));
    }
    hits
}

/// One full tiny-cache scale-machine run: 8 requesters on a 4096-node
/// ring, exercising the sparse gateway map, residency counters and
/// per-segment wheels together.
fn scale_sim_run() -> u64 {
    let nodes = 4096usize;
    let accesses = 8u64;
    let machine = MachineConfig::scale(nodes);
    let streams: Vec<Box<dyn AccessStream + Send>> = (0..nodes)
        .map(|core| {
            let n = if core % (nodes / 8) == 0 { accesses } else { 0 };
            let reads = (0..n)
                .map(|k| MemAccess::read(LineAddr((core as u64 + k) % 32), Cycles(10)))
                .collect();
            Box::new(VecStream::new(reads)) as Box<dyn AccessStream + Send>
        })
        .collect();
    let spec = PredictorSpec::None;
    let mut sim = Simulator::new(
        machine,
        Algorithm::Lazy,
        spec,
        energy_model_for(&spec),
        streams,
        accesses,
    )
    .expect("scale machine configures");
    sim.set_segments(4);
    sim.run().events
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for segments in [1usize, 4, 16] {
        group.bench_function(format!("wheel_push_pop_{segments}seg"), |b| {
            b.iter(|| black_box(wheel_push_pop(segments)))
        });
    }
    group.bench_function("soa_subset_bank_100k_nodes", |b| {
        b.iter(|| black_box(bank_sweep(100_000, 50_000)))
    });
    group.bench_function("soa_scale_sim_4096_nodes", |b| {
        b.iter(|| black_box(scale_sim_run()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
