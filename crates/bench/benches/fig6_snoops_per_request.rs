//! Reproduces **Figure 6**: average number of snoop operations per read
//! snoop request (absolute), per workload group.
//!
//! Paper shape: Eager snoops all 7 CMPs; Lazy ≈ 3.5–7 (close to 7 on
//! SPECjbb where most requests go to memory); Subset slightly above Lazy;
//! the Supersets at 2–3 with Con slightly below Agg; Oracle below 1
//! (memory-bound requests snoop nothing); Exact at or below Oracle
//! (downgrades shift supply to memory).

use criterion::{criterion_group, criterion_main, Criterion};
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_bench::{figure_report, FIGURE_ACCESSES, SEED};
use flexsnoop_workload::profiles;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 6: snoop operations per read snoop request (absolute) ===");
    println!(
        "{}",
        figure_report(
            "rows: algorithm; columns: workload group (SPLASH-2 = arithmetic mean of 11 apps)",
            |s| s.snoops_per_read(),
            false,
            FIGURE_ACCESSES,
        )
    );
    let workload = profiles::specjbb().with_accesses(500);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("specjbb_lazy_500", |b| {
        b.iter(|| run_workload(&workload, Algorithm::Lazy, None, SEED).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
