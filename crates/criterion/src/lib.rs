//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion crate cannot be fetched. The bench targets only need a thin
//! timing loop (`Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`) plus the `criterion_group!` /
//! `criterion_main!` macros; this crate provides exactly that, reporting
//! min/mean/max wall-clock times per benchmark to stdout.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level handle passed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` for `sample_size` samples and prints a summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = if samples.is_empty() {
            Duration::ZERO
        } else {
            samples.iter().sum::<Duration>() / samples.len() as u32
        };
        println!(
            "{}/{}: time [{:.3?} {:.3?} {:.3?}] ({} samples)",
            self.name,
            id,
            min,
            mean,
            max,
            samples.len()
        );
        self
    }

    /// Ends the group (match the real criterion API; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one sample of `f` (one iteration per sample keeps the shim
    /// simple; the workloads measured here run for milliseconds).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                $target(&mut $crate::Criterion::default());
            )+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
