//! Synthetic workloads standing in for SPLASH-2, SPECjbb and SPECweb.
//!
//! The paper drives its simulator with SESC-executed SPLASH-2 binaries and
//! Simics traces of SPECjbb 2000 / SPECweb 2005 — none of which can ship
//! with this reproduction. What the evaluated algorithms are sensitive to,
//! however, is not instruction semantics but the *coherence behaviour* of
//! the access streams: how often a read miss finds a cache supplier, how
//! far away that supplier sits on the ring, how much data is written and
//! re-read by other CMPs, and how large the working sets are. Figure 11's
//! "perfect predictor" bars pin these observables down per workload.
//!
//! This crate synthesizes per-core access streams from five composable
//! sharing patterns ([`PoolKind`]):
//!
//! * `Private` — per-core data, high locality, no sharing.
//! * `SharedRo` — read-mostly shared data (one global master supplies).
//! * `ProducerConsumer` — lines written by a home core, read by others
//!   (dirty cache-to-cache transfers, `D → T`).
//! * `Migratory` — read-modify-write by rotating cores (locks, reductions).
//! * `Streaming` — large sequential regions exceeding cache capacity
//!   (memory-bound, no suppliers).
//!
//! Named profiles ([`profiles`]) mix these with per-application parameters
//! calibrated against the paper's reported behaviours. Streams are
//! generated deterministically from a seed and independently of simulation
//! timing, so every snooping algorithm sees byte-identical traces — the
//! same methodology the paper uses for its trace-driven SPEC runs.

pub mod gen;
pub mod phase;
pub mod profiles;
pub mod trace;

pub use gen::{AccessStream, SyntheticStream};
pub use phase::{PhasedStream, StreamPhase};
pub use profiles::{WorkloadGroup, WorkloadProfile};
pub use trace::Trace;

// Re-exported because [`MemAccess::line`] is part of this crate's public
// API; stream builders should not need a direct flexsnoop-mem dependency.
pub use flexsnoop_mem::LineAddr;

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::Cycles;

/// One memory access issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The cache line touched.
    pub line: LineAddr,
    /// `true` for a store, `false` for a load.
    pub write: bool,
    /// Compute time the core spends before issuing this access.
    pub think: Cycles,
}

impl MemAccess {
    /// A read with the given think time.
    pub fn read(line: LineAddr, think: Cycles) -> Self {
        MemAccess {
            line,
            write: false,
            think,
        }
    }

    /// A write with the given think time.
    pub fn write(line: LineAddr, think: Cycles) -> Self {
        MemAccess {
            line,
            write: true,
            think,
        }
    }
}

impl Snapshot for MemAccess {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.line.0);
        w.put_bool(self.write);
        w.put_cycles(self.think);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.line = LineAddr(r.get_u64()?);
        self.write = r.get_bool()?;
        self.think = r.get_cycles()?;
        Ok(())
    }
}

/// The sharing pattern of one address-pool component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Per-core private data: each core only touches its own partition.
    Private,
    /// Read-mostly shared data: all cores read the same lines.
    SharedRo,
    /// Producer–consumer: each line has a producing core that writes it;
    /// all others read it.
    ProducerConsumer,
    /// Migratory data: whichever core selects a line reads then writes it.
    Migratory,
    /// Streaming: long sequential walks through a region far larger than
    /// the caches; essentially no reuse or sharing.
    Streaming,
}

/// One weighted address-pool component of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSpec {
    /// The sharing pattern.
    pub kind: PoolKind,
    /// Pool size in cache lines (per core for `Private`/`Streaming`,
    /// total for the shared kinds).
    pub lines: u64,
    /// Relative probability of an access landing in this pool.
    pub weight: f64,
    /// Fraction of accesses concentrated on a hot eighth of the pool
    /// (coarse locality knob; 0.0 = uniform).
    pub hot_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        let r = MemAccess::read(LineAddr(1), Cycles(5));
        assert!(!r.write);
        let w = MemAccess::write(LineAddr(1), Cycles(5));
        assert!(w.write);
        assert_eq!(r.line, w.line);
    }
}
