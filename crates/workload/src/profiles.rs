//! Named workload profiles standing in for the paper's benchmark suite.
//!
//! Eleven SPLASH-2 applications (all the paper runs: every SPLASH-2 code
//! except Volrend), SPECjbb 2000 and SPECweb 2005. Each profile is a
//! calibrated mix of sharing-pattern pools (see the crate docs for the
//! substitution argument):
//!
//! * **SPLASH-2** profiles run 32 cores (8 CMPs × 4) with substantial
//!   sharing — a read miss usually finds a cache supplier a few nodes away.
//! * **SPECjbb** runs 8 cores (one per CMP, §5.1) with warehouse-private
//!   working sets larger than the L2 — most misses go to memory, almost no
//!   cache-to-cache transfers (Figure 11: rarely a supplier).
//! * **SPECweb** runs 8 cores with a shared read-mostly content cache —
//!   intermediate sharing.

use crate::gen::SyntheticStream;
use crate::{PoolKind, PoolSpec};

/// The three workload groups the paper reports separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadGroup {
    /// The 11 SPLASH-2 applications (32 cores).
    Splash2,
    /// SPECjbb 2000 (8 cores, one per CMP).
    SpecJbb,
    /// SPECweb 2005 e-commerce (8 cores, one per CMP).
    SpecWeb,
}

impl std::fmt::Display for WorkloadGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadGroup::Splash2 => "SPLASH-2",
            WorkloadGroup::SpecJbb => "SPECjbb",
            WorkloadGroup::SpecWeb => "SPECweb",
        };
        f.write_str(s)
    }
}

/// A complete workload description: cores, length and pool mix.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `"fft"`).
    pub name: String,
    /// Which reporting group it belongs to.
    pub group: WorkloadGroup,
    /// Number of cores that run it.
    pub cores: usize,
    /// Accesses each core issues before finishing.
    pub accesses_per_core: u64,
    /// Store fraction within `Private` pools.
    pub write_fraction: f64,
    /// Uniform compute-time range between accesses, in cycles.
    pub think: (u64, u64),
    /// Shared-pool scope: `0` shares across all cores, `n > 0` scopes the
    /// shared pool kinds to clusters of `n` consecutive cores (see
    /// [`SyntheticStream::with_cluster`]).
    pub cluster: usize,
    /// The weighted pool mix.
    pub pools: Vec<PoolSpec>,
}

impl WorkloadProfile {
    /// The access stream for one core. `seed` identifies the run; each
    /// core derives an independent sub-stream.
    ///
    /// # Panics
    ///
    /// Panics if `core >= self.cores`.
    pub fn stream(&self, core: usize, seed: u64) -> SyntheticStream {
        assert!(core < self.cores, "core {core} out of range");
        // Hash the core index into the seed so streams are independent.
        let core_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(core as u64 + 1);
        SyntheticStream::new(
            core,
            self.cores,
            self.pools.clone(),
            self.write_fraction,
            self.think,
            core_seed,
        )
        .with_cluster(self.cluster)
    }

    /// Streams for all cores.
    pub fn streams(&self, seed: u64) -> Vec<SyntheticStream> {
        (0..self.cores).map(|c| self.stream(c, seed)).collect()
    }

    /// Returns this profile with a different per-core access count
    /// (benchmarks shorten runs; accuracy studies lengthen them).
    pub fn with_accesses(mut self, accesses_per_core: u64) -> Self {
        self.accesses_per_core = accesses_per_core;
        self
    }

    /// Returns this profile spread over a different core count (machine
    /// scaling and topology studies). The pool mix is per-core, so the
    /// sharing pattern scales with the machine.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Returns this profile with the shared pools scoped to clusters of
    /// `cluster` consecutive cores (`0` restores machine-wide sharing).
    /// On a hierarchical machine, setting the cluster to the local-ring
    /// size pins each application instance's sharing inside one ring —
    /// the consolidated-server scenario the locality table targets.
    pub fn with_cluster(mut self, cluster: usize) -> Self {
        self.cluster = cluster;
        self
    }
}

fn pool(kind: PoolKind, lines: u64, weight: f64, hot_fraction: f64) -> PoolSpec {
    PoolSpec {
        kind,
        lines,
        weight,
        hot_fraction,
    }
}

/// Builds one SPLASH-2-style profile from its distinguishing knobs.
///
/// All SPLASH-2 profiles share the 32-core structure; apps differ in how
/// much of the access mix is private vs shared-RO vs producer-consumer vs
/// migratory vs streaming, in working-set sizes, locality (`hot`), and
/// write intensity. The common scale factors are calibrated so that the
/// suite-level observables match the paper's Figure 6/11 behaviour: a read
/// miss finds a cache supplier ~65-70% of the time at a uniform ring
/// distance, and Lazy performs ~4.5-5.5 snoops per read request.
#[allow(clippy::too_many_arguments)]
fn splash_app(
    name: &str,
    private_w: f64,
    shared_ro_w: f64,
    prod_cons_w: f64,
    migratory_w: f64,
    streaming_w: f64,
    private_lines: u64,
    hot: f64,
    write_fraction: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name: name.to_string(),
        group: WorkloadGroup::Splash2,
        cores: 32,
        accesses_per_core: 12_000,
        write_fraction,
        think: (120, 400),
        cluster: 0,
        pools: vec![
            pool(PoolKind::Private, private_lines, private_w, hot),
            pool(PoolKind::SharedRo, 2_048, shared_ro_w, 0.8),
            pool(PoolKind::ProducerConsumer, 4_096, prod_cons_w, 0.8),
            pool(PoolKind::Migratory, 1_024, migratory_w, 0.3),
            pool(PoolKind::Streaming, 2_048, streaming_w, 0.0),
        ],
    }
}

/// The 11 SPLASH-2 applications the paper evaluates (§5.1: all except
/// Volrend). Mixes reflect each code's published sharing character:
/// FFT/Radix/Ocean are permutation- and grid-heavy with large write-hot
/// working sets (these are also where Exact's downgrades bite), Barnes/
/// FMM/Radiosity chase shared trees with migratory updates, LU exchanges
/// blocked producer-consumer panels, Raytrace reads a large shared scene,
/// the Water codes are compute-bound with small migratory molecule
/// records, Cholesky mixes private panels with irregular sharing.
pub fn splash2_apps() -> Vec<WorkloadProfile> {
    vec![
        splash_app("barnes", 0.27, 0.15, 0.48, 0.08, 0.02, 1_024, 0.8, 0.35),
        splash_app("cholesky", 0.35, 0.15, 0.38, 0.04, 0.08, 2_048, 0.6, 0.30),
        splash_app("fft", 0.35, 0.08, 0.40, 0.02, 0.15, 6_144, 0.3, 0.45),
        splash_app("fmm", 0.30, 0.18, 0.42, 0.08, 0.02, 1_024, 0.8, 0.30),
        splash_app("lu", 0.30, 0.10, 0.50, 0.02, 0.08, 2_048, 0.6, 0.35),
        splash_app("ocean", 0.35, 0.08, 0.40, 0.02, 0.15, 6_144, 0.3, 0.50),
        splash_app("radiosity", 0.28, 0.22, 0.40, 0.08, 0.02, 1_024, 0.8, 0.30),
        splash_app("radix", 0.38, 0.05, 0.37, 0.02, 0.18, 6_144, 0.3, 0.50),
        splash_app("raytrace", 0.25, 0.35, 0.30, 0.05, 0.05, 1_024, 0.8, 0.15),
        splash_app("water-nsq", 0.35, 0.15, 0.38, 0.10, 0.02, 1_024, 0.8, 0.30),
        splash_app("water-sp", 0.40, 0.15, 0.33, 0.10, 0.02, 1_024, 0.8, 0.30),
    ]
}

/// SPECjbb 2000: 8 warehouses on 8 cores, one per CMP. Warehouse data is
/// thread-private and much larger than the L2, so reads rarely find a
/// cache supplier (Figure 11: "there is rarely a supplier node, and the
/// request typically gets the line from memory").
pub fn specjbb() -> WorkloadProfile {
    WorkloadProfile {
        name: "specjbb".to_string(),
        group: WorkloadGroup::SpecJbb,
        cores: 8,
        accesses_per_core: 30_000,
        write_fraction: 0.30,
        think: (350, 850),
        cluster: 0,
        pools: vec![
            pool(PoolKind::Private, 16_384, 0.80, 0.55),
            pool(PoolKind::Streaming, 32_768, 0.08, 0.0),
            pool(PoolKind::SharedRo, 512, 0.09, 0.7),
            pool(PoolKind::Migratory, 64, 0.03, 0.5),
        ],
    }
}

/// SPECweb 2005 e-commerce: 8 cores serving requests over a shared
/// read-mostly content cache plus per-connection private state —
/// intermediate sharing between SPLASH-2 and SPECjbb.
pub fn specweb() -> WorkloadProfile {
    WorkloadProfile {
        name: "specweb".to_string(),
        group: WorkloadGroup::SpecWeb,
        cores: 8,
        accesses_per_core: 30_000,
        write_fraction: 0.20,
        think: (700, 1500),
        cluster: 0,
        pools: vec![
            pool(PoolKind::Private, 8_192, 0.42, 0.6),
            pool(PoolKind::SharedRo, 4_096, 0.30, 0.7),
            pool(PoolKind::ProducerConsumer, 1_024, 0.15, 0.6),
            pool(PoolKind::Streaming, 16_384, 0.08, 0.0),
            pool(PoolKind::Migratory, 128, 0.05, 0.5),
        ],
    }
}

/// A consolidated-server workload for hierarchical-topology studies:
/// independent commercial-server instances (à la SPECjbb warehouses or
/// virtualized SPECweb front-ends) pinned to clusters of neighbouring
/// cores. Unlike [`specjbb`], sharing is *strong* but *scoped*: most
/// misses find a cache supplier, and once the profile is clustered
/// (`with_cluster`) that supplier sits inside the requester's own
/// cluster. Mapping one cluster per local ring is the case the
/// hierarchical locality table is designed for; the same profile on a
/// flat ring shows what the machine pays without the hierarchy.
///
/// Not part of [`all`] — the paper's Table 1 / figure sweeps predate
/// hierarchical topologies and their artifacts must stay bit-identical.
pub fn consolidated() -> WorkloadProfile {
    WorkloadProfile {
        name: "consolidated".to_string(),
        group: WorkloadGroup::SpecJbb,
        cores: 16,
        accesses_per_core: 4_000,
        write_fraction: 0.25,
        think: (80, 240),
        cluster: 0,
        pools: vec![
            pool(PoolKind::Private, 1_024, 0.15, 0.6),
            pool(PoolKind::SharedRo, 256, 0.30, 0.8),
            pool(PoolKind::ProducerConsumer, 128, 0.30, 0.8),
            pool(PoolKind::Migratory, 32, 0.20, 0.6),
            pool(PoolKind::Streaming, 2_048, 0.05, 0.0),
        ],
    }
}

/// Every profile the paper evaluates: 11 SPLASH-2 apps + SPECjbb + SPECweb.
pub fn all() -> Vec<WorkloadProfile> {
    let mut v = splash2_apps();
    v.push(specjbb());
    v.push(specweb());
    v
}

/// A small uniform microbenchmark used by the Table 1 / Figure 4 analyses:
/// every core reads a modest shared pool, so a supplier almost always
/// exists and sits at a uniformly-distributed ring distance.
pub fn uniform_microbench(cores: usize, accesses_per_core: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "uniform".to_string(),
        group: WorkloadGroup::Splash2,
        cores,
        accesses_per_core,
        write_fraction: 0.0,
        think: (20, 40),
        cluster: 0,
        pools: vec![pool(PoolKind::SharedRo, 2_048, 1.0, 0.0)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::AccessStream;

    #[test]
    fn eleven_splash_apps() {
        let apps = splash2_apps();
        assert_eq!(apps.len(), 11, "paper runs all SPLASH-2 except Volrend");
        assert!(apps.iter().all(|a| a.cores == 32));
        assert!(apps.iter().all(|a| a.group == WorkloadGroup::Splash2));
    }

    #[test]
    fn spec_workloads_run_one_core_per_cmp() {
        assert_eq!(specjbb().cores, 8);
        assert_eq!(specweb().cores, 8);
    }

    #[test]
    fn all_profiles_have_unique_names() {
        let profiles = all();
        assert_eq!(profiles.len(), 13);
        let names: std::collections::HashSet<_> = profiles.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn streams_are_generatable_for_every_profile() {
        for p in all() {
            let mut s = p.stream(0, 42);
            for _ in 0..50 {
                assert!(s.next_access().is_some());
            }
        }
    }

    #[test]
    fn per_core_streams_differ() {
        let p = specweb();
        let mut a = p.stream(0, 1);
        let mut b = p.stream(1, 1);
        let same = (0..100)
            .filter(|_| a.next_access() == b.next_access())
            .count();
        assert!(same < 50, "streams should diverge, same={same}");
    }

    #[test]
    fn same_seed_reproduces() {
        let p = specjbb();
        let mut a = p.stream(3, 9);
        let mut b = p.stream(3, 9);
        for _ in 0..200 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn with_accesses_overrides_length() {
        let p = specjbb().with_accesses(5);
        assert_eq!(p.accesses_per_core, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stream_for_bad_core_panics() {
        specjbb().stream(8, 0);
    }

    #[test]
    fn consolidated_clusters_scope_the_sharing() {
        // Clustered at 4: a core's shared accesses stay within its
        // cluster's slices, so two cores from different clusters only
        // ever overlap on nothing (their private/streaming regions are
        // per-core disjoint already).
        let p = consolidated().with_cluster(4);
        assert_eq!(p.cluster, 4);
        let touched = |core: usize| -> std::collections::HashSet<u64> {
            let mut s = p.stream(core, 7);
            (0..2_000)
                .map(|_| s.next_access().unwrap().line.0)
                .collect()
        };
        let (a, b, far) = (touched(0), touched(1), touched(4));
        assert!(!a.is_disjoint(&b), "cluster peers share a working set");
        assert!(a.is_disjoint(&far), "no sharing across clusters");
        // Unclustered, the same two cores do share.
        let q = consolidated();
        let mut s0 = q.stream(0, 7);
        let mut s4 = q.stream(4, 7);
        let t0: std::collections::HashSet<u64> = (0..2_000)
            .map(|_| s0.next_access().unwrap().line.0)
            .collect();
        let t4: std::collections::HashSet<u64> = (0..2_000)
            .map(|_| s4.next_access().unwrap().line.0)
            .collect();
        assert!(!t0.is_disjoint(&t4), "flat profile shares machine-wide");
    }

    #[test]
    fn specjbb_is_memory_bound_by_construction() {
        // Private + streaming weight dominates and the private pool exceeds
        // the 8K-line L2 — the Figure 11 calibration target.
        let p = specjbb();
        let unshared: f64 = p
            .pools
            .iter()
            .filter(|s| matches!(s.kind, PoolKind::Private | PoolKind::Streaming))
            .map(|s| s.weight)
            .sum();
        let total: f64 = p.pools.iter().map(|s| s.weight).sum();
        assert!(unshared / total > 0.85);
    }
}
