//! Deterministic synthetic access-stream generation.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::{Cycles, SplitMix64};
use flexsnoop_mem::LineAddr;

use crate::{MemAccess, PoolKind, PoolSpec};

/// A source of memory accesses for one core.
///
/// Streams are timing-independent: the sequence depends only on the seed,
/// never on how fast the simulator consumes it, so different snooping
/// algorithms observe identical traces.
///
/// Every stream is [`Snapshot`]: restoring a stream's progress onto a
/// freshly built copy (same profile / trace, same seed) must make the copy
/// emit exactly the accesses the original would have emitted next — this is
/// what lets a checkpointed simulation resume mid-workload.
pub trait AccessStream: Snapshot {
    /// The next access, or `None` when the stream is exhausted
    /// (synthetic streams are infinite; traces end).
    fn next_access(&mut self) -> Option<MemAccess>;
}

/// Forwards to the boxed stream so `Box<dyn AccessStream + Send>` fields
/// participate in snapshots without unboxing.
impl Snapshot for Box<dyn AccessStream + Send> {
    fn save_into(&self, w: &mut SnapWriter) {
        (**self).save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_from(r)
    }
}

/// Pool-address layout: each pool occupies a disjoint region.
///
/// Regions are spaced far apart so pools can grow without overlapping
/// (clustered streams carve one `lines`-sized slice per cluster out of
/// the region, so a pool's footprint is `lines × clusters` — still tiny
/// against the 2³⁴-line spacing); within a region, lines are consecutive,
/// which spreads home nodes evenly across the ring (home = line mod
/// nodes).
fn pool_base(pool_idx: usize) -> u64 {
    (pool_idx as u64 + 1) << 34
}

/// An infinite synthetic access stream for one core.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    core: usize,
    cores: usize,
    pools: Vec<PoolSpec>,
    weights: Vec<f64>,
    /// Sum of `weights`, precomputed once: `generate` draws a pool on
    /// every access and must not re-sum the mix each time.
    weight_total: f64,
    write_fraction: f64,
    think_min: u64,
    think_max: u64,
    /// Shared-pool scope: `0` shares across all cores; `n > 0` scopes the
    /// shared pool kinds to clusters of `n` consecutive cores (see
    /// [`SyntheticStream::with_cluster`]).
    cluster: usize,
    rng: SplitMix64,
    /// Second half of a migratory read-modify-write pair.
    pending: Option<MemAccess>,
    /// Per-pool streaming cursor (only used by `Streaming` pools).
    stream_pos: Vec<u64>,
}

impl SyntheticStream {
    /// Creates the stream for `core` of `cores` total, from a workload's
    /// pool mix and knobs. `seed` must already be per-core unique.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty, `cores` is zero or `core >= cores`.
    pub fn new(
        core: usize,
        cores: usize,
        pools: Vec<PoolSpec>,
        write_fraction: f64,
        think_range: (u64, u64),
        seed: u64,
    ) -> Self {
        assert!(!pools.is_empty(), "a workload needs at least one pool");
        assert!(cores > 0 && core < cores, "core index out of range");
        let weights: Vec<f64> = pools.iter().map(|p| p.weight).collect();
        let weight_total = weights.iter().sum();
        let stream_pos = vec![0; pools.len()];
        Self {
            core,
            cores,
            pools,
            weights,
            weight_total,
            write_fraction,
            think_min: think_range.0,
            think_max: think_range.1,
            cluster: 0,
            rng: SplitMix64::new(seed),
            pending: None,
            stream_pos,
        }
    }

    /// Scopes the shared pool kinds (`SharedRo`, `ProducerConsumer`,
    /// `Migratory`) to clusters of `cluster` consecutive cores: each
    /// cluster gets its own `lines`-sized slice of the pool region and
    /// producer roles rotate within the cluster only. This models
    /// consolidated servers — independent application instances pinned to
    /// neighbouring cores — which is the sharing structure a hierarchical
    /// ring's locality table is built to exploit.
    ///
    /// `0` (the default) keeps the historical behaviour: one pool shared
    /// by all cores. A cluster of `self.cores` is bit-identical to `0`
    /// (one cluster spanning the machine). `Private` and `Streaming`
    /// pools are already per-core and are unaffected. The RNG draw
    /// sequence does not depend on the cluster, so clustered and flat
    /// streams stay in lockstep except for the line addresses.
    pub fn with_cluster(mut self, cluster: usize) -> Self {
        self.cluster = cluster;
        self
    }

    /// `(slice, first_peer, peers)` for this core's sharing scope:
    /// which per-cluster pool slice it uses, the first core of its
    /// cluster, and how many cores the cluster holds (the last cluster
    /// may be short when `cores % cluster != 0`).
    fn cluster_scope(&self) -> (u64, usize, usize) {
        if self.cluster == 0 || self.cluster >= self.cores {
            return (0, 0, self.cores);
        }
        let idx = self.core / self.cluster;
        let first = idx * self.cluster;
        (idx as u64, first, self.cluster.min(self.cores - first))
    }

    fn think(&mut self) -> Cycles {
        if self.think_max <= self.think_min {
            return Cycles(self.think_min);
        }
        Cycles(self.think_min + self.rng.next_below(self.think_max - self.think_min + 1))
    }

    /// Picks an offset within a pool, honouring the hot-subset knob.
    fn pick_offset(&mut self, lines: u64, hot_fraction: f64) -> u64 {
        debug_assert!(lines > 0);
        let hot_lines = (lines / 8).max(1);
        if hot_fraction > 0.0 && self.rng.chance(hot_fraction) {
            self.rng.next_below(hot_lines)
        } else {
            self.rng.next_below(lines)
        }
    }

    fn generate(&mut self) -> MemAccess {
        let pool_idx = self
            .rng
            .pick_weighted_presummed(&self.weights, self.weight_total);
        let pool = self.pools[pool_idx];
        let base = pool_base(pool_idx);
        let think = self.think();
        match pool.kind {
            PoolKind::Private => {
                let off = self.pick_offset(pool.lines, pool.hot_fraction);
                let line = LineAddr(base + self.core as u64 * pool.lines + off);
                if self.rng.chance(self.write_fraction) {
                    MemAccess::write(line, think)
                } else {
                    MemAccess::read(line, think)
                }
            }
            PoolKind::SharedRo => {
                let (slice, _, _) = self.cluster_scope();
                let off = self.pick_offset(pool.lines, pool.hot_fraction);
                MemAccess::read(LineAddr(base + slice * pool.lines + off), think)
            }
            PoolKind::ProducerConsumer => {
                let (slice, first_peer, peers) = self.cluster_scope();
                let off = self.pick_offset(pool.lines, pool.hot_fraction);
                let line = LineAddr(base + slice * pool.lines + off);
                let producer = first_peer + (off % peers as u64) as usize;
                if producer == self.core {
                    // The producer refreshes the line (sometimes re-reading
                    // its own data first, which is an L2 hit and harmless).
                    MemAccess::write(line, think)
                } else {
                    MemAccess::read(line, think)
                }
            }
            PoolKind::Migratory => {
                // Read-modify-write: emit the read now, queue the write.
                let (slice, _, _) = self.cluster_scope();
                let off = self.pick_offset(pool.lines, pool.hot_fraction);
                let line = LineAddr(base + slice * pool.lines + off);
                self.pending = Some(MemAccess::write(line, Cycles(self.think_min)));
                MemAccess::read(line, think)
            }
            PoolKind::Streaming => {
                // Sequential walk through a per-core region, wrapping.
                let pos = self.stream_pos[pool_idx];
                self.stream_pos[pool_idx] = (pos + 1) % pool.lines;
                let line = LineAddr(base + self.core as u64 * pool.lines + pos);
                MemAccess::read(line, think)
            }
        }
    }
}

/// Serializes the generator's progress: the RNG position, the queued half
/// of a migratory read-modify-write pair, and the streaming cursors. The
/// pool mix and knobs are configuration and stay with the constructor.
impl Snapshot for SyntheticStream {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.rng.state());
        w.put_bool(self.pending.is_some());
        if let Some(p) = &self.pending {
            p.save_into(w);
        }
        w.put_usize(self.stream_pos.len());
        for &pos in &self.stream_pos {
            w.put_u64(pos);
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng = SplitMix64::new(r.get_u64()?);
        self.pending = if r.get_bool()? {
            let mut a = MemAccess::read(LineAddr(0), Cycles(0));
            a.restore_from(r)?;
            Some(a)
        } else {
            None
        };
        if r.get_usize()? != self.stream_pos.len() {
            return Err(SnapError::Corrupt("pool count does not match config"));
        }
        for pos in &mut self.stream_pos {
            *pos = r.get_u64()?;
        }
        Ok(())
    }
}

impl AccessStream for SyntheticStream {
    fn next_access(&mut self) -> Option<MemAccess> {
        if let Some(pending) = self.pending.take() {
            return Some(pending);
        }
        Some(self.generate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_pool(kind: PoolKind, lines: u64) -> Vec<PoolSpec> {
        vec![PoolSpec {
            kind,
            lines,
            weight: 1.0,
            hot_fraction: 0.0,
        }]
    }

    fn stream(core: usize, pools: Vec<PoolSpec>, seed: u64) -> SyntheticStream {
        SyntheticStream::new(core, 4, pools, 0.3, (10, 20), seed)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = stream(0, one_pool(PoolKind::Private, 64), 7);
        let mut b = stream(0, one_pool(PoolKind::Private, 64), 7);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn private_pools_are_disjoint_across_cores() {
        let mut a = stream(0, one_pool(PoolKind::Private, 64), 1);
        let mut b = stream(1, one_pool(PoolKind::Private, 64), 2);
        let la: std::collections::HashSet<_> =
            (0..500).map(|_| a.next_access().unwrap().line).collect();
        let lb: std::collections::HashSet<_> =
            (0..500).map(|_| b.next_access().unwrap().line).collect();
        assert!(la.is_disjoint(&lb));
    }

    #[test]
    fn shared_ro_never_writes() {
        let mut s = stream(2, one_pool(PoolKind::SharedRo, 128), 3);
        for _ in 0..1000 {
            assert!(!s.next_access().unwrap().write);
        }
    }

    #[test]
    fn producer_consumer_roles() {
        // With 4 cores, core 1 produces lines with offset % 4 == 1.
        let mut s = stream(1, one_pool(PoolKind::ProducerConsumer, 64), 5);
        for _ in 0..1000 {
            let a = s.next_access().unwrap();
            let off = a.line.0 & 0xffff_ffff; // offset within region
            if a.write {
                assert_eq!(off % 4, 1, "only own lines are written");
            } else {
                assert_ne!(off % 4, 1, "own lines are written, not read");
            }
        }
    }

    #[test]
    fn migratory_emits_read_write_pairs() {
        let mut s = stream(0, one_pool(PoolKind::Migratory, 32), 9);
        for _ in 0..100 {
            let r = s.next_access().unwrap();
            let w = s.next_access().unwrap();
            assert!(!r.write && w.write, "read then write");
            assert_eq!(r.line, w.line, "same line in the pair");
        }
    }

    #[test]
    fn streaming_walks_sequentially() {
        let mut s = stream(0, one_pool(PoolKind::Streaming, 1000), 11);
        let first = s.next_access().unwrap().line.0;
        for i in 1..100 {
            assert_eq!(s.next_access().unwrap().line.0, first + i);
        }
    }

    #[test]
    fn streaming_wraps_at_pool_end() {
        let mut s = stream(0, one_pool(PoolKind::Streaming, 10), 13);
        let first = s.next_access().unwrap().line.0;
        for _ in 1..10 {
            s.next_access();
        }
        assert_eq!(s.next_access().unwrap().line.0, first, "wrapped around");
    }

    #[test]
    fn hot_fraction_concentrates_accesses() {
        let pools = vec![PoolSpec {
            kind: PoolKind::SharedRo,
            lines: 800,
            weight: 1.0,
            hot_fraction: 0.9,
        }];
        let mut s = stream(0, pools, 17);
        let hot_limit = 100; // lines/8
        let hot_hits = (0..10_000)
            .filter(|_| {
                let off = s.next_access().unwrap().line.0 & 0xffff_ffff;
                off < hot_limit
            })
            .count();
        // ~90% hot picks + ~(10% * 1/8) uniform picks that land hot ≈ 91%.
        assert!(hot_hits > 8_500, "hot hits: {hot_hits}");
    }

    #[test]
    fn clustered_shared_pools_are_disjoint_across_clusters() {
        // 4 cores, 2-wide clusters: cores 0/1 share one slice, cores 2/3
        // another — in-cluster sharing survives, cross-cluster vanishes.
        let mk = |core: usize| stream(core, one_pool(PoolKind::SharedRo, 64), 21).with_cluster(2);
        let touched = |mut s: SyntheticStream| -> std::collections::HashSet<u64> {
            (0..500).map(|_| s.next_access().unwrap().line.0).collect()
        };
        let (a, b, c) = (touched(mk(0)), touched(mk(1)), touched(mk(2)));
        assert!(!a.is_disjoint(&b), "cluster peers share lines");
        assert!(a.is_disjoint(&c), "clusters own disjoint slices");
    }

    #[test]
    fn clustered_producer_roles_stay_in_cluster() {
        // Core 2's cluster is {2, 3}: it produces (writes) exactly the
        // even offsets of its slice and consumes the odd ones — core 0,
        // in another cluster, never appears as a producer here.
        let mut s = stream(2, one_pool(PoolKind::ProducerConsumer, 64), 23).with_cluster(2);
        for _ in 0..1000 {
            let a = s.next_access().unwrap();
            let off = (a.line.0 & 0xffff_ffff) - 64; // slice 1 of the region
            assert!(off < 64, "stays within the cluster's slice");
            let producer = 2 + off % 2;
            assert_eq!(a.write, producer == 2, "role follows the slice offset");
        }
    }

    #[test]
    fn machine_wide_cluster_is_bit_identical_to_flat() {
        // One cluster spanning all cores is the flat sharing pattern: the
        // knob must not perturb addresses, roles or the RNG sequence.
        let mut flat = stream(1, one_pool(PoolKind::Migratory, 32), 9);
        let mut wide = stream(1, one_pool(PoolKind::Migratory, 32), 9).with_cluster(4);
        for i in 0..1000 {
            assert_eq!(flat.next_access(), wide.next_access(), "access {i}");
        }
    }

    #[test]
    fn think_times_within_range() {
        let mut s = stream(0, one_pool(PoolKind::Private, 64), 19);
        for _ in 0..1000 {
            let t = s.next_access().unwrap().think.as_u64();
            assert!((10..=20).contains(&t), "think={t}");
        }
    }

    #[test]
    fn pools_occupy_disjoint_regions() {
        assert!(pool_base(1) - pool_base(0) >= (1 << 34));
    }

    #[test]
    #[should_panic(expected = "at least one pool")]
    fn empty_pools_rejected() {
        SyntheticStream::new(0, 1, vec![], 0.0, (0, 0), 1);
    }

    /// Restoring onto a fresh stream (same config) must continue exactly
    /// where the original left off — including a half-emitted migratory
    /// read-modify-write pair and streaming cursors.
    #[test]
    fn snapshot_round_trip_resumes_identical_stream() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let pools = vec![
            PoolSpec {
                kind: PoolKind::Migratory,
                lines: 32,
                weight: 1.0,
                hot_fraction: 0.2,
            },
            PoolSpec {
                kind: PoolKind::Streaming,
                lines: 100,
                weight: 1.0,
                hot_fraction: 0.0,
            },
        ];
        let mut s = SyntheticStream::new(1, 4, pools.clone(), 0.3, (10, 20), 42);
        // Odd count so a migratory pair is likely split at the snapshot.
        for _ in 0..501 {
            s.next_access();
        }

        let bytes = snapshot_bytes(&s);
        let mut fresh = SyntheticStream::new(1, 4, pools, 0.3, (10, 20), 42);
        restore_bytes(&mut fresh, &bytes).expect("restore");

        for i in 0..1000 {
            assert_eq!(s.next_access(), fresh.next_access(), "access {i} diverged");
        }
    }

    #[test]
    fn snapshot_restore_rejects_pool_count_mismatch() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let s = stream(0, one_pool(PoolKind::Private, 64), 7);
        let bytes = snapshot_bytes(&s);
        let two_pools = vec![
            PoolSpec {
                kind: PoolKind::Private,
                lines: 64,
                weight: 1.0,
                hot_fraction: 0.0,
            };
            2
        ];
        let mut other = stream(0, two_pools, 7);
        assert!(restore_bytes(&mut other, &bytes).is_err());
    }
}
