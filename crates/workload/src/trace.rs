//! Trace recording and replay.
//!
//! The paper runs its SPEC workloads trace-driven so that "the different
//! snooping algorithms \[see\] exactly the same traces". Synthetic streams
//! are already timing-independent, but a recorded [`Trace`] additionally
//! lets experiments snapshot a stream to disk (a simple line-oriented text
//! format) and replay it later, e.g. to bisect a divergence between two
//! algorithm implementations.

use std::str::FromStr;

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::Cycles;
use flexsnoop_mem::LineAddr;

use crate::gen::AccessStream;
use crate::MemAccess;

/// A finite recorded access trace for a set of cores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    per_core: Vec<Vec<MemAccess>>,
}

impl Trace {
    /// Creates an empty trace for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Self {
            per_core: vec![Vec::new(); cores],
        }
    }

    /// Records `n` accesses per core from the given streams.
    pub fn record<S: AccessStream>(streams: &mut [S], n: u64) -> Self {
        let per_core = streams
            .iter_mut()
            .map(|s| (0..n).map_while(|_| s.next_access()).collect::<Vec<_>>())
            .collect();
        Self { per_core }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Appends one access to a core's stream.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn push(&mut self, core: usize, access: MemAccess) {
        self.per_core[core].push(access);
    }

    /// The recorded accesses of one core.
    pub fn core(&self, core: usize) -> &[MemAccess] {
        &self.per_core[core]
    }

    /// Replay streams, one per core.
    pub fn players(&self) -> Vec<TracePlayer<'_>> {
        self.per_core
            .iter()
            .map(|accesses| TracePlayer { accesses, pos: 0 })
            .collect()
    }

    /// Serializes to the text format: one `core r|w line think` per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (core, accesses) in self.per_core.iter().enumerate() {
            for a in accesses {
                let rw = if a.write { 'w' } else { 'r' };
                out.push_str(&format!(
                    "{core} {rw} {:#x} {}\n",
                    a.line.0,
                    a.think.as_u64()
                ));
            }
        }
        out
    }
}

impl FromStr for Trace {
    type Err = String;

    /// Parses the [`Trace::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut per_core: Vec<Vec<MemAccess>> = Vec::new();
        for (no, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what}: {raw:?}", no + 1);
            let core: usize = parts
                .next()
                .ok_or_else(|| err("missing core"))?
                .parse()
                .map_err(|_| err("bad core"))?;
            let write = match parts.next().ok_or_else(|| err("missing r/w"))? {
                "r" => false,
                "w" => true,
                _ => return Err(err("bad r/w flag")),
            };
            let addr_str = parts.next().ok_or_else(|| err("missing address"))?;
            let addr = u64::from_str_radix(addr_str.trim_start_matches("0x"), 16)
                .map_err(|_| err("bad address"))?;
            let think: u64 = parts
                .next()
                .ok_or_else(|| err("missing think time"))?
                .parse()
                .map_err(|_| err("bad think time"))?;
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            if per_core.len() <= core {
                per_core.resize(core + 1, Vec::new());
            }
            per_core[core].push(MemAccess {
                line: LineAddr(addr),
                write,
                think: Cycles(think),
            });
        }
        Ok(Trace { per_core })
    }
}

/// A replay stream over one core's slice of a [`Trace`].
#[derive(Debug, Clone)]
pub struct TracePlayer<'a> {
    accesses: &'a [MemAccess],
    pos: usize,
}

/// Serializes only the replay cursor; the trace itself is configuration.
impl Snapshot for TracePlayer<'_> {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.pos);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let pos = r.get_usize()?;
        if pos > self.accesses.len() {
            return Err(SnapError::Corrupt("replay cursor is past the trace end"));
        }
        self.pos = pos;
        Ok(())
    }
}

impl AccessStream for TracePlayer<'_> {
    fn next_access(&mut self) -> Option<MemAccess> {
        let a = self.accesses.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn record_and_replay_match() {
        let profile = profiles::specweb();
        let mut streams = profile.streams(5);
        let trace = Trace::record(&mut streams, 100);
        assert_eq!(trace.cores(), 8);

        let mut fresh = profile.streams(5);
        let mut players = trace.players();
        for (f, p) in fresh.iter_mut().zip(&mut players) {
            for _ in 0..100 {
                assert_eq!(f.next_access(), p.next_access());
            }
            assert_eq!(p.next_access(), None, "trace is finite");
        }
    }

    #[test]
    fn text_roundtrip() {
        let profile = profiles::specjbb();
        let mut streams = profile.streams(7);
        let trace = Trace::record(&mut streams, 50);
        let text = trace.to_text();
        let parsed: Trace = text.parse().expect("parse own output");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let text = "# header\n\n0 r 0x10 5\n0 w 0x11 6\n";
        let t: Trace = text.parse().unwrap();
        assert_eq!(t.core(0).len(), 2);
        assert!(t.core(0)[1].write);
        assert_eq!(t.core(0)[0].line, LineAddr(0x10));
    }

    #[test]
    fn parser_reports_bad_lines() {
        assert!("x r 0x10 5".parse::<Trace>().is_err());
        assert!("0 q 0x10 5".parse::<Trace>().is_err());
        assert!("0 r zz 5".parse::<Trace>().is_err());
        assert!("0 r 0x10".parse::<Trace>().is_err());
        assert!("0 r 0x10 5 extra".parse::<Trace>().is_err());
    }

    #[test]
    fn player_snapshot_round_trip_resumes_and_rejects_overrun() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let profile = profiles::specweb();
        let mut streams = profile.streams(5);
        let trace = Trace::record(&mut streams, 20);

        let mut player = trace.players().remove(0);
        for _ in 0..7 {
            player.next_access();
        }
        let bytes = snapshot_bytes(&player);
        let mut fresh = trace.players().remove(0);
        restore_bytes(&mut fresh, &bytes).expect("restore");
        loop {
            let (a, b) = (player.next_access(), fresh.next_access());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }

        // A cursor past the end of a shorter trace must be rejected.
        let short = Trace::record(&mut profile.streams(5), 3);
        let mut short_player = short.players().remove(0);
        assert!(restore_bytes(&mut short_player, &bytes).is_err());
    }

    #[test]
    fn push_appends() {
        let mut t = Trace::new(2);
        t.push(1, MemAccess::read(LineAddr(9), Cycles(1)));
        assert_eq!(t.core(1).len(), 1);
        assert_eq!(t.core(0).len(), 0);
    }
}
