//! Composable multi-phase access streams.
//!
//! A [`PhasedStream`] chains per-core streams end to end: each phase
//! emits a bounded number of accesses (its *budget*), then the next
//! phase takes over. This is how a scenario expresses "a migratory
//! burst, then contended hot lines, then a trace replay" as one stream
//! per core — the simulator sees an ordinary [`AccessStream`] and stays
//! oblivious to phase boundaries.
//!
//! Phases are timing-independent like every stream: the boundary is an
//! access *count*, not a cycle, so every snooping algorithm observes the
//! same access sequence.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::{AccessStream, MemAccess};

/// One phase of a [`PhasedStream`]: an inner stream and the number of
/// accesses it contributes before the next phase starts.
pub struct StreamPhase {
    /// The stream driving this phase.
    pub stream: Box<dyn AccessStream + Send>,
    /// Accesses this phase emits. A budget of `u64::MAX` (see
    /// [`StreamPhase::unbounded`]) lets the phase run until its stream
    /// ends — only useful for the final phase or finite streams.
    pub budget: u64,
}

impl StreamPhase {
    /// A phase emitting exactly `budget` accesses (fewer if the inner
    /// stream ends first).
    pub fn new(stream: Box<dyn AccessStream + Send>, budget: u64) -> Self {
        Self { stream, budget }
    }

    /// A phase that runs until its inner stream is exhausted.
    pub fn unbounded(stream: Box<dyn AccessStream + Send>) -> Self {
        Self {
            stream,
            budget: u64::MAX,
        }
    }
}

impl std::fmt::Debug for StreamPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamPhase")
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// Chains phases into one per-core access stream.
///
/// The stream ends when the last phase's budget or inner stream runs
/// out. An inner stream ending early simply hands over to the next
/// phase (a short trace followed by synthetic filler is a feature, not
/// an error).
#[derive(Debug)]
pub struct PhasedStream {
    phases: Vec<StreamPhase>,
    /// Index of the phase currently emitting.
    current: usize,
    /// Accesses the current phase has emitted so far.
    emitted: u64,
}

impl PhasedStream {
    /// Builds the chain. An empty phase list is a valid, empty stream.
    pub fn new(phases: Vec<StreamPhase>) -> Self {
        Self {
            phases,
            current: 0,
            emitted: 0,
        }
    }

    /// The phase currently emitting (== phase count when exhausted).
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Total number of phases in the chain.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl AccessStream for PhasedStream {
    fn next_access(&mut self) -> Option<MemAccess> {
        while let Some(phase) = self.phases.get_mut(self.current) {
            if self.emitted < phase.budget {
                if let Some(access) = phase.stream.next_access() {
                    self.emitted += 1;
                    return Some(access);
                }
            }
            self.current += 1;
            self.emitted = 0;
        }
        None
    }
}

/// Serializes the cursor (phase index, accesses emitted) and every
/// phase's inner stream. All phases are saved — not just the current
/// one — so a restored chain replays later phases from the same state
/// their streams were constructed in.
impl Snapshot for PhasedStream {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.current);
        w.put_u64(self.emitted);
        w.put_usize(self.phases.len());
        for phase in &self.phases {
            w.put_u64(phase.budget);
            phase.stream.save_into(w);
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.current = r.get_usize()?;
        self.emitted = r.get_u64()?;
        if r.get_usize()? != self.phases.len() {
            return Err(SnapError::Corrupt("phase count does not match config"));
        }
        for phase in &mut self.phases {
            if r.get_u64()? != phase.budget {
                return Err(SnapError::Corrupt("phase budget does not match config"));
            }
            phase.stream.restore_from(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PoolKind, PoolSpec, SyntheticStream};
    use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};

    fn synth(kind: PoolKind, seed: u64) -> Box<dyn AccessStream + Send> {
        let pools = vec![PoolSpec {
            kind,
            lines: 64,
            weight: 1.0,
            hot_fraction: 0.0,
        }];
        Box::new(SyntheticStream::new(0, 4, pools, 0.3, (10, 20), seed))
    }

    fn two_phase(seed: u64) -> PhasedStream {
        PhasedStream::new(vec![
            StreamPhase::new(synth(PoolKind::Migratory, seed), 100),
            StreamPhase::new(synth(PoolKind::SharedRo, seed + 1), 50),
        ])
    }

    #[test]
    fn phases_hand_over_at_the_budget() {
        let mut s = two_phase(7);
        for i in 0..150 {
            assert!(s.next_access().is_some(), "access {i} missing");
            // The hand-over is lazy: access 100 is the first one pulled
            // from phase 1's stream.
            assert_eq!(s.current_phase(), usize::from(i >= 100));
        }
        assert!(s.next_access().is_none(), "chain must end after budgets");
        assert_eq!(s.current_phase(), 2);
    }

    #[test]
    fn second_phase_traffic_matches_its_own_stream() {
        // Phase 2 is read-only (SharedRo): once phase 1's budget is
        // spent, no writes may appear.
        let mut s = two_phase(9);
        for _ in 0..100 {
            s.next_access();
        }
        for _ in 0..50 {
            assert!(!s.next_access().unwrap().write);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = two_phase(11);
        let mut b = two_phase(11);
        for _ in 0..150 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn snapshot_round_trip_resumes_mid_phase() {
        let mut s = two_phase(42);
        // Stop inside phase 1, close to the boundary, so the restored
        // copy must replay the hand-over too.
        for _ in 0..97 {
            s.next_access();
        }
        let bytes = snapshot_bytes(&s);
        let mut fresh = two_phase(42);
        restore_bytes(&mut fresh, &bytes).expect("restore");
        for i in 0..53 {
            assert_eq!(s.next_access(), fresh.next_access(), "access {i} diverged");
        }
    }

    #[test]
    fn snapshot_restore_rejects_mismatched_chain() {
        let s = two_phase(1);
        let bytes = snapshot_bytes(&s);
        let mut one_phase =
            PhasedStream::new(vec![StreamPhase::new(synth(PoolKind::Migratory, 1), 100)]);
        assert!(restore_bytes(&mut one_phase, &bytes).is_err());
    }
}
