//! Bit-identity across event-queue shardings and backends.
//!
//! The determinism contract of the sharded scheduler: every event is
//! popped in global `(time, insertion seq)` order no matter how many
//! per-segment wheels the queue is split into and no matter which queue
//! backend each wheel uses. Consequently **any** combination of segment
//! count and backend must produce bit-identical run statistics — the
//! same property `flexsnoop report --check` relies on for the committed
//! 8-node paper figures.

use flexsnoop::{Algorithm, RunStats, Simulator};
use flexsnoop_engine::{Executor, QueueKind};
use flexsnoop_workload::{profiles, WorkloadProfile};

const SEED: u64 = 42;
const ACCESSES: u64 = 150;

fn workload() -> WorkloadProfile {
    profiles::specjbb().with_accesses(ACCESSES)
}

fn run_variant(algorithm: Algorithm, kind: QueueKind, segments: usize) -> RunStats {
    let mut sim =
        Simulator::for_workload(&workload(), algorithm, None, SEED).expect("workload configures");
    sim.use_event_queue(kind);
    sim.set_segments(segments);
    assert_eq!(sim.segments(), segments);
    let stats = sim.run();
    sim.validate_coherence().expect("coherent final state");
    stats
}

#[test]
fn stats_identical_across_segments_and_backends() {
    for algorithm in [Algorithm::Lazy, Algorithm::SupersetAgg] {
        let baseline = run_variant(algorithm, QueueKind::Bucketed, 1);
        assert!(baseline.events > 0);
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for segments in [1usize, 2, 4, 8] {
                let stats = run_variant(algorithm, kind, segments);
                assert_eq!(
                    stats, baseline,
                    "{algorithm} diverged at {kind:?} x {segments} segments"
                );
            }
        }
    }
}

#[test]
fn stats_identical_across_executor_widths() {
    // The bounded work-stealing executor must not perturb results either:
    // each task is an independent deterministic simulation, so any worker
    // count yields the same row set.
    let run_all = |threads: usize| -> Vec<RunStats> {
        let tasks: Vec<_> = [1usize, 2, 4]
            .into_iter()
            .map(|segments| {
                move || run_variant(Algorithm::SupersetCon, QueueKind::Bucketed, segments)
            })
            .collect();
        Executor::new(threads).run(tasks)
    };
    let narrow = run_all(1);
    let wide = run_all(3);
    assert_eq!(narrow.len(), 3);
    assert_eq!(narrow, wide, "executor width changed results");
    assert!(
        narrow.windows(2).all(|w| w[0] == w[1]),
        "segment count changed results under the executor"
    );
}

/// A zero-think-time storm over a tiny shared line pool: every core
/// issues at cycle 0 and keeps issuing back-to-back, so each cycle of
/// the run carries simultaneous events in *different* ring segments
/// (issues, ring arrivals, snoop completions) plus same-line collisions.
/// This is the adversarial case for segment sharding — same-cycle events
/// whose wheels race each other — and must still pop in global insertion
/// order on every backend.
fn storm_variant(algorithm: Algorithm, kind: QueueKind, segments: usize) -> RunStats {
    use flexsnoop::{energy_model_for, MachineConfig, VecStream};
    use flexsnoop_engine::Cycles;
    use flexsnoop_mem::LineAddr;
    use flexsnoop_workload::{AccessStream, MemAccess};

    const CORES: usize = 8;
    const ACCESSES: usize = 40;
    let machine = MachineConfig::scale(CORES);
    let streams: Vec<Box<dyn AccessStream + Send>> = (0..CORES)
        .map(|c| {
            let accesses = (0..ACCESSES)
                .map(|i| {
                    // Five hot lines shared by all eight nodes; a third of
                    // the accesses are writes, to force invalidations that
                    // touch every segment at once.
                    let line = LineAddr(((c + i) % 5) as u64);
                    if (c + i) % 3 == 0 {
                        MemAccess::write(line, Cycles(0))
                    } else {
                        MemAccess::read(line, Cycles(0))
                    }
                })
                .collect();
            Box::new(VecStream::new(accesses)) as Box<dyn AccessStream + Send>
        })
        .collect();
    let predictor = algorithm.default_predictor();
    let energy = energy_model_for(&predictor);
    let mut sim = Simulator::new(
        machine,
        algorithm,
        predictor,
        energy,
        streams,
        ACCESSES as u64,
    )
    .expect("storm machine configures");
    sim.use_event_queue(kind);
    sim.set_segments(segments);
    let stats = sim.run();
    sim.validate_coherence().expect("coherent final state");
    stats
}

#[test]
fn same_cycle_cross_segment_storm_is_bit_identical() {
    for algorithm in [Algorithm::Lazy, Algorithm::SupersetAgg] {
        let baseline = storm_variant(algorithm, QueueKind::Bucketed, 1);
        assert!(baseline.read_txns > 0);
        assert!(
            baseline.collisions > 0,
            "{algorithm}: the storm failed to produce same-line collisions"
        );
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            for segments in [2usize, 4, 8] {
                let stats = storm_variant(algorithm, kind, segments);
                assert_eq!(
                    stats, baseline,
                    "{algorithm} storm diverged at {kind:?} x {segments} segments"
                );
            }
        }
    }
}

#[test]
fn segment_guardrails_hold() {
    let mut sim = Simulator::for_workload(&workload(), Algorithm::Lazy, None, SEED).unwrap();
    // Order of configuration must not matter.
    sim.set_segments(4);
    sim.use_event_queue(QueueKind::Heap);
    assert_eq!(sim.segments(), 4);
    sim.use_event_queue(QueueKind::Bucketed);
    sim.set_segments(2);
    assert_eq!(sim.segments(), 2);
}
