//! Hierarchical multi-ring topology: property and identity tests.
//!
//! The tentpole guarantees under test:
//!
//! * every read/write still retires and the final cache state is
//!   coherent on any `local × groups` shape — a wrong locality
//!   prediction escalates, it never loses the request;
//! * bridge escalation neither drops nor duplicates snoops: on a
//!   lossless hierarchical ring every circulation snoops each
//!   non-requester node exactly once per attempt;
//! * [`RunStats`] are bit-identical across event-queue backends,
//!   segment counts and executor widths on hierarchical machines, just
//!   as they are on flat rings;
//! * mid-run checkpoints round-trip bit-identically (SNAP v3), and a
//!   flat snapshot is refused by a hierarchical simulator (and vice
//!   versa) via the config fingerprint.

use flexsnoop::{Algorithm, RunStats, Simulator};
use flexsnoop_engine::snap::SnapError;
use flexsnoop_engine::{Cycle, Executor, QueueKind};
use flexsnoop_workload::{profiles, WorkloadProfile};

const SEED: u64 = 42;
const ACCESSES: u64 = 150;

/// The `local × groups` shapes the net exercises (8, 16 and 64 nodes).
const SHAPES: [(usize, usize); 3] = [(2, 4), (4, 4), (8, 8)];

/// The consolidated-server profile with sharing clustered at the
/// local-ring size: the workload the locality table is designed for,
/// and the one that exercises both circulation paths deterministically.
fn workload(cores: usize, cluster: usize) -> WorkloadProfile {
    profiles::consolidated()
        .with_cores(cores)
        .with_cluster(cluster)
        .with_accesses(ACCESSES)
}

fn hier(algorithm: Algorithm, local: usize, groups: usize) -> Simulator {
    let profile = workload(local * groups, local);
    Simulator::for_workload_hier(&profile, algorithm, None, SEED, local, groups)
        .expect("hier workload configures")
}

#[test]
fn every_shape_retires_all_transactions_and_stays_coherent() {
    for (local, groups) in SHAPES {
        for algorithm in [Algorithm::Lazy, Algorithm::Subset, Algorithm::SupersetAgg] {
            let mut sim = hier(algorithm, local, groups);
            let stats = sim.run();
            assert!(
                stats.read_txns > 0,
                "{algorithm} {local}x{groups}: no reads"
            );
            assert_eq!(
                sim.in_flight(),
                0,
                "{algorithm} {local}x{groups}: transactions stranded"
            );
            sim.validate_coherence()
                .unwrap_or_else(|e| panic!("{algorithm} {local}x{groups}: {e}"));
            // The machine is hierarchical, so the two-level accounting
            // must cover every retired read circulation.
            assert_eq!(
                stats.local_circulations + stats.global_circulations,
                stats.read_txns,
                "{algorithm} {local}x{groups}: circulation accounting leaks"
            );
        }
    }
}

#[test]
fn locality_table_learns_and_escalations_recover() {
    // The clustered consolidated workload supplies most reads from the
    // requester's own ring: the fresh weakly-remote tables predict
    // global, then learn local suppliers. Over a whole run some
    // circulations must complete locally and any escalation must still
    // retire.
    let mut sim = hier(Algorithm::Subset, 4, 4);
    let stats = sim.run();
    assert!(
        stats.local_circulations > 0,
        "the locality table never completed a circulation in-ring"
    );
    assert!(stats.global_circulations > 0);
    assert_eq!(sim.in_flight(), 0);
    // Escalations cost an extra lap but never lose the request:
    // accounted circulations already proved retirement above.
    assert!(
        stats.escalations <= stats.global_circulations,
        "every escalated read retires as a global circulation"
    );
}

#[test]
fn bridge_routing_never_drops_or_duplicates_snoops() {
    // Timeline-level conservation: within one circulation attempt no
    // node is ever snooped twice (the global switch at a bridge must not
    // re-enter its group), every read resolves exactly once, and snoop
    // totals never exceed one visit per node per attempt.
    use std::collections::HashSet;

    for (local, groups) in SHAPES {
        let mut sim = hier(Algorithm::Lazy, local, groups);
        sim.enable_timeline(usize::MAX);
        let stats = sim.run();
        assert_eq!(
            stats.reads_cache_supplied + stats.reads_from_memory,
            stats.read_txns,
            "{local}x{groups}: every read is supplied exactly once"
        );
        let nodes = (local * groups) as u64;
        assert!(
            stats.read_snoops
                <= stats.global_circulations * (nodes - 1)
                    + stats.local_circulations * (local as u64 - 1)
                    + stats.escalations * (local as u64 - 1),
            "{local}x{groups}: more snoops than one visit per node per attempt"
        );
        let txns: Vec<_> = sim.timeline().transactions().collect();
        assert!(!txns.is_empty());
        for txn in txns {
            let mut seen: HashSet<usize> = HashSet::new();
            for (_, ev) in sim.timeline().events(txn) {
                match ev {
                    flexsnoop::TxnEvent::SnoopStarted { node } => {
                        assert!(
                            seen.insert(node.0),
                            "{local}x{groups} {txn}: {node} snooped twice in one attempt"
                        );
                    }
                    // A new attempt (escalation) legitimately revisits
                    // the abandoned lap's nodes.
                    flexsnoop::TxnEvent::Escalated => seen.clear(),
                    _ => {}
                }
            }
        }
        assert_eq!(sim.in_flight(), 0);
    }
}

#[test]
fn run_stats_bit_identical_across_backends_segments_and_widths() {
    for (local, groups) in [(2, 4), (4, 4)] {
        let algorithm = Algorithm::SupersetAgg;
        let baseline = hier(algorithm, local, groups).run();
        let run_all = |threads: usize| -> Vec<RunStats> {
            let tasks: Vec<_> = [QueueKind::Heap, QueueKind::Bucketed]
                .into_iter()
                .flat_map(|kind| [1usize, 4].map(|segments| (kind, segments)))
                .map(|(kind, segments)| {
                    move || {
                        let mut sim = hier(algorithm, local, groups);
                        sim.use_event_queue(kind);
                        sim.set_segments(segments);
                        sim.run()
                    }
                })
                .collect();
            Executor::new(threads).run(tasks)
        };
        for threads in [1usize, 4] {
            for (i, stats) in run_all(threads).into_iter().enumerate() {
                assert_eq!(
                    stats, baseline,
                    "{local}x{groups}: variant {i} diverged at width {threads}"
                );
            }
        }
    }
}

#[test]
fn checkpoint_round_trips_bit_identically_mid_run() {
    let algorithm = Algorithm::Subset;
    let (local, groups) = (4, 4);
    let baseline = hier(algorithm, local, groups).run();
    let save_at = Cycle::new(baseline.exec_cycles.as_u64() / 2);

    let mut donor = hier(algorithm, local, groups);
    donor.run_until(Some(save_at));
    let snapshot = donor.save_snapshot();
    donor.run_until(None);
    assert_eq!(
        donor.finalize(),
        baseline,
        "taking a snapshot perturbed the donor run"
    );

    for kind in [QueueKind::Heap, QueueKind::Bucketed] {
        let mut resumed = hier(algorithm, local, groups);
        resumed.use_event_queue(kind);
        resumed.restore_snapshot(&snapshot).expect("restore");
        resumed.run_until(None);
        resumed.validate_coherence().expect("coherent final state");
        assert_eq!(
            resumed.finalize(),
            baseline,
            "hier resume diverged on {kind:?}"
        );
    }
}

#[test]
fn flat_and_hier_snapshots_reject_each_other() {
    let profile = workload(8, 2);
    let mut flat = Simulator::for_workload(&profile, Algorithm::Lazy, None, SEED).unwrap();
    flat.run_until(Some(Cycle::new(2_000)));
    let flat_snap = flat.save_snapshot();

    let mut h = hier(Algorithm::Lazy, 2, 4);
    h.run_until(Some(Cycle::new(2_000)));
    let hier_snap = h.save_snapshot();

    // Same node count, same algorithm — only the topology differs, and
    // the fingerprint must catch it in both directions.
    let mut hier_target = hier(Algorithm::Lazy, 2, 4);
    assert!(matches!(
        hier_target.restore_snapshot(&flat_snap),
        Err(SnapError::FingerprintMismatch { .. })
    ));
    let mut flat_target = Simulator::for_workload(&profile, Algorithm::Lazy, None, SEED).unwrap();
    assert!(matches!(
        flat_target.restore_snapshot(&hier_snap),
        Err(SnapError::FingerprintMismatch { .. })
    ));

    // Sanity: the matching target accepts its own bytes.
    let mut ok = hier(Algorithm::Lazy, 2, 4);
    ok.restore_snapshot(&hier_snap).expect("matching restore");
}
