//! Bit-identity of checkpoint/restore.
//!
//! The correctness bar for `save_snapshot`/`restore_snapshot`: a run
//! saved at cycle C and resumed on a freshly built simulator finishes
//! with [`RunStats`] bit-identical to the uninterrupted run — no matter
//! which event-queue backend, segment count or executor width either
//! side uses, and with or without a fault plan armed. Saving must also
//! be a semantic no-op on the live simulator (it drains and rebuilds the
//! event queue in place).

use flexsnoop::{Algorithm, FaultPlan, PartitionWindow, RunStats, Simulator};
use flexsnoop_engine::snap::SnapError;
use flexsnoop_engine::{Cycle, Executor, QueueKind};
use flexsnoop_workload::{profiles, WorkloadProfile};

const SEED: u64 = 42;
const ACCESSES: u64 = 150;

fn workload() -> WorkloadProfile {
    profiles::specjbb().with_accesses(ACCESSES)
}

fn fresh(algorithm: Algorithm) -> Simulator {
    Simulator::for_workload(&workload(), algorithm, None, SEED).expect("workload configures")
}

/// The uninterrupted reference run plus a mid-run save point (half the
/// execution time, so plenty of transactions are in flight on each side).
fn baseline_and_save_point(algorithm: Algorithm) -> (RunStats, Cycle) {
    let stats = fresh(algorithm).run();
    assert!(stats.events > 0);
    let half = Cycle::new(stats.exec_cycles.as_u64() / 2);
    (stats, half)
}

#[test]
fn resume_matches_uninterrupted_run_across_backends_segments_and_widths() {
    for algorithm in [Algorithm::Lazy, Algorithm::SupersetAgg] {
        let (baseline, save_at) = baseline_and_save_point(algorithm);

        // Save mid-run, then let the donor finish: saving must not
        // perturb the run it interrupted.
        let mut donor = fresh(algorithm);
        let reached = donor.run_until(Some(save_at));
        assert!(reached <= save_at, "run_until overshot its stop cycle");
        let snapshot = donor.save_snapshot();
        donor.run_until(None);
        assert_eq!(
            donor.finalize(),
            baseline,
            "{algorithm}: taking a snapshot perturbed the donor run"
        );

        // Resume the snapshot under every queue backend × segment count,
        // fanned out over two executor widths (the resumed simulations
        // are independent, so worker count must not matter either).
        let resume_all = |threads: usize| -> Vec<RunStats> {
            let tasks: Vec<_> = [QueueKind::Heap, QueueKind::Bucketed]
                .into_iter()
                .flat_map(|kind| [1usize, 4].map(|segments| (kind, segments)))
                .map(|(kind, segments)| {
                    let bytes = snapshot.clone();
                    move || {
                        let mut sim = fresh(algorithm);
                        sim.use_event_queue(kind);
                        sim.set_segments(segments);
                        sim.restore_snapshot(&bytes).expect("restore");
                        sim.run_until(None);
                        sim.validate_coherence().expect("coherent final state");
                        sim.finalize()
                    }
                })
                .collect();
            Executor::new(threads).run(tasks)
        };
        for threads in [1usize, 4] {
            for (i, stats) in resume_all(threads).into_iter().enumerate() {
                assert_eq!(
                    stats, baseline,
                    "{algorithm}: resumed variant {i} diverged at width {threads}"
                );
            }
        }
    }
}

#[test]
fn faulty_run_resumes_bit_identically() {
    // Faults exercise the recovery state a lossless run never touches:
    // RTT estimators, retry attempts, seen-sequence bitsets, degraded
    // lines. All of it must survive the round trip.
    let plan = FaultPlan::random(7, 8, 2);
    let arm = |sim: &mut Simulator| sim.set_fault_plan(plan.clone());

    let mut reference = fresh(Algorithm::SupersetCon);
    arm(&mut reference);
    let baseline = reference.run();
    let save_at = Cycle::new(baseline.exec_cycles.as_u64() / 2);

    let mut donor = fresh(Algorithm::SupersetCon);
    arm(&mut donor);
    donor.run_until(Some(save_at));
    let snapshot = donor.save_snapshot();

    let mut resumed = fresh(Algorithm::SupersetCon);
    arm(&mut resumed);
    resumed.restore_snapshot(&snapshot).expect("restore");
    resumed.run_until(None);
    assert_eq!(resumed.finalize(), baseline, "faulty resume diverged");
}

#[test]
fn partitioned_run_saved_inside_the_window_resumes_bit_identically() {
    // A scheduled partition is pure fault-plan state (no RNG), but a
    // snapshot taken *inside* the window must carry the blocked-hop
    // counters, the refused requests' retry state, and the window
    // itself, or the resumed half heals differently.
    let rough = fresh(Algorithm::SupersetAgg).run().exec_cycles.as_u64();
    let window = PartitionWindow {
        islands: vec![0, 0, 0, 0, 1, 1, 1, 1],
        from: Cycle::new(rough / 4),
        until: Cycle::new(rough / 2),
    };
    let plan = FaultPlan {
        partitions: vec![window.clone()],
        ..FaultPlan::lossless()
    };
    let arm = |sim: &mut Simulator| sim.set_fault_plan(plan.clone());

    let mut reference = fresh(Algorithm::SupersetAgg);
    arm(&mut reference);
    let baseline = reference.run();
    assert!(
        reference.fault_stats().partition_blocked > 0,
        "the window never blocked a hop; the test exercises nothing"
    );

    // Save in the middle of the partition window.
    let save_at = Cycle::new((window.from.as_u64() + window.until.as_u64()) / 2);
    let mut donor = fresh(Algorithm::SupersetAgg);
    arm(&mut donor);
    donor.run_until(Some(save_at));
    let snapshot = donor.save_snapshot();
    donor.run_until(None);
    assert_eq!(donor.finalize(), baseline, "saving perturbed the donor");

    for kind in [QueueKind::Heap, QueueKind::Bucketed] {
        let mut resumed = fresh(Algorithm::SupersetAgg);
        resumed.use_event_queue(kind);
        arm(&mut resumed);
        resumed.restore_snapshot(&snapshot).expect("restore");
        resumed.run_until(None);
        resumed.validate_coherence().expect("coherent final state");
        assert_eq!(
            resumed.finalize(),
            baseline,
            "resume across the partition window diverged on {kind:?}"
        );
    }
}

#[test]
fn restore_rejects_mismatched_configuration() {
    let mut donor = fresh(Algorithm::Lazy);
    donor.run_until(Some(Cycle::new(2_000)));
    let snapshot = donor.save_snapshot();

    // A different algorithm is a different configuration fingerprint.
    let mut wrong_alg = fresh(Algorithm::SupersetAgg);
    assert!(matches!(
        wrong_alg.restore_snapshot(&snapshot),
        Err(SnapError::FingerprintMismatch { .. })
    ));

    // Same config, but the snapshot was taken without a fault plan: a
    // target with one armed must refuse (and vice versa).
    let mut armed = fresh(Algorithm::Lazy);
    armed.set_fault_plan(FaultPlan::random(7, 8, 2));
    assert!(armed.restore_snapshot(&snapshot).is_err());

    // A clean same-config target accepts the very same bytes.
    let mut ok = fresh(Algorithm::Lazy);
    ok.restore_snapshot(&snapshot).expect("matching restore");
}

#[test]
fn truncated_snapshot_is_rejected_not_misread() {
    let mut donor = fresh(Algorithm::Lazy);
    donor.run_until(Some(Cycle::new(2_000)));
    let snapshot = donor.save_snapshot();
    let truncated = &snapshot[..snapshot.len() - 9];
    let mut target = fresh(Algorithm::Lazy);
    assert!(target.restore_snapshot(truncated).is_err());
}
