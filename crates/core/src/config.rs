//! Machine configuration (paper Table 4).
//!
//! [`MachineConfig::isca2006`] reproduces every architectural parameter the
//! paper publishes: 8 CMPs on a 2-D torus with two embedded rings, 39-cycle
//! ring hops, a 55-cycle CMP bus-access-plus-L2-snoop operation, 32 KB
//! 4-way L1s, 512 KB 8-way L2s, and the 350/710/312-cycle memory round
//! trips. All cycle counts are 6 GHz processor cycles.

use flexsnoop_engine::Cycles;
use flexsnoop_net::HierParams;

/// Cache geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 cache capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

/// Latency parameters (processor cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// L1 hit round trip (Table 4: 2 cycles).
    pub l1_rt: Cycles,
    /// Own-L2 hit round trip (Table 4: 11 cycles).
    pub l2_rt: Cycles,
    /// Round trip to another L2 in the same CMP over the intra-CMP bus
    /// (Table 4: 55 cycles).
    pub cmp_bus_rt: Cycles,
    /// CMP bus access plus parallel L2 snoop, as performed for a ring
    /// snoop request (Table 4: 55 cycles, end to end).
    pub snoop_time: Cycles,
    /// Snoop-port occupancy: how long one snoop blocks the next from
    /// starting. Snoops are pipelined on the intra-CMP bus, so this is much
    /// shorter than the end-to-end `snoop_time` (the 10-cycle on-chip
    /// arbitration slot of §5.1).
    pub snoop_occupancy: Cycles,
    /// Gateway processing per forwarded ring message.
    pub gateway_latency: Cycles,
    /// Supplier-predictor access time (Table 4: 2–3 cycles).
    pub predictor_latency: Cycles,
}

/// Main-memory parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryParams {
    /// DRAM array access latency (50 ns at 6 GHz = 300 cycles).
    pub dram_latency: Cycles,
    /// Controller overhead per access.
    pub controller_overhead: Cycles,
    /// Controller occupancy per access (banked DRAM pipelines accesses;
    /// this bounds throughput, not latency).
    pub occupancy: Cycles,
    /// Whether passing the home node's gateway starts a speculative DRAM
    /// prefetch for read snoops (paper §2.2).
    pub home_prefetch: bool,
}

/// Ring parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingParams {
    /// Number of embedded unidirectional rings (Table 4: 2).
    pub rings: usize,
    /// CMP-to-CMP hop latency (Table 4: 39 cycles).
    pub hop_latency: Cycles,
    /// Link occupancy per snoop message (bandwidth model).
    pub link_service: Cycles,
    /// Two-level (local rings + global bridge ring) topology, or `None`
    /// for the paper's flat ring. See [`default_hier`] for the standard
    /// shape used by sweeps and the CLI.
    pub hier: Option<HierParams>,
}

/// The standard hierarchical shape for a `local × groups` machine:
/// global-ring wires span whole local rings, so a bridge hop costs twice
/// the local propagation at the same serialization (54 + 12 cycles
/// against the flat ring's 27 + 12).
pub fn default_hier(local: usize, groups: usize) -> HierParams {
    HierParams {
        local,
        groups,
        bridge_latency: Cycles(54),
        bridge_service: Cycles(12),
    }
}

/// Data-network (torus) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataNetParams {
    /// Per-link propagation latency.
    pub hop_latency: Cycles,
    /// Per-hop router latency.
    pub router_latency: Cycles,
    /// Link occupancy per data message (64 B line serialization).
    pub link_service: Cycles,
}

/// Policy knobs that do not change the paper's defaults but enable
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyParams {
    /// Install memory fills in `E` when the ring proved no other copy
    /// exists (every node snooped, none held the line); otherwise fills
    /// install in `SG`.
    pub exclusive_fill: bool,
    /// Maximum ring read transactions a core may have outstanding before
    /// it stalls. 1 models a strictly blocking core; larger values
    /// approximate the latency tolerance of the paper's out-of-order
    /// cores (its 64-entry load queue allowed many).
    pub max_outstanding_reads: usize,
    /// Filter write snoops with a per-node *presence* predictor — a
    /// counting Bloom filter over every line cached in the CMP (no false
    /// negatives, so skipping is safe). The paper notes writes "would
    /// need a predictor of line presence, rather than one of line in
    /// supplier state" (§5.3) and leaves it unexplored; off by default.
    pub write_filtering: bool,
}

/// How the requester-side retransmission timeout is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutPolicy {
    /// The PR-4 fixed formula: unloaded circulation + per-node
    /// processing + `queueing_slack`, identical for every requester and
    /// every point in the run.
    Static,
    /// Per-requester Jacobson/Karels EWMA over observed ring round
    /// trips: `timeout = srtt + 4·rttvar`, clamped to never fall below
    /// the unloaded floor. Adapts to congestion, eliminating most
    /// spurious retries without giving up bounded recovery latency.
    Adaptive,
}

/// Timeout/retry recovery parameters for an unreliable ring.
///
/// These only take effect when a non-lossless fault plan is armed
/// ([`crate::Simulator::set_fault_plan`]); on a lossless ring no timeout
/// events are ever scheduled, so the defaults cannot perturb existing
/// runs.
///
/// Under [`TimeoutPolicy::Static`] the requester-side timeout for a
/// transaction's ring phase is derived from the unloaded
/// full-circulation latency plus per-node processing, padded by
/// `queueing_slack` for contention:
///
/// ```text
/// timeout = unloaded_latency(nodes)
///         + nodes × (snoop_time + gateway_latency)
///         + queueing_slack
/// ```
///
/// Under [`TimeoutPolicy::Adaptive`] (the default) each requester node
/// tracks an EWMA of its observed ring round trips instead
/// (Jacobson/Karels: `srtt += (R − srtt)/8`,
/// `rttvar += (|R − srtt| − rttvar)/4`, `timeout = srtt + 4·rttvar`),
/// seeded from the unloaded circulation latency and clamped so the
/// estimate never falls below that floor. `queueing_slack` is unused in
/// this mode.
///
/// In both modes the window doubles per retry attempt. Retries back off
/// exponentially: retry *k* waits `min(backoff_base × 2^(k−1),
/// backoff_cap)` before re-issuing. After `retry_cap` retries of one
/// transaction, the line enters *degraded mode*: further attempts use
/// Lazy forwarding (snoop everywhere, filter nothing), trading latency
/// for the strongest delivery redundancy the ring offers. Retries
/// continue past the cap — the fault budget is bounded, so a retry
/// eventually circulates cleanly. A degraded line is on *probation*:
/// after `probation_window` consecutive clean (retry-free) circulations
/// it re-arms the configured Table 3 algorithm; any timeout on the line
/// resets the count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryParams {
    /// Timeout derivation policy.
    pub timeout_policy: TimeoutPolicy,
    /// Contention padding added to the derived unloaded timeout
    /// ([`TimeoutPolicy::Static`] only).
    pub queueing_slack: Cycles,
    /// Backoff before the first retry.
    pub backoff_base: Cycles,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Cycles,
    /// Retries of one transaction before its line degrades to Lazy.
    pub retry_cap: u32,
    /// Consecutive clean circulations before a degraded line re-arms
    /// its Table 3 algorithm.
    pub probation_window: u32,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            timeout_policy: TimeoutPolicy::Adaptive,
            // ~2 full unloaded circulations of headroom: generous enough
            // that congestion alone rarely trips a spurious (but still
            // harmless) retry, tight enough to bound recovery latency.
            queueing_slack: Cycles(700),
            backoff_base: Cycles(64),
            backoff_cap: Cycles(4096),
            retry_cap: 3,
            // Long enough that one lucky circulation during a fault
            // burst cannot re-arm filtering, short enough that a line
            // does not serve Lazy latency long after the burst ends.
            probation_window: 8,
        }
    }
}

/// The full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of CMP nodes (Table 4: 8).
    pub nodes: usize,
    /// Cores per CMP (4 for SPLASH-2 runs, 1 for the SPEC runs; §5.1).
    pub cores_per_cmp: usize,
    /// Cache geometries.
    pub caches: CacheParams,
    /// Latencies.
    pub timing: TimingParams,
    /// Memory.
    pub memory: MemoryParams,
    /// Embedded ring.
    pub ring: RingParams,
    /// Data network.
    pub data_net: DataNetParams,
    /// Policy knobs.
    pub policy: PolicyParams,
    /// Unreliable-ring recovery (inert on a lossless ring).
    pub recovery: RecoveryParams,
}

impl MachineConfig {
    /// The paper's evaluated machine (Table 4) with `cores_per_cmp` cores
    /// per chip.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_cmp` is zero.
    pub fn isca2006(cores_per_cmp: usize) -> Self {
        assert!(cores_per_cmp > 0, "cores_per_cmp must be positive");
        MachineConfig {
            nodes: 8,
            cores_per_cmp,
            caches: CacheParams {
                l1_bytes: 32 * 1024,
                l1_ways: 4,
                l2_bytes: 512 * 1024,
                l2_ways: 8,
                line_bytes: 64,
            },
            timing: TimingParams {
                l1_rt: Cycles(2),
                l2_rt: Cycles(11),
                cmp_bus_rt: Cycles(55),
                snoop_time: Cycles(55),
                snoop_occupancy: Cycles(10),
                gateway_latency: Cycles(4),
                predictor_latency: Cycles(2),
            },
            memory: MemoryParams {
                dram_latency: Cycles(300),
                controller_overhead: Cycles(40),
                occupancy: Cycles(30),
                home_prefetch: true,
            },
            ring: RingParams {
                // 39 cycles CMP-to-CMP (Table 4), split as 27 cycles of
                // propagation plus 12 cycles of serialization (a ~16 B
                // message on the 8 GB/s link at 6 GHz). A full 8-hop
                // circulation is 312 cycles — exactly the paper's
                // prefetched remote-memory round trip.
                rings: 2,
                hop_latency: Cycles(27),
                link_service: Cycles(12),
                hier: None,
            },
            data_net: DataNetParams {
                hop_latency: Cycles(10),
                router_latency: Cycles(4),
                link_service: Cycles(2),
            },
            policy: PolicyParams {
                exclusive_fill: false,
                max_outstanding_reads: 1,
                write_filtering: false,
            },
            recovery: RecoveryParams::default(),
        }
    }

    /// A machine sized for ring-scaling sweeps (`flexsnoop bench
    /// --scale`): `nodes` single-core CMPs with deliberately tiny caches
    /// so per-node state — not cache capacity — dominates the footprint,
    /// letting million-node rings fit in memory while still exercising
    /// evictions and the full coherence protocol. Timing parameters stay
    /// at the Table 4 values.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn scale(nodes: usize) -> Self {
        assert!(nodes > 0, "machine needs at least one CMP node");
        let mut cfg = Self::isca2006(1);
        cfg.nodes = nodes;
        // 8-line L1 (2-way), 32-line L2 (4-way): both keep power-of-two
        // set counts and force frequent evictions.
        cfg.caches.l1_bytes = 8 * cfg.caches.line_bytes;
        cfg.caches.l1_ways = 2;
        cfg.caches.l2_bytes = 32 * cfg.caches.line_bytes;
        cfg.caches.l2_ways = 4;
        cfg
    }

    /// A [`Self::scale`] machine arranged as `groups` hierarchical local
    /// rings of `local` nodes each (`nodes = local × groups`) with the
    /// [`default_hier`] bridge timing.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn hier_scale(local: usize, groups: usize) -> Self {
        let mut cfg = Self::scale(local * groups);
        cfg.ring.hier = Some(default_hier(local, groups));
        cfg
    }

    /// Total cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_cmp
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("machine needs at least one CMP node".into());
        }
        if self.cores_per_cmp == 0 {
            return Err("each CMP needs at least one core".into());
        }
        if !self.caches.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        if self.ring.rings == 0 {
            return Err("at least one embedded ring is required".into());
        }
        if let Some(h) = self.ring.hier {
            if h.local < 2 || h.groups < 2 {
                return Err("hierarchical shapes need at least 2 nodes in at least 2 rings".into());
            }
            if h.local * h.groups != self.nodes {
                return Err(format!(
                    "hierarchy {}x{} does not tile {} nodes",
                    h.local, h.groups, self.nodes
                ));
            }
        }
        if self.policy.max_outstanding_reads == 0 {
            return Err("cores need at least one outstanding read".into());
        }
        if self.recovery.backoff_base.as_u64() == 0 {
            return Err("retry backoff base must be positive".into());
        }
        if self.recovery.backoff_cap < self.recovery.backoff_base {
            return Err("retry backoff cap must be at least the base".into());
        }
        if self.recovery.probation_window == 0 {
            return Err("probation window must be at least one circulation".into());
        }
        let l1_lines = self.caches.l1_bytes / self.caches.line_bytes;
        if !l1_lines.is_multiple_of(self.caches.l1_ways)
            || !(l1_lines / self.caches.l1_ways).is_power_of_two()
        {
            return Err("L1 geometry must have a power-of-two set count".into());
        }
        let l2_lines = self.caches.l2_bytes / self.caches.line_bytes;
        if !l2_lines.is_multiple_of(self.caches.l2_ways)
            || !(l2_lines / self.caches.l2_ways).is_power_of_two()
        {
            return Err("L2 geometry must have a power-of-two set count".into());
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    /// The SPLASH-2 machine: 8 CMPs of 4 cores.
    fn default() -> Self {
        Self::isca2006(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        let c = MachineConfig::isca2006(4);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.total_cores(), 32);
        assert_eq!(c.caches.l1_bytes, 32 * 1024);
        assert_eq!(c.caches.l1_ways, 4);
        assert_eq!(c.caches.l2_bytes, 512 * 1024);
        assert_eq!(c.caches.l2_ways, 8);
        assert_eq!(c.caches.line_bytes, 64);
        assert_eq!(c.timing.l1_rt, Cycles(2));
        assert_eq!(c.timing.l2_rt, Cycles(11));
        assert_eq!(c.timing.cmp_bus_rt, Cycles(55));
        assert_eq!(c.timing.snoop_time, Cycles(55));
        assert_eq!(c.timing.snoop_occupancy, Cycles(10));
        assert_eq!(c.ring.rings, 2);
        assert_eq!(
            c.ring.hop_latency.as_u64() + c.ring.link_service.as_u64(),
            39,
            "Table 4: 39-cycle CMP-to-CMP hop"
        );
        assert_eq!(c.memory.dram_latency, Cycles(300));
        assert!(c.memory.home_prefetch);
    }

    #[test]
    fn default_is_valid() {
        assert!(MachineConfig::default().validate().is_ok());
    }

    #[test]
    fn scale_machine_is_valid_at_any_size() {
        for nodes in [1usize, 8, 1024, 1 << 20] {
            let c = MachineConfig::scale(nodes);
            assert!(c.validate().is_ok(), "{nodes} nodes");
            assert_eq!(c.nodes, nodes);
            assert_eq!(c.cores_per_cmp, 1);
            assert!(c.caches.l2_bytes <= 32 * c.caches.line_bytes);
        }
    }

    #[test]
    fn spec_machine_is_valid() {
        assert!(MachineConfig::isca2006(1).validate().is_ok());
        assert_eq!(MachineConfig::isca2006(1).total_cores(), 8);
    }

    #[test]
    fn mlp_knob_defaults_to_blocking() {
        assert_eq!(MachineConfig::default().policy.max_outstanding_reads, 1);
        let mut c = MachineConfig::default();
        c.policy.max_outstanding_reads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut c = MachineConfig::default();
        c.caches.line_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::default();
        c.ring.rings = 0;
        assert!(c.validate().is_err());

        let c = MachineConfig {
            nodes: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn hier_shape_must_tile_the_machine() {
        let c = MachineConfig::hier_scale(4, 4);
        assert_eq!(c.nodes, 16);
        assert!(c.validate().is_ok());

        let mut c = MachineConfig::hier_scale(4, 4);
        c.nodes = 8;
        assert!(c.validate().is_err(), "4x4 does not tile 8 nodes");

        let mut c = MachineConfig::isca2006(1);
        c.ring.hier = Some(default_hier(1, 8));
        assert!(c.validate().is_err(), "single-node local rings rejected");
    }

    #[test]
    fn recovery_defaults_are_adaptive_with_probation() {
        let r = RecoveryParams::default();
        assert_eq!(r.timeout_policy, TimeoutPolicy::Adaptive);
        assert!(r.probation_window > 0);
        let mut c = MachineConfig::default();
        c.recovery.probation_window = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ring_round_trip_approximates_paper() {
        // A full circulation of the 8-node ring ≈ 8 × (39 + 4) = 344 cycles,
        // in the neighbourhood of the paper's 312-cycle prefetched remote RT.
        let c = MachineConfig::default();
        let circ = (c.ring.hop_latency.as_u64() + c.ring.link_service.as_u64()) * 8;
        assert!((300..400).contains(&circ), "circulation = {circ}");
    }
}
