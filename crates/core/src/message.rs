//! Ring message representation.
//!
//! A snoop transaction travels the ring as at most two messages at a time:
//! a *request carrier* ([`MsgKind::Request`] or [`MsgKind::Combined`]) and,
//! when split, a trailing *reply* ([`MsgKind::Reply`]). Table 2's
//! primitives split, merge and recombine these; the reply accumulator
//! ([`ReplyInfo`]) rides inside `Reply` and `Combined` messages.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::{CmpId, LineAddr};

/// Unique transaction identifier.
///
/// Packs an arena slot (low 32 bits) and a generation counter (high
/// 32 bits) so the in-flight transaction table can be a slab indexed by
/// slot while stale ids from a recycled slot can never alias a newer
/// transaction (see [`crate::arena::TxnArena`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Builds an id from an arena slot index and that slot's generation.
    #[inline]
    pub fn from_parts(slot: u32, generation: u32) -> Self {
        TxnId(((generation as u64) << 32) | slot as u64)
    }

    /// The arena slot this id refers to.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The generation the slot had when this id was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // First-generation ids print as plain "txnN"; recycled slots add a
        // generation suffix so every live id renders uniquely in traces.
        if self.generation() == 0 {
            write!(f, "txn{}", self.slot())
        } else {
            write!(f, "txn{}g{}", self.slot(), self.generation())
        }
    }
}

impl Snapshot for TxnId {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.0 = r.get_u64()?;
        Ok(())
    }
}

/// Read or write transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// A read snoop transaction (miss looking for a supplier).
    Read,
    /// A write snoop transaction (invalidation; may also collect data).
    Write,
}

/// The accumulated outcome a reply carries around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyInfo {
    /// A supplier was found; data is on its way to the requester.
    pub found: bool,
    /// Every node visited so far actually snooped (false once any node
    /// filtered). Needed to prove exclusivity for `E` fills.
    pub all_snooped: bool,
    /// Some node held a valid (even non-supplier) copy.
    pub any_copy: bool,
}

impl ReplyInfo {
    /// The accumulator's initial value at the requester.
    pub fn start() -> Self {
        ReplyInfo {
            found: false,
            all_snooped: true,
            any_copy: false,
        }
    }

    /// Folds one node's snoop outcome into the accumulator.
    pub fn merge_snoop(&mut self, found_here: bool, any_copy_here: bool) {
        self.found |= found_here;
        self.any_copy |= any_copy_here;
    }

    /// Marks that a node was skipped without snooping.
    pub fn mark_filtered(&mut self) {
        self.all_snooped = false;
    }

    /// Folds another accumulator (e.g. a buffered trailing reply) in.
    pub fn merge(&mut self, other: ReplyInfo) {
        self.found |= other.found;
        self.all_snooped &= other.all_snooped;
        self.any_copy |= other.any_copy;
    }

    /// Whether a memory fill may install `E`: no supplier, every node
    /// snooped, no copy anywhere.
    pub fn proves_exclusive(&self) -> bool {
        !self.found && self.all_snooped && !self.any_copy
    }
}

impl Snapshot for TxnOp {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            TxnOp::Read => 0,
            TxnOp::Write => 1,
        });
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        *self = match r.get_u8()? {
            0 => TxnOp::Read,
            1 => TxnOp::Write,
            _ => return Err(SnapError::Corrupt("transaction-op tag out of range")),
        };
        Ok(())
    }
}

impl Snapshot for ReplyInfo {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_bool(self.found);
        w.put_bool(self.all_snooped);
        w.put_bool(self.any_copy);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.found = r.get_bool()?;
        self.all_snooped = r.get_bool()?;
        self.any_copy = r.get_bool()?;
        Ok(())
    }
}

/// What a ring message is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// A bare snoop request running ahead of its reply.
    Request,
    /// A trailing snoop reply with the accumulator.
    Reply(ReplyInfo),
    /// A combined request/reply (Table 2's "Combined R/R").
    Combined(ReplyInfo),
}

impl MsgKind {
    /// Whether this message can trigger snoops downstream (a request
    /// carrier whose outcome is still open).
    pub fn is_open_request(&self) -> bool {
        match self {
            MsgKind::Request => true,
            MsgKind::Combined(info) => !info.found,
            MsgKind::Reply(_) => false,
        }
    }

    /// The accumulator, if this message carries one.
    pub fn info(&self) -> Option<ReplyInfo> {
        match self {
            MsgKind::Request => None,
            MsgKind::Reply(i) | MsgKind::Combined(i) => Some(*i),
        }
    }
}

/// How far a snoop circulation is allowed to travel on a hierarchical
/// topology. Flat rings always run [`SnoopScope::Global`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopScope {
    /// The circulation stays inside the requester's local ring; a
    /// negative outcome escalates to a fresh global circulation instead
    /// of going to memory (the locality predictor was wrong).
    Local,
    /// The circulation visits every node in the machine: all local rings,
    /// stitched together through the global bridge ring. This is the
    /// scope that preserves the paper's eventually-visits-every-supplier
    /// guarantee; a negative global outcome may go to memory.
    Global,
}

impl Snapshot for SnoopScope {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            SnoopScope::Local => 0,
            SnoopScope::Global => 1,
        });
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        *self = match r.get_u8()? {
            0 => SnoopScope::Local,
            1 => SnoopScope::Global,
            _ => return Err(SnapError::Corrupt("snoop-scope tag out of range")),
        };
        Ok(())
    }
}

/// One message on the embedded ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingMsg {
    /// The transaction it belongs to.
    pub txn: TxnId,
    /// The line being snooped.
    pub line: LineAddr,
    /// Read or write.
    pub op: TxnOp,
    /// The node that started the transaction (messages stop there).
    pub requester: CmpId,
    /// Payload.
    pub kind: MsgKind,
    /// Which circulation attempt of the transaction this message belongs
    /// to (0 = the original issue; bumped by timeout retries). Deliveries
    /// from superseded attempts are discarded on an unreliable ring.
    pub attempt: u32,
    /// Emission sequence number, unique per `(txn, attempt)` emission.
    /// Each emitted message reaches exactly one downstream gateway, so a
    /// repeated `(attempt, seq)` delivery is an injected duplicate and is
    /// suppressed. Always 0 on a lossless ring (never consulted).
    pub seq: u32,
    /// Circulation scope (always [`SnoopScope::Global`] on a flat ring).
    pub scope: SnoopScope,
    /// Whether the last hop this message took was a global (bridge) link.
    /// Nodes reached over the global ring act as pure switches: they
    /// inject the message into their local ring without snooping, so a
    /// global circulation snoops every node exactly once.
    pub via_global: bool,
}

impl Snapshot for MsgKind {
    fn save_into(&self, w: &mut SnapWriter) {
        match self {
            MsgKind::Request => w.put_u8(0),
            MsgKind::Reply(info) => {
                w.put_u8(1);
                info.save_into(w);
            }
            MsgKind::Combined(info) => {
                w.put_u8(2);
                info.save_into(w);
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut info = ReplyInfo::start();
        *self = match r.get_u8()? {
            0 => MsgKind::Request,
            1 => {
                info.restore_from(r)?;
                MsgKind::Reply(info)
            }
            2 => {
                info.restore_from(r)?;
                MsgKind::Combined(info)
            }
            _ => return Err(SnapError::Corrupt("message-kind tag out of range")),
        };
        Ok(())
    }
}

impl Snapshot for RingMsg {
    fn save_into(&self, w: &mut SnapWriter) {
        self.txn.save_into(w);
        w.put_u64(self.line.0);
        self.op.save_into(w);
        w.put_usize(self.requester.0);
        self.kind.save_into(w);
        w.put_u32(self.attempt);
        w.put_u32(self.seq);
        self.scope.save_into(w);
        w.put_bool(self.via_global);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.txn.restore_from(r)?;
        self.line = LineAddr(r.get_u64()?);
        self.op.restore_from(r)?;
        self.requester = CmpId(r.get_usize()?);
        self.kind.restore_from(r)?;
        self.attempt = r.get_u32()?;
        self.seq = r.get_u32()?;
        self.scope.restore_from(r)?;
        self.via_global = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_starts_open() {
        let i = ReplyInfo::start();
        assert!(!i.found);
        assert!(i.all_snooped);
        assert!(!i.any_copy);
        assert!(i.proves_exclusive() || i.proves_exclusive());
    }

    #[test]
    fn merge_snoop_accumulates() {
        let mut i = ReplyInfo::start();
        i.merge_snoop(false, true);
        assert!(!i.found && i.any_copy);
        i.merge_snoop(true, true);
        assert!(i.found);
        assert!(i.all_snooped, "snooping keeps the all-snooped proof");
    }

    #[test]
    fn filtering_destroys_exclusivity_proof() {
        let mut i = ReplyInfo::start();
        assert!(i.proves_exclusive());
        i.mark_filtered();
        assert!(!i.proves_exclusive());
    }

    #[test]
    fn copies_destroy_exclusivity_proof() {
        let mut i = ReplyInfo::start();
        i.merge_snoop(false, true);
        assert!(!i.proves_exclusive());
    }

    #[test]
    fn merge_combines_pessimistically() {
        let mut a = ReplyInfo::start();
        let mut b = ReplyInfo::start();
        b.mark_filtered();
        b.merge_snoop(true, true);
        a.merge(b);
        assert!(a.found && !a.all_snooped && a.any_copy);
    }

    #[test]
    fn open_request_classification() {
        assert!(MsgKind::Request.is_open_request());
        assert!(MsgKind::Combined(ReplyInfo::start()).is_open_request());
        let mut found = ReplyInfo::start();
        found.merge_snoop(true, true);
        assert!(!MsgKind::Combined(found).is_open_request());
        assert!(!MsgKind::Reply(ReplyInfo::start()).is_open_request());
    }

    #[test]
    fn info_extraction() {
        assert_eq!(MsgKind::Request.info(), None);
        let i = ReplyInfo::start();
        assert_eq!(MsgKind::Reply(i).info(), Some(i));
        assert_eq!(MsgKind::Combined(i).info(), Some(i));
    }
}
