//! High-level experiment runners used by the benches and examples.

use std::collections::BTreeMap;

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_predictor::PredictorSpec;
use flexsnoop_workload::{AccessStream, MemAccess, Trace, WorkloadGroup, WorkloadProfile};

use crate::algorithm::Algorithm;
use crate::sim::Simulator;
use crate::stats::RunStats;

/// An owned replay stream over a recorded per-core access vector.
#[derive(Debug, Clone)]
pub struct VecStream {
    accesses: Vec<MemAccess>,
    pos: usize,
}

impl VecStream {
    /// Creates a stream replaying `accesses` in order.
    pub fn new(accesses: Vec<MemAccess>) -> Self {
        Self { accesses, pos: 0 }
    }

    /// One owned stream per core from a recorded trace.
    pub fn from_trace(trace: &Trace) -> Vec<VecStream> {
        (0..trace.cores())
            .map(|c| VecStream::new(trace.core(c).to_vec()))
            .collect()
    }
}

/// Serializes only the replay cursor; the access vector is configuration.
impl Snapshot for VecStream {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.pos);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let pos = r.get_usize()?;
        if pos > self.accesses.len() {
            return Err(SnapError::Corrupt("replay cursor is past the stream end"));
        }
        self.pos = pos;
        Ok(())
    }
}

impl AccessStream for VecStream {
    fn next_access(&mut self) -> Option<MemAccess> {
        let a = self.accesses.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }
}

/// Runs one workload under one algorithm (with its default predictor
/// unless overridden) and returns the statistics.
///
/// # Errors
///
/// Propagates configuration errors from [`Simulator::for_workload`].
pub fn run_workload(
    profile: &WorkloadProfile,
    algorithm: Algorithm,
    predictor: Option<PredictorSpec>,
    seed: u64,
) -> Result<RunStats, String> {
    let mut sim = Simulator::for_workload(profile, algorithm, predictor, seed)?;
    Ok(sim.run())
}

/// Runs one workload under several algorithms in parallel on the shared
/// bounded executor (see [`flexsnoop_engine::Executor`]); each simulator
/// is independent and deterministic, so results do not depend on the
/// worker count.
///
/// # Panics
///
/// Panics if any run fails to configure — the algorithm list is expected
/// to be paired with legal predictors.
pub fn run_algorithms(
    profile: &WorkloadProfile,
    algorithms: &[Algorithm],
    seed: u64,
) -> Vec<(Algorithm, RunStats)> {
    let tasks: Vec<_> = algorithms
        .iter()
        .map(|&alg| {
            move || {
                let stats = run_workload(profile, alg, None, seed)
                    .unwrap_or_else(|e| panic!("run {alg} failed: {e}"));
                (alg, stats)
            }
        })
        .collect();
    flexsnoop_engine::Executor::with_default().run(tasks)
}

/// Per-group aggregation of a metric over many workloads.
///
/// SPLASH-2 uses the arithmetic mean for absolute metrics and the
/// geometric mean for normalized metrics (matching the paper's figures);
/// the SPEC groups contain a single workload each.
#[derive(Debug, Clone, Default)]
pub struct GroupAggregator {
    values: BTreeMap<&'static str, Vec<f64>>,
}

impl GroupAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(group: WorkloadGroup) -> &'static str {
        match group {
            WorkloadGroup::Splash2 => "SPLASH-2",
            WorkloadGroup::SpecJbb => "SPECjbb",
            WorkloadGroup::SpecWeb => "SPECweb",
        }
    }

    /// Records one workload's metric value.
    pub fn record(&mut self, group: WorkloadGroup, value: f64) {
        self.values.entry(Self::key(group)).or_default().push(value);
    }

    /// Arithmetic mean per group, in a stable order.
    pub fn means(&self) -> Vec<(&'static str, f64)> {
        self.values
            .iter()
            .map(|(k, v)| (*k, flexsnoop_metrics::mean(v)))
            .collect()
    }

    /// Geometric mean per group, in a stable order.
    pub fn geomeans(&self) -> Vec<(&'static str, f64)> {
        self.values
            .iter()
            .map(|(k, v)| (*k, flexsnoop_metrics::geomean(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsnoop_engine::Cycles;
    use flexsnoop_mem::LineAddr;

    #[test]
    fn vec_stream_replays_and_ends() {
        let mut s = VecStream::new(vec![
            MemAccess::read(LineAddr(1), Cycles(1)),
            MemAccess::write(LineAddr(2), Cycles(2)),
        ]);
        assert_eq!(s.next_access().unwrap().line, LineAddr(1));
        assert!(s.next_access().unwrap().write);
        assert_eq!(s.next_access(), None);
    }

    #[test]
    fn aggregator_groups_and_averages() {
        let mut agg = GroupAggregator::new();
        agg.record(WorkloadGroup::Splash2, 2.0);
        agg.record(WorkloadGroup::Splash2, 8.0);
        agg.record(WorkloadGroup::SpecJbb, 3.0);
        let means = agg.means();
        assert_eq!(means[0], ("SPECjbb", 3.0));
        assert_eq!(means[1].0, "SPLASH-2");
        assert!((means[1].1 - 5.0).abs() < 1e-12);
        let geo = agg.geomeans();
        assert!((geo[1].1 - 4.0).abs() < 1e-12);
    }
}
