//! Run-level observability probes.
//!
//! A [`Probe`] is a sink for fine-grained events the simulators emit while
//! running: which Table 2 primitive each node picked, presence-filter
//! outcomes on writes, predictor activity, per-hop ring latency, and event
//! queue depth. Every hook has a no-op default, so a probe implementation
//! only pays for what it observes, and a simulator with no probe installed
//! pays a single branch per hook site.
//!
//! [`CountingProbe`] is the built-in implementation: it aggregates every
//! hook into a [`ProbeReport`] that the CLI's `--probe` flag surfaces in
//! the JSON benchmark artifacts.
//!
//! # Example
//!
//! ```
//! use flexsnoop::{Algorithm, Simulator};
//! use flexsnoop_workload::profiles;
//!
//! # fn main() -> Result<(), String> {
//! let workload = profiles::uniform_microbench(8, 50);
//! let mut sim = Simulator::for_workload(&workload, Algorithm::SupersetCon, None, 7)?;
//! sim.enable_probe();
//! let stats = sim.run();
//! let report = sim.probe_report().expect("probe was enabled");
//! // Every dispatched event was observed.
//! assert_eq!(report.events, stats.events);
//! // SupersetCon consults its predictor at every open read request.
//! assert!(report.predictor_lookups > 0);
//! # Ok(())
//! # }
//! ```

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::Cycles;
use flexsnoop_metrics::Histogram;
use flexsnoop_net::RingFault;

use crate::algorithm::SnoopAction;

/// A sink for run-level observability events.
///
/// All methods have no-op defaults; implement only the hooks you care
/// about. The simulators call these from their hot paths, so
/// implementations should be cheap — counters, not I/O.
pub trait Probe: Send {
    /// An open read request-carrier arrived at a node and the algorithm
    /// chose `action` (one of the Table 2 primitives).
    fn snoop_action(&mut self, action: SnoopAction) {
        let _ = action;
    }

    /// A write invalidation consulted the presence filter at a node;
    /// `skipped` is true when the filter proved absence and the snoop was
    /// elided (§5.3 extension). Only fired when write filtering is on.
    fn write_filter(&mut self, skipped: bool) {
        let _ = skipped;
    }

    /// A supplier predictor was consulted for an open read request;
    /// `positive` is its answer.
    fn predictor_lookup(&mut self, positive: bool) {
        let _ = positive;
    }

    /// Total predictor training operations, reported once per node at the
    /// end of the run (trainings happen inside the predictor and are
    /// cheapest to total from its own counters).
    fn predictor_trained(&mut self, count: u64) {
        let _ = count;
    }

    /// A message traversed one ring link; `latency` is the full
    /// leave-to-arrival time including link contention.
    fn ring_hop(&mut self, latency: Cycles) {
        let _ = latency;
    }

    /// An event was dispatched; `queue_depth` is the number of events
    /// still pending afterwards.
    fn event_dispatched(&mut self, queue_depth: usize) {
        let _ = queue_depth;
    }

    /// The fault plan perturbed one link crossing (drop, duplicate or
    /// delay). Only fired on an unreliable ring.
    fn ring_fault(&mut self, fault: RingFault) {
        let _ = fault;
    }

    /// A delivery was discarded by sequence-number dedup: `stale` is
    /// true when it belonged to a superseded retry attempt, false when
    /// it was a duplicate of an already-processed message.
    fn delivery_suppressed(&mut self, stale: bool) {
        let _ = stale;
    }

    /// A requester-side timeout fired and found its transaction's ring
    /// phase still unresolved; `attempt` is the attempt that timed out
    /// (0 = the original issue).
    fn timeout_fired(&mut self, attempt: u32) {
        let _ = attempt;
    }

    /// A transaction was re-issued on the ring after a timeout;
    /// `attempt` is the new attempt number (1 = first retry).
    fn retry_issued(&mut self, attempt: u32) {
        let _ = attempt;
    }

    /// A line entered degraded (Lazy-forwarding) mode after a
    /// transaction exhausted its retry cap.
    fn degraded_mode_entered(&mut self) {}

    /// A degraded line completed its probation window of clean
    /// circulations and re-armed the configured Table 3 algorithm.
    fn probation_exited(&mut self) {}

    /// A timeout on a degraded line reset its probation counter.
    fn probation_reset(&mut self) {}

    /// A stale reply from a superseded attempt reached the requester:
    /// the retried circulation had actually completed, so the retry was
    /// spurious in hindsight.
    fn spurious_retry(&mut self) {}

    /// The adaptive timeout estimator absorbed one observed ring round
    /// trip; `rtt` is the sample, `estimate` the resulting timeout for
    /// the next attempt-0 window at this requester.
    fn rtt_sampled(&mut self, rtt: Cycles, estimate: Cycles) {
        let _ = (rtt, estimate);
    }

    /// The fault plan dropped one torus data message.
    fn torus_fault(&mut self) {}

    /// A per-group locality table was consulted for an open read on a
    /// hierarchical topology; `local` is its answer (true = circulate
    /// locally). Never fired on a flat ring.
    fn locality_lookup(&mut self, local: bool) {
        let _ = local;
    }

    /// A local-scope circulation came back empty-handed and was
    /// escalated to a full global circulation (hierarchical topologies
    /// only; this is a misprediction, not a fault retry).
    fn escalation(&mut self) {}

    /// A request-carrier crossed one bridge link on the global ring;
    /// `latency` is the full leave-to-arrival time including bridge
    /// contention. Never fired on a flat ring.
    fn bridge_hop(&mut self, latency: Cycles) {
        let _ = latency;
    }

    /// End-of-run memory accounting: the simulator's estimated heap
    /// footprint ([`crate::Simulator::memory_footprint`]) plus the
    /// process's peak resident set (0 when the platform cannot report
    /// it). Fired exactly once, after the event loop drains.
    fn footprint(&mut self, bytes_per_node: u64, total_bytes: u64, peak_rss_bytes: u64) {
        let _ = (bytes_per_node, total_bytes, peak_rss_bytes);
    }

    /// The aggregated report, if this probe produces one.
    ///
    /// The default returns `None`; [`CountingProbe`] overrides it. This
    /// lets [`Simulator::probe_report`](crate::Simulator::probe_report)
    /// work through the trait object without downcasting.
    fn report(&self) -> Option<ProbeReport> {
        None
    }
}

/// Aggregated observability counters from one simulation run.
///
/// Produced by [`CountingProbe`]; serialized into the `probe` section of
/// the JSON benchmark artifacts when the CLI runs with `--probe`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeReport {
    /// Read requests passed through without snooping (`forward`).
    pub forwards: u64,
    /// Read requests forwarded in parallel with a snoop
    /// (`forward then snoop`).
    pub forward_then_snoop: u64,
    /// Read requests held until the local snoop finished
    /// (`snoop then forward`).
    pub snoop_then_forward: u64,
    /// Write invalidations skipped because the presence filter proved
    /// absence.
    pub write_filter_hits: u64,
    /// Write invalidations that had to snoop despite the presence filter.
    pub write_filter_misses: u64,
    /// Supplier-predictor consultations on the read path.
    pub predictor_lookups: u64,
    /// Consultations that predicted a resident supplier.
    pub predictor_positive: u64,
    /// Predictor training operations across all nodes.
    pub predictor_trains: u64,
    /// Events dispatched by the scheduler.
    pub events: u64,
    /// Highest pending-event count observed after any dispatch.
    pub queue_depth_high_water: usize,
    /// Leave-to-arrival latency of every ring hop, in cycles.
    pub ring_hop_latency: Histogram,
    /// Ring messages dropped by the fault plan.
    pub ring_drops: u64,
    /// Ring messages duplicated by the fault plan.
    pub ring_duplicates: u64,
    /// Ring messages delayed by the fault plan.
    pub ring_delays: u64,
    /// Duplicate deliveries suppressed by sequence-number dedup.
    pub duplicates_suppressed: u64,
    /// Deliveries discarded for belonging to a superseded attempt.
    pub stale_deliveries: u64,
    /// Requester-side timeouts that fired.
    pub timeouts: u64,
    /// Transaction retries issued.
    pub retries: u64,
    /// Lines that entered degraded (Lazy-forwarding) mode.
    pub degraded_entries: u64,
    /// Degraded lines that re-armed their algorithm after probation.
    pub probation_exits: u64,
    /// Probation counters reset by a timeout on the line.
    pub probation_resets: u64,
    /// Retries proven unnecessary by a late-arriving stale reply.
    pub spurious_retries: u64,
    /// Ring round trips fed to the adaptive timeout estimator.
    pub rtt_samples: u64,
    /// Timeout-estimate values after each sample, in cycles.
    pub timeout_estimate: Histogram,
    /// Torus data messages dropped by the fault plan.
    pub torus_drops: u64,
    /// Estimated simulator heap bytes per ring node (deterministic for a
    /// fixed configuration and workload).
    pub bytes_per_node: u64,
    /// Estimated total simulator heap footprint in bytes.
    pub footprint_total_bytes: u64,
    /// Peak resident set of the whole process in bytes (`VmHWM`); 0 when
    /// the platform cannot report it. Volatile: never serialized into
    /// deterministic artifact sections.
    pub peak_rss_bytes: u64,
    /// Locality-table consultations (hierarchical topologies only).
    pub locality_lookups: u64,
    /// Consultations that predicted an in-ring supplier.
    pub locality_local: u64,
    /// Local circulations escalated to global after missing in-ring.
    pub escalations: u64,
    /// Bridge-link crossings on the global ring.
    pub bridge_hops: u64,
    /// Leave-to-arrival latency of every bridge hop, in cycles.
    pub bridge_hop_latency: Histogram,
}

impl ProbeReport {
    /// Total Table 2 primitive decisions observed on the read path.
    pub fn total_actions(&self) -> u64 {
        self.forwards + self.forward_then_snoop + self.snoop_then_forward
    }

    /// Fraction of presence-filter consultations that elided a write
    /// snoop (0.0 when write filtering never fired).
    pub fn write_filter_hit_rate(&self) -> f64 {
        let total = self.write_filter_hits + self.write_filter_misses;
        if total == 0 {
            0.0
        } else {
            self.write_filter_hits as f64 / total as f64
        }
    }

    /// Fraction of predictor lookups that answered "supplier present"
    /// (0.0 when the algorithm uses no predictor).
    pub fn predictor_positive_rate(&self) -> f64 {
        if self.predictor_lookups == 0 {
            0.0
        } else {
            self.predictor_positive as f64 / self.predictor_lookups as f64
        }
    }
}

/// The built-in [`Probe`]: counts every hook into a [`ProbeReport`].
#[derive(Debug, Clone, Default)]
pub struct CountingProbe {
    report: ProbeReport,
}

impl CountingProbe {
    /// Creates a probe with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters aggregated so far.
    pub fn snapshot(&self) -> &ProbeReport {
        &self.report
    }
}

impl Probe for CountingProbe {
    fn snoop_action(&mut self, action: SnoopAction) {
        match action {
            SnoopAction::Forward => self.report.forwards += 1,
            SnoopAction::ForwardThenSnoop => self.report.forward_then_snoop += 1,
            SnoopAction::SnoopThenForward => self.report.snoop_then_forward += 1,
        }
    }

    fn write_filter(&mut self, skipped: bool) {
        if skipped {
            self.report.write_filter_hits += 1;
        } else {
            self.report.write_filter_misses += 1;
        }
    }

    fn predictor_lookup(&mut self, positive: bool) {
        self.report.predictor_lookups += 1;
        if positive {
            self.report.predictor_positive += 1;
        }
    }

    fn predictor_trained(&mut self, count: u64) {
        self.report.predictor_trains += count;
    }

    fn ring_hop(&mut self, latency: Cycles) {
        self.report.ring_hop_latency.record(latency.0);
    }

    fn event_dispatched(&mut self, queue_depth: usize) {
        self.report.events += 1;
        if queue_depth > self.report.queue_depth_high_water {
            self.report.queue_depth_high_water = queue_depth;
        }
    }

    fn ring_fault(&mut self, fault: RingFault) {
        match fault {
            RingFault::Dropped => self.report.ring_drops += 1,
            RingFault::Duplicated => self.report.ring_duplicates += 1,
            RingFault::Delayed(_) => self.report.ring_delays += 1,
        }
    }

    fn delivery_suppressed(&mut self, stale: bool) {
        if stale {
            self.report.stale_deliveries += 1;
        } else {
            self.report.duplicates_suppressed += 1;
        }
    }

    fn timeout_fired(&mut self, _attempt: u32) {
        self.report.timeouts += 1;
    }

    fn retry_issued(&mut self, _attempt: u32) {
        self.report.retries += 1;
    }

    fn degraded_mode_entered(&mut self) {
        self.report.degraded_entries += 1;
    }

    fn probation_exited(&mut self) {
        self.report.probation_exits += 1;
    }

    fn probation_reset(&mut self) {
        self.report.probation_resets += 1;
    }

    fn spurious_retry(&mut self) {
        self.report.spurious_retries += 1;
    }

    fn rtt_sampled(&mut self, _rtt: Cycles, estimate: Cycles) {
        self.report.rtt_samples += 1;
        self.report.timeout_estimate.record(estimate.0);
    }

    fn torus_fault(&mut self) {
        self.report.torus_drops += 1;
    }

    fn locality_lookup(&mut self, local: bool) {
        self.report.locality_lookups += 1;
        if local {
            self.report.locality_local += 1;
        }
    }

    fn escalation(&mut self) {
        self.report.escalations += 1;
    }

    fn bridge_hop(&mut self, latency: Cycles) {
        self.report.bridge_hops += 1;
        self.report.bridge_hop_latency.record(latency.0);
    }

    fn footprint(&mut self, bytes_per_node: u64, total_bytes: u64, peak_rss_bytes: u64) {
        self.report.bytes_per_node = bytes_per_node;
        self.report.footprint_total_bytes = total_bytes;
        self.report.peak_rss_bytes = peak_rss_bytes;
    }

    fn report(&self) -> Option<ProbeReport> {
        Some(self.report.clone())
    }
}

/// Serializes every deterministic counter and histogram.
/// `peak_rss_bytes` is deliberately *not* carried: it is volatile by
/// contract (see its field docs), and the sweep service's results cache
/// byte-compares serialized reports across runs — a resident-set number
/// would make two identical simulations encode differently.
impl Snapshot for ProbeReport {
    fn save_into(&self, w: &mut SnapWriter) {
        for v in [
            self.forwards,
            self.forward_then_snoop,
            self.snoop_then_forward,
            self.write_filter_hits,
            self.write_filter_misses,
            self.predictor_lookups,
            self.predictor_positive,
            self.predictor_trains,
            self.events,
            self.queue_depth_high_water as u64,
            self.ring_drops,
            self.ring_duplicates,
            self.ring_delays,
            self.duplicates_suppressed,
            self.stale_deliveries,
            self.timeouts,
            self.retries,
            self.degraded_entries,
            self.probation_exits,
            self.probation_resets,
            self.spurious_retries,
            self.rtt_samples,
            self.torus_drops,
            self.bytes_per_node,
            self.footprint_total_bytes,
            self.locality_lookups,
            self.locality_local,
            self.escalations,
            self.bridge_hops,
        ] {
            w.put_u64(v);
        }
        self.ring_hop_latency.save_into(w);
        self.timeout_estimate.save_into(w);
        self.bridge_hop_latency.save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for v in [
            &mut self.forwards,
            &mut self.forward_then_snoop,
            &mut self.snoop_then_forward,
            &mut self.write_filter_hits,
            &mut self.write_filter_misses,
            &mut self.predictor_lookups,
            &mut self.predictor_positive,
            &mut self.predictor_trains,
            &mut self.events,
        ] {
            *v = r.get_u64()?;
        }
        self.queue_depth_high_water = r.get_u64()? as usize;
        for v in [
            &mut self.ring_drops,
            &mut self.ring_duplicates,
            &mut self.ring_delays,
            &mut self.duplicates_suppressed,
            &mut self.stale_deliveries,
            &mut self.timeouts,
            &mut self.retries,
            &mut self.degraded_entries,
            &mut self.probation_exits,
            &mut self.probation_resets,
            &mut self.spurious_retries,
            &mut self.rtt_samples,
            &mut self.torus_drops,
            &mut self.bytes_per_node,
            &mut self.footprint_total_bytes,
            &mut self.locality_lookups,
            &mut self.locality_local,
            &mut self.escalations,
            &mut self.bridge_hops,
        ] {
            *v = r.get_u64()?;
        }
        self.peak_rss_bytes = 0;
        self.ring_hop_latency.restore_from(r)?;
        self.timeout_estimate.restore_from(r)?;
        self.bridge_hop_latency.restore_from(r)
    }
}

/// Parses the `VmHWM` field out of a `/proc/self/status` dump.
///
/// The unit token is honoured explicitly instead of assuming kibibytes:
/// a missing or unrecognized unit (or a value that overflows when
/// scaled) yields `None` — "unavailable" beats a silently mis-scaled
/// number in a benchmark artifact.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let mut fields = line["VmHWM:".len()..].split_whitespace();
    let value: u64 = fields.next()?.parse().ok()?;
    let scale: u64 = match fields.next()? {
        "B" => 1,
        "kB" | "KB" | "KiB" => 1 << 10,
        "mB" | "MB" | "MiB" => 1 << 20,
        "gB" | "GB" | "GiB" => 1 << 30,
        _ => return None,
    };
    value.checked_mul(scale)
}

/// Peak resident set of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` on platforms without
/// procfs or when the field is missing or malformed — callers should
/// treat the value as best-effort and volatile.
pub fn peak_rss_bytes() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_probe_aggregates_all_hooks() {
        let mut p = CountingProbe::new();
        p.snoop_action(SnoopAction::Forward);
        p.snoop_action(SnoopAction::ForwardThenSnoop);
        p.snoop_action(SnoopAction::SnoopThenForward);
        p.snoop_action(SnoopAction::Forward);
        p.write_filter(true);
        p.write_filter(false);
        p.write_filter(true);
        p.predictor_lookup(true);
        p.predictor_lookup(false);
        p.predictor_trained(5);
        p.ring_hop(Cycles(12));
        p.ring_hop(Cycles(20));
        p.event_dispatched(3);
        p.event_dispatched(7);
        p.event_dispatched(2);
        p.ring_fault(RingFault::Dropped);
        p.ring_fault(RingFault::Duplicated);
        p.ring_fault(RingFault::Delayed(Cycles(10)));
        p.ring_fault(RingFault::Dropped);
        p.delivery_suppressed(false);
        p.delivery_suppressed(true);
        p.timeout_fired(0);
        p.retry_issued(1);
        p.degraded_mode_entered();
        p.probation_exited();
        p.probation_reset();
        p.probation_reset();
        p.spurious_retry();
        p.rtt_sampled(Cycles(344), Cycles(430));
        p.rtt_sampled(Cycles(500), Cycles(620));
        p.torus_fault();
        p.locality_lookup(true);
        p.locality_lookup(false);
        p.locality_lookup(true);
        p.escalation();
        p.bridge_hop(Cycles(66));
        p.bridge_hop(Cycles(80));
        p.footprint(512, 4096, 1 << 20);
        let r = p.report().unwrap();
        assert_eq!(r.forwards, 2);
        assert_eq!(r.forward_then_snoop, 1);
        assert_eq!(r.snoop_then_forward, 1);
        assert_eq!(r.total_actions(), 4);
        assert_eq!(r.write_filter_hits, 2);
        assert_eq!(r.write_filter_misses, 1);
        assert!((r.write_filter_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.predictor_lookups, 2);
        assert_eq!(r.predictor_positive, 1);
        assert!((r.predictor_positive_rate() - 0.5).abs() < 1e-12);
        assert_eq!(r.predictor_trains, 5);
        assert_eq!(r.ring_hop_latency.count(), 2);
        assert_eq!(r.ring_hop_latency.min(), Some(12));
        assert_eq!(r.ring_hop_latency.max(), Some(20));
        assert_eq!(r.events, 3);
        assert_eq!(r.queue_depth_high_water, 7);
        assert_eq!(r.ring_drops, 2);
        assert_eq!(r.ring_duplicates, 1);
        assert_eq!(r.ring_delays, 1);
        assert_eq!(r.duplicates_suppressed, 1);
        assert_eq!(r.stale_deliveries, 1);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.retries, 1);
        assert_eq!(r.degraded_entries, 1);
        assert_eq!(r.probation_exits, 1);
        assert_eq!(r.probation_resets, 2);
        assert_eq!(r.spurious_retries, 1);
        assert_eq!(r.rtt_samples, 2);
        assert_eq!(r.timeout_estimate.count(), 2);
        assert_eq!(r.timeout_estimate.max(), Some(620));
        assert_eq!(r.torus_drops, 1);
        assert_eq!(r.locality_lookups, 3);
        assert_eq!(r.locality_local, 2);
        assert_eq!(r.escalations, 1);
        assert_eq!(r.bridge_hops, 2);
        assert_eq!(r.bridge_hop_latency.count(), 2);
        assert_eq!(r.bridge_hop_latency.max(), Some(80));
        assert_eq!(r.bytes_per_node, 512);
        assert_eq!(r.footprint_total_bytes, 4096);
        assert_eq!(r.peak_rss_bytes, 1 << 20);
    }

    #[test]
    fn probe_report_snapshot_round_trips_without_peak_rss() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let mut p = CountingProbe::new();
        p.snoop_action(SnoopAction::Forward);
        p.write_filter(true);
        p.predictor_lookup(true);
        p.ring_hop(Cycles(9));
        p.event_dispatched(4);
        p.rtt_sampled(Cycles(100), Cycles(150));
        p.locality_lookup(true);
        p.escalation();
        p.bridge_hop(Cycles(66));
        p.footprint(256, 2048, 1 << 22);
        let original = p.report().unwrap();
        let bytes = snapshot_bytes(&original);
        let mut restored = ProbeReport::default();
        restore_bytes(&mut restored, &bytes).expect("restore");
        // Everything deterministic survives; the volatile resident-set
        // peak is deliberately dropped.
        let mut expected = original.clone();
        expected.peak_rss_bytes = 0;
        assert_eq!(restored, expected);
        // Two reports differing only in peak RSS encode identically —
        // the property the results cache's byte comparison relies on.
        let mut other = original.clone();
        other.peak_rss_bytes = 123_456_789;
        assert_eq!(snapshot_bytes(&other), bytes);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            // Any live process has touched at least a page.
            assert!(rss >= 4096, "peak RSS {rss} implausibly small");
        }
    }

    #[test]
    fn vm_hwm_parsing_honours_units() {
        let status = "Name:\tflexsnoop\nVmPeak:\t  999 kB\nVmHWM:\t  131072 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(131072 * 1024));
        assert_eq!(parse_vm_hwm("VmHWM:\t3 MB\n"), Some(3 << 20));
        assert_eq!(parse_vm_hwm("VmHWM: 7 B\n"), Some(7));
        assert_eq!(parse_vm_hwm("VmHWM: 2 GiB\n"), Some(2 << 30));
    }

    #[test]
    fn vm_hwm_parsing_rejects_ambiguity_instead_of_guessing() {
        // Missing line entirely.
        assert_eq!(parse_vm_hwm("Name: x\nVmPeak: 10 kB\n"), None);
        // No unit token: the scale would be a guess.
        assert_eq!(parse_vm_hwm("VmHWM: 4096\n"), None);
        // Unknown unit.
        assert_eq!(parse_vm_hwm("VmHWM: 4096 pages\n"), None);
        // Non-numeric value.
        assert_eq!(parse_vm_hwm("VmHWM: lots kB\n"), None);
        // Scaling overflow must not wrap to a plausible-looking number.
        assert_eq!(
            parse_vm_hwm(&format!("VmHWM: {} GiB\n", u64::MAX / 2)),
            None
        );
    }

    #[test]
    fn default_probe_hooks_are_noops() {
        struct Silent;
        impl Probe for Silent {}
        let mut s = Silent;
        s.snoop_action(SnoopAction::Forward);
        s.write_filter(true);
        s.predictor_lookup(false);
        s.predictor_trained(1);
        s.ring_hop(Cycles(1));
        s.event_dispatched(1);
        s.ring_fault(RingFault::Dropped);
        s.delivery_suppressed(true);
        s.timeout_fired(0);
        s.retry_issued(1);
        s.degraded_mode_entered();
        s.probation_exited();
        s.probation_reset();
        s.spurious_retry();
        s.rtt_sampled(Cycles(1), Cycles(2));
        s.torus_fault();
        s.locality_lookup(true);
        s.escalation();
        s.bridge_hop(Cycles(1));
        s.footprint(1, 2, 3);
        assert!(s.report().is_none());
    }

    #[test]
    fn rates_are_zero_when_empty() {
        let r = ProbeReport::default();
        assert_eq!(r.total_actions(), 0);
        assert_eq!(r.write_filter_hit_rate(), 0.0);
        assert_eq!(r.predictor_positive_rate(), 0.0);
    }
}
