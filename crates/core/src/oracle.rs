//! The per-event protocol-invariant oracle.
//!
//! When enabled (at runtime via `enable_invariant_checks`, or
//! unconditionally by building with the `strict-invariants` cargo
//! feature), the simulators re-check the paper's protocol invariants
//! after every transaction retirement instead of only in a final-state
//! scan — so a mid-run violation that a later transaction would mask is
//! caught at the first retirement that exposes it, with the transaction
//! id and cycle attached. The recorded [`Violation`] names the line, the
//! offending transaction and the specific invariant, which is what lets
//! the differential harness render a pinpointed Timeline walkthrough of
//! the first divergent transaction.
//!
//! [`ProtocolMutation`] is the oracle's own test harness: it deliberately
//! breaks one protocol rule inside the simulator so tests can prove the
//! oracle (and the differential harness built on it) actually detects
//! the class of bug it exists for. Mutations are for testing only and
//! must never be enabled in experiments.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::Cycle;
use flexsnoop_mem::LineAddr;

use crate::message::TxnId;

/// One detected protocol-invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The transaction whose retirement (or prediction) exposed the
    /// violation — the "first divergent transaction" the harness reports.
    pub txn: TxnId,
    /// Simulation time of detection.
    pub at: Cycle,
    /// The line involved.
    pub line: LineAddr,
    /// Which invariant was violated, with the offending states located.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}, {}: {}", self.at, self.txn, self.what)
    }
}

impl Snapshot for Violation {
    fn save_into(&self, w: &mut SnapWriter) {
        self.txn.save_into(w);
        w.put_cycle(self.at);
        w.put_u64(self.line.0);
        w.put_str(&self.what);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.txn.restore_from(r)?;
        self.at = r.get_cycle()?;
        self.line = LineAddr(r.get_u64()?);
        self.what = r.get_str()?;
        Ok(())
    }
}

/// A deliberate protocol bug, injectable for oracle/harness self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMutation {
    /// The supplier keeps its state after servicing a remote read
    /// (skipping the `E → SG` / `D → T` downgrade of §2.2), so a second
    /// supplier-class copy appears as soon as the requester fills.
    SkipSupplierDowngrade,
    /// Remote write snoops report their invalidation done without
    /// invalidating anything, leaving stale shared copies alongside the
    /// writer's new dirty line.
    SkipWriteInvalidation,
}

impl Snapshot for ProtocolMutation {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            ProtocolMutation::SkipSupplierDowngrade => 0,
            ProtocolMutation::SkipWriteInvalidation => 1,
        });
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        *self = match r.get_u8()? {
            0 => ProtocolMutation::SkipSupplierDowngrade,
            1 => ProtocolMutation::SkipWriteInvalidation,
            _ => return Err(SnapError::Corrupt("protocol-mutation tag out of range")),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_renders_its_context() {
        let v = Violation {
            txn: TxnId(7),
            at: Cycle::new(123),
            line: LineAddr(9),
            what: "2 supplier-state copies".to_string(),
        };
        let text = v.to_string();
        assert!(text.contains("txn7"), "{text}");
        assert!(text.contains("123"), "{text}");
        assert!(text.contains("supplier"), "{text}");
    }
}
