//! Per-transaction event timelines.
//!
//! When enabled, the simulator records the life of each ring transaction —
//! issue, every gateway arrival, snoop start/finish, message forwarding,
//! data transfer, memory access, completion — with cycle timestamps. This
//! is the observability layer for debugging protocol behaviour and for
//! producing the kind of per-request walkthroughs in the paper's Figure 3.
//!
//! Recording is off by default (zero cost beyond a branch); enable it with
//! [`crate::Simulator::enable_timeline`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use flexsnoop_engine::Cycle;
use flexsnoop_mem::CmpId;

use crate::message::TxnId;

/// One event in a transaction's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEvent {
    /// The requesting core issued the access (read or write miss).
    Issued {
        /// The requester node.
        node: CmpId,
    },
    /// A ring message for this transaction arrived at a gateway.
    Arrived {
        /// The node whose gateway received it.
        node: CmpId,
        /// A short label of the message kind (`"Req"`, `"Rep"`, `"R/R"`).
        kind: &'static str,
    },
    /// The gateway consulted its supplier predictor.
    Predicted {
        /// The predicting node.
        node: CmpId,
        /// The prediction.
        positive: bool,
    },
    /// A CMP snoop operation started.
    SnoopStarted {
        /// The snooping node.
        node: CmpId,
    },
    /// A CMP snoop completed.
    SnoopFinished {
        /// The snooped node.
        node: CmpId,
        /// Whether this CMP supplied the line.
        supplier: bool,
    },
    /// A ring message left a gateway toward the next node.
    Forwarded {
        /// The sending node.
        node: CmpId,
        /// Message kind label.
        kind: &'static str,
    },
    /// The line data left a supplier toward the requester.
    DataSent {
        /// The supplying node.
        node: CmpId,
    },
    /// The line data reached the requester.
    DataArrived,
    /// A memory access for this transaction started at the home node.
    MemoryStarted {
        /// The home node.
        home: CmpId,
        /// Whether this was the speculative gateway prefetch.
        prefetch: bool,
    },
    /// The requesting core resumed.
    Completed,
    /// The transaction retired (ring message returned, line released).
    Retired,
    /// A ring message for this transaction was dropped by the fault plan.
    Dropped {
        /// The node whose outgoing link lost the message.
        node: CmpId,
    },
    /// The requester's timeout fired with the ring phase unresolved.
    TimedOut {
        /// The attempt that timed out (0 = original issue).
        attempt: u32,
    },
    /// The transaction was re-issued on the ring after a timeout.
    Retried {
        /// The new attempt number (1 = first retry).
        attempt: u32,
    },
    /// A local-scope circulation (hierarchical topologies) missed in-ring
    /// and was escalated to a full global circulation.
    Escalated,
}

impl std::fmt::Display for TxnEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnEvent::Issued { node } => write!(f, "issued at {node}"),
            TxnEvent::Arrived { node, kind } => write!(f, "{kind} arrives at {node}"),
            TxnEvent::Predicted { node, positive } => {
                write!(
                    f,
                    "{node} predicts {}",
                    if *positive { "supplier" } else { "no supplier" }
                )
            }
            TxnEvent::SnoopStarted { node } => write!(f, "snoop starts at {node}"),
            TxnEvent::SnoopFinished { node, supplier } => {
                write!(
                    f,
                    "snoop at {node}: {}",
                    if *supplier { "SUPPLIER" } else { "miss" }
                )
            }
            TxnEvent::Forwarded { node, kind } => write!(f, "{kind} leaves {node}"),
            TxnEvent::DataSent { node } => write!(f, "data sent from {node}"),
            TxnEvent::DataArrived => write!(f, "data at requester"),
            TxnEvent::MemoryStarted { home, prefetch } => {
                write!(
                    f,
                    "memory {} at {home}",
                    if *prefetch { "prefetch" } else { "access" }
                )
            }
            TxnEvent::Completed => write!(f, "core resumes"),
            TxnEvent::Retired => write!(f, "retired"),
            TxnEvent::Dropped { node } => write!(f, "message DROPPED leaving {node}"),
            TxnEvent::TimedOut { attempt } => write!(f, "timeout (attempt {attempt})"),
            TxnEvent::Retried { attempt } => write!(f, "retry: attempt {attempt} issued"),
            TxnEvent::Escalated => write!(f, "local miss: escalated to global"),
        }
    }
}

/// A bounded recorder of per-transaction events.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    enabled: bool,
    limit: usize,
    events: BTreeMap<TxnId, Vec<(Cycle, TxnEvent)>>,
}

impl Timeline {
    /// A disabled recorder (records nothing).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recorder keeping events for the first `limit` transactions.
    pub fn with_limit(limit: usize) -> Self {
        Timeline {
            enabled: true,
            limit,
            events: BTreeMap::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled or over the limit).
    pub fn record(&mut self, txn: TxnId, at: Cycle, event: TxnEvent) {
        if !self.enabled {
            return;
        }
        if !self.events.contains_key(&txn) && self.events.len() >= self.limit {
            return;
        }
        self.events.entry(txn).or_default().push((at, event));
    }

    /// Transactions captured, in id order.
    pub fn transactions(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.events.keys().copied()
    }

    /// The events of one transaction, in record order.
    pub fn events(&self, txn: TxnId) -> &[(Cycle, TxnEvent)] {
        self.events.get(&txn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Renders one transaction as a human-readable walkthrough with
    /// relative timestamps.
    pub fn render(&self, txn: TxnId) -> String {
        let events = self.events(txn);
        let mut out = format!("{txn}:\n");
        let start = events.first().map(|(t, _)| *t).unwrap_or(Cycle::ZERO);
        for (t, ev) in events {
            let _ = writeln!(out, "  +{:>5}  {ev}", t.since(start).as_u64());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Timeline::disabled();
        t.record(TxnId(0), Cycle::new(1), TxnEvent::Completed);
        assert_eq!(t.events(TxnId(0)), &[]);
        assert!(!t.is_enabled());
    }

    #[test]
    fn records_in_order_with_limit() {
        let mut t = Timeline::with_limit(2);
        t.record(TxnId(0), Cycle::new(1), TxnEvent::Issued { node: CmpId(0) });
        t.record(TxnId(1), Cycle::new(2), TxnEvent::Issued { node: CmpId(1) });
        t.record(TxnId(2), Cycle::new(3), TxnEvent::Issued { node: CmpId(2) });
        t.record(TxnId(0), Cycle::new(9), TxnEvent::Completed);
        assert_eq!(t.transactions().count(), 2, "third txn dropped");
        assert_eq!(t.events(TxnId(0)).len(), 2);
        assert_eq!(t.events(TxnId(2)).len(), 0);
    }

    #[test]
    fn render_uses_relative_times() {
        let mut t = Timeline::with_limit(1);
        t.record(
            TxnId(7),
            Cycle::new(100),
            TxnEvent::Issued { node: CmpId(3) },
        );
        t.record(TxnId(7), Cycle::new(143), TxnEvent::DataArrived);
        let text = t.render(TxnId(7));
        assert!(text.contains("txn7"), "{text}");
        assert!(text.contains("+    0"), "{text}");
        assert!(text.contains("+   43"), "{text}");
        assert!(text.contains("data at requester"), "{text}");
    }

    #[test]
    fn event_display_is_informative() {
        let samples = [
            TxnEvent::Predicted {
                node: CmpId(2),
                positive: true,
            },
            TxnEvent::SnoopFinished {
                node: CmpId(5),
                supplier: true,
            },
            TxnEvent::MemoryStarted {
                home: CmpId(1),
                prefetch: true,
            },
        ];
        let texts: Vec<String> = samples.iter().map(|e| e.to_string()).collect();
        assert_eq!(texts[0], "cmp2 predicts supplier");
        assert_eq!(texts[1], "snoop at cmp5: SUPPLIER");
        assert_eq!(texts[2], "memory prefetch at cmp1");
    }
}
