//! Per-run statistics: everything the paper's figures report.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::Cycle;
use flexsnoop_metrics::{EnergyAccount, EnergyModel, Histogram};
use flexsnoop_predictor::AccuracyStats;

/// Fault-injection and recovery counters (all zero on a lossless ring).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Ring messages dropped by the fault plan.
    pub ring_drops: u64,
    /// Ring messages duplicated by the fault plan.
    pub ring_duplicates: u64,
    /// Ring messages delivered late by the fault plan.
    pub ring_delays: u64,
    /// Duplicate deliveries suppressed by sequence-number filtering.
    pub duplicates_suppressed: u64,
    /// Deliveries discarded because they belonged to a superseded
    /// (retried) attempt of their transaction.
    pub stale_deliveries: u64,
    /// Requester-side timeouts that fired and found the ring phase
    /// still unresolved.
    pub timeouts: u64,
    /// Transaction retries issued (re-circulations after a timeout).
    pub retries: u64,
    /// Lines that entered degraded (Lazy-forwarding) mode after a
    /// transaction exhausted its retry cap.
    pub degraded_entries: u64,
    /// Degraded lines that re-armed their Table 3 algorithm after a full
    /// probation window of clean circulations.
    pub probation_exits: u64,
    /// Probation counters reset to zero by a timeout on the line.
    pub probation_resets: u64,
    /// Retries proven unnecessary in hindsight: a stale reply from a
    /// superseded attempt reached the requester, so the original
    /// circulation had actually completed and the timeout was premature.
    pub spurious_retries: u64,
    /// Observed ring round trips fed to the adaptive timeout estimator.
    pub rtt_samples: u64,
    /// Torus data messages dropped by the fault plan.
    pub torus_drops: u64,
    /// Cores whose access stream had not finished when the event queue
    /// drained (only possible with recovery disabled; a lossy ring
    /// without retries loses transactions).
    pub unfinished_cores: u64,
    /// Predictions corrupted by an armed
    /// [`flexsnoop_predictor::FaultInjectingPredictor`].
    pub injected_prediction_faults: u64,
    /// Ring hops refused because their link crossed a partition boundary.
    pub partition_blocked: u64,
    /// CMPs hot-removed by a churn plan.
    pub churn_detaches: u64,
    /// CMPs re-added by a churn plan.
    pub churn_readds: u64,
    /// Cycle of the most recent requester timeout (0 if none fired).
    /// Together with the last disruption's end, this bounds recovery
    /// time: once past the window no timeout fired again.
    pub last_timeout_cycle: u64,
    /// Cycle of the most recent hindsight-spurious retry (0 if none).
    pub last_spurious_retry_cycle: u64,
    /// Cycle of the most recent probation exit (0 if none).
    pub last_probation_exit_cycle: u64,
    /// Messages dropped on hierarchical bridge links by the fault plan.
    pub bridge_drops: u64,
}

impl RobustnessStats {
    /// Whether any fault was injected or any recovery action taken.
    pub fn is_quiet(&self) -> bool {
        *self == RobustnessStats::default()
    }
}

impl Snapshot for RobustnessStats {
    fn save_into(&self, w: &mut SnapWriter) {
        for v in [
            self.ring_drops,
            self.ring_duplicates,
            self.ring_delays,
            self.duplicates_suppressed,
            self.stale_deliveries,
            self.timeouts,
            self.retries,
            self.degraded_entries,
            self.probation_exits,
            self.probation_resets,
            self.spurious_retries,
            self.rtt_samples,
            self.torus_drops,
            self.unfinished_cores,
            self.injected_prediction_faults,
            self.partition_blocked,
            self.churn_detaches,
            self.churn_readds,
            self.last_timeout_cycle,
            self.last_spurious_retry_cycle,
            self.last_probation_exit_cycle,
            self.bridge_drops,
        ] {
            w.put_u64(v);
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for v in [
            &mut self.ring_drops,
            &mut self.ring_duplicates,
            &mut self.ring_delays,
            &mut self.duplicates_suppressed,
            &mut self.stale_deliveries,
            &mut self.timeouts,
            &mut self.retries,
            &mut self.degraded_entries,
            &mut self.probation_exits,
            &mut self.probation_resets,
            &mut self.spurious_retries,
            &mut self.rtt_samples,
            &mut self.torus_drops,
            &mut self.unfinished_cores,
            &mut self.injected_prediction_faults,
            &mut self.partition_blocked,
            &mut self.churn_detaches,
            &mut self.churn_readds,
            &mut self.last_timeout_cycle,
            &mut self.last_spurious_retry_cycle,
            &mut self.last_probation_exit_cycle,
            &mut self.bridge_drops,
        ] {
            *v = r.get_u64()?;
        }
        Ok(())
    }
}

/// Statistics collected over one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Ring read snoop transactions issued (completed).
    pub read_txns: u64,
    /// Ring write snoop transactions issued (completed).
    pub write_txns: u64,
    /// CMP snoop operations performed on behalf of read transactions.
    pub read_snoops: u64,
    /// CMP snoop operations performed on behalf of write transactions.
    pub write_snoops: u64,
    /// Ring link crossings by read-transaction messages (requests plus
    /// replies; the Figure 7 quantity).
    pub read_ring_hops: u64,
    /// Ring link crossings by write-transaction messages.
    pub write_ring_hops: u64,
    /// Read transactions supplied by a remote cache.
    pub reads_cache_supplied: u64,
    /// Read transactions satisfied from memory.
    pub reads_from_memory: u64,
    /// Accesses satisfied in the requesting core's own L1.
    pub l1_hits: u64,
    /// Accesses satisfied in the requesting core's own L2.
    pub l2_hits: u64,
    /// Accesses supplied by a peer cache in the same CMP.
    pub local_peer_hits: u64,
    /// Write hits that completed silently (line in `E`/`D`).
    pub silent_write_hits: u64,
    /// Exact-predictor downgrades performed.
    pub downgrades: u64,
    /// Downgrades whose victim was dirty (caused a write-back).
    pub downgrade_writebacks: u64,
    /// Memory re-reads of previously downgraded lines.
    pub downgrade_rereads: u64,
    /// Same-line transaction collisions serialized (squash-and-retry).
    pub collisions: u64,
    /// Discrete events dispatched by the scheduler over the whole run (the
    /// simulator-throughput denominator reported by `bench`'s `throughput`
    /// binary).
    pub events: u64,
    /// Cache-eviction write-backs of dirty lines.
    pub eviction_writebacks: u64,
    /// Read circulations that retired at local scope on a hierarchical
    /// topology (the supplier was found without leaving the requester's
    /// local ring). Zero when flat.
    pub local_circulations: u64,
    /// Circulations that visited the whole machine: every global-scope
    /// read circulation retired, flat or hierarchical.
    pub global_circulations: u64,
    /// Local circulations that came back empty and escalated to a fresh
    /// global circulation (the locality table mispredicted).
    pub escalations: u64,
    /// Ring link crossings over global (bridge) links; a subset of the
    /// read+write ring-hop counts. Zero when flat.
    pub bridge_hops: u64,
    /// Ring link crossings belonging to timeout-retried circulations —
    /// the traffic the fault-aware energy split charges to recovery
    /// overhead. Zero on a lossless ring.
    pub retry_ring_hops: u64,
    /// Read-transaction latency, issue to data arrival.
    pub read_latency: Histogram,
    /// Simulated cycles until every core finished its stream.
    pub exec_cycles: Cycle,
    /// Snoop-related energy account.
    pub energy: EnergyAccount,
    /// Supplier-predictor accuracy (summed over all nodes).
    pub accuracy: AccuracyStats,
    /// Fault-injection and recovery counters.
    pub robustness: RobustnessStats,
}

impl RunStats {
    /// Creates a zeroed record using `model` for energy accounting.
    pub fn new(model: EnergyModel) -> Self {
        RunStats {
            read_txns: 0,
            write_txns: 0,
            read_snoops: 0,
            write_snoops: 0,
            read_ring_hops: 0,
            write_ring_hops: 0,
            reads_cache_supplied: 0,
            reads_from_memory: 0,
            l1_hits: 0,
            l2_hits: 0,
            local_peer_hits: 0,
            silent_write_hits: 0,
            downgrades: 0,
            downgrade_writebacks: 0,
            downgrade_rereads: 0,
            collisions: 0,
            events: 0,
            eviction_writebacks: 0,
            local_circulations: 0,
            global_circulations: 0,
            escalations: 0,
            bridge_hops: 0,
            retry_ring_hops: 0,
            read_latency: Histogram::new(),
            exec_cycles: Cycle::ZERO,
            energy: EnergyAccount::new(model),
            accuracy: AccuracyStats::default(),
            robustness: RobustnessStats::default(),
        }
    }

    /// Average CMP snoop operations per read snoop request (Figure 6).
    pub fn snoops_per_read(&self) -> f64 {
        if self.read_txns == 0 {
            0.0
        } else {
            self.read_snoops as f64 / self.read_txns as f64
        }
    }

    /// Average ring link crossings per read snoop request (Figure 7's raw
    /// quantity before normalizing to Lazy).
    pub fn ring_hops_per_read(&self) -> f64 {
        if self.read_txns == 0 {
            0.0
        } else {
            self.read_ring_hops as f64 / self.read_txns as f64
        }
    }

    /// Fraction of ring read transactions a cache supplied.
    pub fn cache_supply_fraction(&self) -> f64 {
        if self.read_txns == 0 {
            0.0
        } else {
            self.reads_cache_supplied as f64 / self.read_txns as f64
        }
    }

    /// Total snoop-related energy in nanojoules (Figure 9's raw quantity).
    pub fn energy_nj(&self) -> f64 {
        self.energy.total_nj()
    }

    /// Execution time in cycles as a float (Figure 8's raw quantity).
    pub fn exec_time(&self) -> f64 {
        self.exec_cycles.as_u64() as f64
    }
}

/// Serializes every counter plus the latency histogram; the energy
/// *model* (per-event costs) is configuration and stays with the freshly
/// built record — only the event counts are carried.
impl Snapshot for RunStats {
    fn save_into(&self, w: &mut SnapWriter) {
        for v in [
            self.read_txns,
            self.write_txns,
            self.read_snoops,
            self.write_snoops,
            self.read_ring_hops,
            self.write_ring_hops,
            self.reads_cache_supplied,
            self.reads_from_memory,
            self.l1_hits,
            self.l2_hits,
            self.local_peer_hits,
            self.silent_write_hits,
            self.downgrades,
            self.downgrade_writebacks,
            self.downgrade_rereads,
            self.collisions,
            self.events,
            self.eviction_writebacks,
            self.local_circulations,
            self.global_circulations,
            self.escalations,
            self.bridge_hops,
            self.retry_ring_hops,
        ] {
            w.put_u64(v);
        }
        self.read_latency.save_into(w);
        w.put_cycle(self.exec_cycles);
        self.energy.save_into(w);
        self.accuracy.save_into(w);
        self.robustness.save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for v in [
            &mut self.read_txns,
            &mut self.write_txns,
            &mut self.read_snoops,
            &mut self.write_snoops,
            &mut self.read_ring_hops,
            &mut self.write_ring_hops,
            &mut self.reads_cache_supplied,
            &mut self.reads_from_memory,
            &mut self.l1_hits,
            &mut self.l2_hits,
            &mut self.local_peer_hits,
            &mut self.silent_write_hits,
            &mut self.downgrades,
            &mut self.downgrade_writebacks,
            &mut self.downgrade_rereads,
            &mut self.collisions,
            &mut self.events,
            &mut self.eviction_writebacks,
            &mut self.local_circulations,
            &mut self.global_circulations,
            &mut self.escalations,
            &mut self.bridge_hops,
            &mut self.retry_ring_hops,
        ] {
            *v = r.get_u64()?;
        }
        self.read_latency.restore_from(r)?;
        self.exec_cycles = r.get_cycle()?;
        self.energy.restore_from(r)?;
        self.accuracy.restore_from(r)?;
        self.robustness.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_ratios_are_safe() {
        let s = RunStats::new(EnergyModel::paper_baseline());
        assert_eq!(s.snoops_per_read(), 0.0);
        assert_eq!(s.ring_hops_per_read(), 0.0);
        assert_eq!(s.cache_supply_fraction(), 0.0);
        assert_eq!(s.energy_nj(), 0.0);
    }

    #[test]
    fn snapshot_round_trip_restores_counts() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let mut s = RunStats::new(EnergyModel::paper_baseline());
        s.read_txns = 10;
        s.read_snoops = 35;
        s.collisions = 2;
        s.exec_cycles = Cycle::new(9999);
        s.read_latency.record(100);
        s.read_latency.record(300);
        s.accuracy.record(true, true);
        s.robustness.retries = 4;
        let bytes = snapshot_bytes(&s);
        let mut t = RunStats::new(EnergyModel::paper_baseline());
        restore_bytes(&mut t, &bytes).expect("restore");
        assert_eq!(t, s);
    }

    #[test]
    fn derived_ratios() {
        let mut s = RunStats::new(EnergyModel::paper_baseline());
        s.read_txns = 10;
        s.read_snoops = 35;
        s.read_ring_hops = 80;
        s.reads_cache_supplied = 7;
        assert!((s.snoops_per_read() - 3.5).abs() < 1e-12);
        assert!((s.ring_hops_per_read() - 8.0).abs() < 1e-12);
        assert!((s.cache_supply_fraction() - 0.7).abs() < 1e-12);
    }
}
