//! # flexsnoop — Flexible Snooping for embedded-ring multiprocessors
//!
//! A full reproduction of *"Flexible Snooping: Adaptive Forwarding and
//! Filtering of Snoops in Embedded-Ring Multiprocessors"* (Strauss, Shen,
//! Torrellas — ISCA 2006) as a Rust library: the seven-state ring snoop
//! coherence protocol, the Table 2 message primitives, the seven snooping
//! algorithms (Lazy, Eager, Oracle, Subset, Superset Con, Superset Agg,
//! Exact), the supplier predictors they rely on, and a cycle-level machine
//! simulator matching the paper's Table 4 configuration.
//!
//! ## Quick start
//!
//! ```
//! use flexsnoop::{run_workload, Algorithm};
//! use flexsnoop_workload::profiles;
//!
//! # fn main() -> Result<(), String> {
//! let workload = profiles::specweb().with_accesses(500);
//! let lazy = run_workload(&workload, Algorithm::Lazy, None, 42)?;
//! let agg = run_workload(&workload, Algorithm::SupersetAgg, None, 42)?;
//! // SupersetAgg should not snoop more than Lazy's full walk.
//! assert!(agg.snoops_per_read() <= 8.0);
//! assert!(lazy.read_txns > 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate layout
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`config`] | The machine configuration (paper Table 4). |
//! | [`algorithm`] | The snooping algorithms and Table 2 primitives. |
//! | [`message`] | Ring message representation (request / reply / combined R/R). |
//! | [`sim`] | The discrete-event machine simulator. |
//! | [`probe`] | Run-level observability hooks ([`probe::Probe`]). |
//! | [`stats`] | Per-run statistics (every figure's raw quantities). |
//! | [`experiments`] | Multi-run helpers used by benches and examples. |
//!
//! The substrates live in sibling crates: `flexsnoop-engine` (event
//! queues), `flexsnoop-mem` (caches and coherence states),
//! `flexsnoop-net` (ring and torus), `flexsnoop-predictor` (supplier
//! predictors), `flexsnoop-workload` (synthetic workloads) and
//! `flexsnoop-metrics` (statistics and the energy model).

#![warn(missing_docs)]

pub mod algorithm;
pub mod arena;
pub mod config;
pub mod experiments;
pub mod message;
pub mod oracle;
pub mod probe;
pub mod sim;
#[cfg(test)]
mod sim_tests;
pub mod stats;
pub mod timeline;

pub use algorithm::{Algorithm, DynPolicy, SnoopAction};
pub use config::{default_hier, MachineConfig, RecoveryParams, TimeoutPolicy};
pub use experiments::{run_algorithms, run_workload, GroupAggregator, VecStream};
pub use message::{MsgKind, ReplyInfo, RingMsg, SnoopScope, TxnId, TxnOp};
pub use oracle::{ProtocolMutation, Violation};
pub use probe::{CountingProbe, Probe, ProbeReport};
pub use sim::{energy_model_for, ChurnWindow, MemoryFootprint, Simulator};
pub use stats::{RobustnessStats, RunStats};
pub use timeline::{Timeline, TxnEvent};

// Re-export the substrate types that appear in this crate's public API so
// downstream users need only one dependency.
pub use flexsnoop_net::{
    FaultPlan, FaultStats, HierParams, LinkDrop, PartitionWindow, RingFault, StallWindow,
};
pub use flexsnoop_predictor::{
    FaultInjectingPredictor, FaultKind, PredictorSpec, SupplierPredictor,
};
pub use flexsnoop_workload::{WorkloadGroup, WorkloadProfile};
