//! Scenario tests for the protocol engine.
//!
//! Each test builds a small, explicit access script (one `VecStream` per
//! core), runs the full simulator, and asserts on the resulting coherence
//! states and counters — timing-independent observables only.

use flexsnoop_engine::Cycles;
use flexsnoop_mem::{CmpId, CoherState, LineAddr};
use flexsnoop_predictor::PredictorSpec;
use flexsnoop_workload::{AccessStream, MemAccess};

use crate::algorithm::{Algorithm, DynPolicy};
use crate::config::MachineConfig;
use crate::experiments::VecStream;
use crate::sim::{energy_model_for, Simulator};
use crate::stats::RunStats;

/// Builds a machine of 8 CMPs × `cores_per_cmp` running the per-core
/// scripts (each access gets a 10-cycle think time).
fn run_script(
    algorithm: Algorithm,
    predictor: PredictorSpec,
    cores_per_cmp: usize,
    script: &[&[(u64, bool)]],
    tweak: impl FnOnce(&mut MachineConfig),
) -> (Simulator, RunStats) {
    let mut machine = MachineConfig::isca2006(cores_per_cmp);
    tweak(&mut machine);
    let total = machine.total_cores();
    assert!(script.len() <= total, "script has too many cores");
    let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
    let mut limit = 0;
    for c in 0..total {
        let accesses: Vec<MemAccess> = script
            .get(c)
            .map(|s| {
                s.iter()
                    .map(|&(line, write)| MemAccess {
                        line: LineAddr(line),
                        write,
                        think: Cycles(10),
                    })
                    .collect()
            })
            .unwrap_or_default();
        limit = limit.max(accesses.len() as u64);
        streams.push(Box::new(VecStream::new(accesses)));
    }
    let mut sim = Simulator::new(
        machine,
        algorithm,
        predictor,
        energy_model_for(&predictor),
        streams,
        limit.max(1),
    )
    .expect("valid scenario");
    let stats = sim.run();
    sim.validate_coherence().expect("coherent final state");
    (sim, stats)
}

/// Shorthand: 1 core per CMP (global core i lives on CMP i).
fn run1(algorithm: Algorithm, script: &[&[(u64, bool)]]) -> (Simulator, RunStats) {
    run_script(algorithm, algorithm.default_predictor(), 1, script, |_| {})
}

const RD: bool = false;
const WR: bool = true;

#[test]
fn cold_read_fills_from_memory_as_sg() {
    // exclusive_fill is off by default: a memory fill installs SG.
    let (sim, stats) = run1(Algorithm::Lazy, &[&[(100, RD)]]);
    assert_eq!(stats.read_txns, 1);
    assert_eq!(stats.reads_from_memory, 1);
    assert_eq!(stats.reads_cache_supplied, 0);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sg);
}

#[test]
fn exclusive_fill_installs_e_when_proven() {
    // Lazy snoops every node, proving no copy exists anywhere.
    let (sim, _) = run_script(
        Algorithm::Lazy,
        PredictorSpec::None,
        1,
        &[&[(100, RD)]],
        |m| m.policy.exclusive_fill = true,
    );
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::E);
}

#[test]
fn filtered_algorithms_cannot_prove_exclusivity() {
    // SupersetCon filters negative predictions, so even with the policy on
    // the fill must stay SG.
    let (sim, _) = run_script(
        Algorithm::SupersetCon,
        PredictorSpec::SUP_Y2K,
        1,
        &[&[(100, RD)]],
        |m| m.policy.exclusive_fill = true,
    );
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sg);
}

#[test]
fn second_read_hits_own_cache() {
    let (_, stats) = run1(Algorithm::Lazy, &[&[(100, RD), (100, RD), (100, RD)]]);
    assert_eq!(stats.read_txns, 1, "only the cold miss rides the ring");
    assert_eq!(stats.l1_hits + stats.l2_hits, 2);
}

#[test]
fn remote_cache_supplies_and_states_transition() {
    // Core 0 (cmp0) fetches line 100 from memory (SG). Core 1 (cmp1) then
    // reads it: cmp0 supplies, stays SG; cmp1 installs SL.
    let (sim, stats) = run1(Algorithm::Lazy, &[&[(100, RD)], &[(0, RD), (100, RD)]]);
    assert_eq!(stats.reads_cache_supplied, 1);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sg);
    assert_eq!(sim.line_state(CmpId(1), 0, LineAddr(100)), CoherState::Sl);
}

#[test]
fn dirty_supplier_transitions_to_tagged() {
    // Core 0 writes line 100 (D). Core 1 reads it: supplier D -> T,
    // reader installs SL. Memory was never updated (T is dirty).
    let (sim, stats) = run1(
        Algorithm::Lazy,
        &[&[(100, WR)], &[(0, RD), (0, RD), (100, RD)]],
    );
    assert_eq!(stats.reads_cache_supplied, 1);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::T);
    assert_eq!(sim.line_state(CmpId(1), 0, LineAddr(100)), CoherState::Sl);
}

#[test]
fn write_invalidates_all_remote_copies() {
    // Core 0 and core 1 both read line 100; core 2 then writes it.
    let (sim, stats) = run1(
        Algorithm::Lazy,
        &[
            &[(100, RD)],
            &[(0, RD), (100, RD)],
            &[(8, RD), (8, RD), (8, RD), (100, WR)],
        ],
    );
    assert!(stats.write_txns >= 1);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::I);
    assert_eq!(sim.line_state(CmpId(1), 0, LineAddr(100)), CoherState::I);
    assert_eq!(sim.line_state(CmpId(2), 0, LineAddr(100)), CoherState::D);
}

#[test]
fn silent_write_on_dirty_line() {
    let (_, stats) = run1(Algorithm::Lazy, &[&[(100, WR), (100, WR), (100, WR)]]);
    assert_eq!(stats.write_txns, 1, "first write allocates via the ring");
    assert_eq!(stats.silent_write_hits, 2, "subsequent writes are silent");
}

#[test]
fn upgrade_write_needs_no_data() {
    // Read installs SG (clean); write upgrades via the ring.
    let (sim, stats) = run1(Algorithm::Lazy, &[&[(100, RD), (100, WR)]]);
    assert_eq!(stats.read_txns, 1);
    assert_eq!(stats.write_txns, 1);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::D);
}

#[test]
fn local_peer_supplies_within_cmp() {
    // Two cores on the same CMP: core 0 fetches, core 1 reads locally.
    let (sim, stats) = run_script(
        Algorithm::Lazy,
        PredictorSpec::None,
        2,
        &[&[(100, RD)], &[(0, RD), (100, RD)]],
        |_| {},
    );
    assert_eq!(stats.read_txns, 2, "lines 0 and 100, not the peer hit");
    assert_eq!(stats.local_peer_hits, 1);
    // SG holder keeps it; the local reader installs plain S.
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sg);
    assert_eq!(sim.line_state(CmpId(0), 1, LineAddr(100)), CoherState::S);
}

#[test]
fn lazy_snoops_up_to_the_supplier() {
    // Supplier on cmp3; requester on cmp0: Lazy snoops cmps 1, 2, 3.
    let (_, stats) = run1(
        Algorithm::Lazy,
        &[
            &[(0, RD), (0, RD), (100, RD)],
            &[],
            &[],
            &[(100, RD)], // cmp3 fetches line 100 first (think order)
        ],
    );
    // Two ring reads total: cmp3's cold miss (memory, snoops 7) and cmp0's
    // (supplied at distance 3, snoops 3).
    assert_eq!(stats.read_txns, 3); // line 0 cold + the two above
    assert_eq!(stats.reads_cache_supplied, 1);
}

#[test]
fn eager_snoops_every_node() {
    let (_, stats) = run1(Algorithm::Eager, &[&[(100, RD)]]);
    assert_eq!(stats.read_snoops, 7, "all N-1 nodes snoop under Eager");
}

#[test]
fn lazy_snoops_every_node_when_memory_bound() {
    let (_, stats) = run1(Algorithm::Lazy, &[&[(100, RD)]]);
    assert_eq!(stats.read_snoops, 7);
    assert_eq!(stats.read_ring_hops, 8, "one full circulation");
}

#[test]
fn eager_nearly_doubles_ring_messages() {
    let (_, stats) = run1(Algorithm::Eager, &[&[(100, RD)]]);
    // Combined on the first segment, then request + reply on 7 segments.
    assert_eq!(stats.read_ring_hops, 15);
}

#[test]
fn oracle_snoops_only_the_supplier() {
    let (_, stats) = run1(
        Algorithm::Oracle,
        &[&[(0, RD), (0, RD), (100, RD)], &[], &[], &[(100, RD)]],
    );
    // cmp3's miss (line 100) and cmp0's line-0 miss go to memory with zero
    // snoops; cmp0's line-100 read snoops exactly once (at cmp3).
    assert_eq!(stats.read_snoops, 1);
    assert_eq!(stats.reads_cache_supplied, 1);
}

#[test]
fn oracle_memory_reads_snoop_nothing() {
    let (_, stats) = run1(Algorithm::Oracle, &[&[(100, RD)]]);
    assert_eq!(stats.read_snoops, 0);
    assert_eq!(stats.read_ring_hops, 8, "the message still serializes");
}

#[test]
fn write_collision_serializes_and_converges() {
    // All eight cores write the same line "simultaneously".
    let script: Vec<&[(u64, bool)]> = vec![&[(100, WR)]; 8];
    let (sim, stats) = run1(Algorithm::Lazy, &script);
    assert_eq!(stats.write_txns, 8);
    assert!(stats.collisions > 0, "same-line writes must collide");
    // Exactly one owner at the end.
    let owners: Vec<usize> = (0..8)
        .filter(|&n| sim.line_state(CmpId(n), 0, LineAddr(100)) == CoherState::D)
        .collect();
    assert_eq!(owners.len(), 1, "owners: {owners:?}");
}

#[test]
fn read_read_collisions_do_not_occur() {
    // Concurrent reads of one line are benign and run concurrently.
    let script: Vec<&[(u64, bool)]> = vec![&[(100, RD)]; 8];
    let (_, stats) = run1(Algorithm::Lazy, &script);
    assert_eq!(stats.read_txns, 8);
}

#[test]
fn exact_downgrade_writes_back_dirty_victims() {
    // A tiny Exact table (8 entries) forces downgrades quickly: core 0
    // dirties 16 lines in distinct sets, overflowing the table.
    let lines: Vec<(u64, bool)> = (0..16).map(|i| (100 + i, WR)).collect();
    let (sim, stats) = run_script(
        Algorithm::Exact,
        PredictorSpec::Exact { entries: 8 },
        1,
        &[&lines],
        |_| {},
    );
    assert!(stats.downgrades >= 8, "downgrades: {}", stats.downgrades);
    assert!(
        stats.downgrade_writebacks >= 8,
        "dirty victims must be written back: {}",
        stats.downgrade_writebacks
    );
    // Downgraded lines stay cached as SL.
    let sl_count = (0..16)
        .filter(|&i| sim.line_state(CmpId(0), 0, LineAddr(100 + i)) == CoherState::Sl)
        .count();
    assert!(sl_count >= 8, "SL lines: {sl_count}");
}

#[test]
fn downgraded_line_is_rereads_from_memory() {
    // Core 0 dirties lines that overflow the Exact table; core 1 then
    // reads one of the downgraded lines -> memory re-read, not supply.
    let lines: Vec<(u64, bool)> = (0..16).map(|i| (100 + i, WR)).collect();
    let mut reader = vec![(0u64, RD); 20]; // idle long enough for the writes
    reader.push((100, RD));
    let (_, stats) = run_script(
        Algorithm::Exact,
        PredictorSpec::Exact { entries: 8 },
        1,
        &[&lines, &reader],
        |_| {},
    );
    assert!(
        stats.downgrade_rereads >= 1,
        "re-read of a downgraded line must be counted"
    );
}

#[test]
fn superset_never_misses_a_supplier() {
    // Whatever the aliasing, the Superset algorithms must find the
    // supplier (no false negatives): supply count matches Lazy's.
    let script: Vec<Vec<(u64, bool)>> = (0..8u64)
        .map(|c| {
            let mut v: Vec<(u64, bool)> = (0..50).map(|i| (1000 + c * 50 + i, WR)).collect();
            v.extend((0..50).map(|i| (1000 + ((c + 1) % 8) * 50 + i, RD)));
            v
        })
        .collect();
    let script_refs: Vec<&[(u64, bool)]> = script.iter().map(|v| v.as_slice()).collect();
    let (_, lazy) = run1(Algorithm::Lazy, &script_refs);
    let (_, con) = run_script(
        Algorithm::SupersetCon,
        PredictorSpec::SUP_Y2K,
        1,
        &script_refs,
        |_| {},
    );
    let (_, agg) = run_script(
        Algorithm::SupersetAgg,
        PredictorSpec::SUP_Y2K,
        1,
        &script_refs,
        |_| {},
    );
    assert_eq!(lazy.reads_cache_supplied, con.reads_cache_supplied);
    assert_eq!(lazy.reads_cache_supplied, agg.reads_cache_supplied);
    assert_eq!(con.accuracy.false_negatives, 0, "Superset has no FNs");
    assert_eq!(agg.accuracy.false_negatives, 0, "Superset has no FNs");
}

#[test]
fn subset_never_false_positive() {
    let script: Vec<Vec<(u64, bool)>> = (0..8u64)
        .map(|c| {
            let mut v: Vec<(u64, bool)> = (0..80).map(|i| (2000 + c * 80 + i, WR)).collect();
            v.extend((0..80).map(|i| (2000 + ((c + 3) % 8) * 80 + i, RD)));
            v
        })
        .collect();
    let script_refs: Vec<&[(u64, bool)]> = script.iter().map(|v| v.as_slice()).collect();
    let (_, stats) = run_script(
        Algorithm::Subset,
        PredictorSpec::SUB512,
        1,
        &script_refs,
        |_| {},
    );
    assert_eq!(stats.accuracy.false_positives, 0, "Subset has no FPs");
}

#[test]
fn oracle_prediction_is_perfect() {
    let script: Vec<Vec<(u64, bool)>> = (0..8u64)
        .map(|c| {
            let mut v: Vec<(u64, bool)> = (0..40).map(|i| (3000 + c * 40 + i, WR)).collect();
            v.extend((0..40).map(|i| (3000 + ((c + 5) % 8) * 40 + i, RD)));
            v
        })
        .collect();
    let script_refs: Vec<&[(u64, bool)]> = script.iter().map(|v| v.as_slice()).collect();
    let (_, stats) = run1(Algorithm::Oracle, &script_refs);
    assert_eq!(stats.accuracy.false_positives, 0);
    assert_eq!(stats.accuracy.false_negatives, 0);
    assert!(stats.accuracy.true_positives > 0);
}

#[test]
fn deterministic_across_runs() {
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(300);
    let a = crate::experiments::run_workload(&profile, Algorithm::SupersetAgg, None, 99).unwrap();
    let b = crate::experiments::run_workload(&profile, Algorithm::SupersetAgg, None, 99).unwrap();
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.read_snoops, b.read_snoops);
    assert_eq!(a.read_ring_hops, b.read_ring_hops);
    assert_eq!(a.energy_nj(), b.energy_nj());
}

#[test]
fn dynamic_variant_interpolates_between_con_and_agg() {
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(800);
    let run = |alg| crate::experiments::run_workload(&profile, alg, None, 5).unwrap();
    let con = run(Algorithm::SupersetCon);
    let agg = run(Algorithm::SupersetAgg);
    let dyn_perf = run(Algorithm::SupersetDyn(DynPolicy::PerformanceFirst));
    let dyn_eco = run(Algorithm::SupersetDyn(DynPolicy::EnergyFirst));
    // PerformanceFirst behaves like Agg on reads. EnergyFirst takes Con's
    // read actions but keeps the decoupled write datapath, so timing (and
    // hence collision patterns) may differ microscopically from Con's.
    assert_eq!(dyn_perf.read_snoops, agg.read_snoops);
    let eco = dyn_eco.read_snoops as f64;
    let con_snoops = con.read_snoops as f64;
    assert!(
        (eco - con_snoops).abs() / con_snoops < 0.01,
        "EnergyFirst ({eco}) should track Con ({con_snoops})"
    );
    // A middling budget lands between the two extremes.
    let mid = run(Algorithm::SupersetDyn(DynPolicy::EnergyBudget(2.0)));
    assert!(
        mid.read_ring_hops <= dyn_perf.read_ring_hops
            && mid.read_ring_hops >= dyn_eco.read_ring_hops,
        "mid {} not within [{}, {}]",
        mid.read_ring_hops,
        dyn_eco.read_ring_hops,
        dyn_perf.read_ring_hops
    );
}

#[test]
fn misconfigured_simulator_is_rejected() {
    let profile = flexsnoop_workload::profiles::specjbb().with_accesses(10);
    // Lazy cannot take a Superset predictor.
    let err = crate::experiments::run_workload(
        &profile,
        Algorithm::Lazy,
        Some(PredictorSpec::SUP_Y2K),
        1,
    );
    assert!(err.is_err());
    // 32-core workload needs cores divisible by nodes — 30 is not.
    let mut bad = profile.clone();
    bad.cores = 30;
    assert!(crate::experiments::run_workload(&bad, Algorithm::Lazy, None, 1).is_err());
}

#[test]
fn home_prefetch_shortens_memory_reads() {
    let profile = flexsnoop_workload::profiles::specjbb().with_accesses(500);
    let on = crate::experiments::run_workload(&profile, Algorithm::Lazy, None, 3).unwrap();
    let mut sim_off = {
        let machine = {
            let mut m = MachineConfig::isca2006(1);
            m.memory.home_prefetch = false;
            m
        };
        let streams: Vec<Box<dyn AccessStream + Send>> = profile
            .streams(3)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        Simulator::new(
            machine,
            Algorithm::Lazy,
            PredictorSpec::None,
            energy_model_for(&PredictorSpec::None),
            streams,
            500,
        )
        .unwrap()
    };
    let off = sim_off.run();
    assert!(
        on.exec_cycles < off.exec_cycles,
        "prefetch on ({}) should beat off ({})",
        on.exec_cycles,
        off.exec_cycles
    );
}

#[test]
fn energy_accounts_for_ring_snoop_and_predictor() {
    use flexsnoop_metrics::EnergyCategory;
    let (_, stats) = run_script(
        Algorithm::SupersetCon,
        PredictorSpec::SUP_Y2K,
        1,
        &[&[(100, RD)]],
        |_| {},
    );
    assert!(stats.energy.count(EnergyCategory::RingLink) >= 8);
    assert!(stats.energy.count(EnergyCategory::PredictorLookup) > 0);
    assert!(stats.energy.total_nj() > 0.0);
}

#[test]
fn single_ring_configuration_works() {
    let (_, stats) = run_script(
        Algorithm::Lazy,
        PredictorSpec::None,
        1,
        &[&[(100, RD)]],
        |m| m.ring.rings = 1,
    );
    assert_eq!(stats.read_ring_hops, 8);
}

#[test]
fn mlp_reads_overlap_and_stay_coherent() {
    // Eight independent cold misses per core: with 4 outstanding reads the
    // misses overlap and the run finishes much sooner than blocking cores.
    let script: Vec<Vec<(u64, bool)>> = (0..8u64)
        .map(|c| (0..8).map(|i| (5000 + c * 8 + i, RD)).collect())
        .collect();
    let script_refs: Vec<&[(u64, bool)]> = script.iter().map(|v| v.as_slice()).collect();
    let (_, blocking) = run1(Algorithm::Lazy, &script_refs);
    let (sim, mlp) = run_script(Algorithm::Lazy, PredictorSpec::None, 1, &script_refs, |m| {
        m.policy.max_outstanding_reads = 4
    });
    assert_eq!(blocking.read_txns, mlp.read_txns);
    assert!(
        mlp.exec_cycles.as_u64() < blocking.exec_cycles.as_u64() * 2 / 3,
        "MLP {} should clearly beat blocking {}",
        mlp.exec_cycles,
        blocking.exec_cycles
    );
    sim.validate_coherence().expect("coherent with MLP");
}

#[test]
fn mlp_one_is_identical_to_blocking_default() {
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(300);
    let a = crate::experiments::run_workload(&profile, Algorithm::Eager, None, 77).unwrap();
    let streams: Vec<Box<dyn AccessStream + Send>> = profile
        .streams(77)
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
        .collect();
    let mut machine = MachineConfig::isca2006(1);
    machine.policy.max_outstanding_reads = 1; // explicit
    let mut sim = Simulator::new(
        machine,
        Algorithm::Eager,
        PredictorSpec::None,
        energy_model_for(&PredictorSpec::None),
        streams,
        300,
    )
    .unwrap();
    let b = sim.run();
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.read_snoops, b.read_snoops);
}

#[test]
fn mlp_with_collisions_does_not_leak_slots() {
    // All cores hammer two hot lines with reads and writes under MLP:
    // collision replays must return their load-queue slots or the run
    // deadlocks (the run() completion assert catches that).
    let script: Vec<&[(u64, bool)]> =
        vec![&[(7000, RD), (7001, WR), (7000, WR), (7001, RD), (7000, RD),]; 8];
    let (sim, stats) = run_script(Algorithm::Lazy, PredictorSpec::None, 1, &script, |m| {
        m.policy.max_outstanding_reads = 4
    });
    assert!(stats.collisions > 0, "hot lines must collide");
    sim.validate_coherence().expect("coherent");
}

#[test]
fn write_miss_gets_data_from_remote_dirty_owner() {
    // Core 0 dirties line 100; core 1 then writes it: the write snoop
    // invalidates core 0's D copy, which donates the data (no memory read).
    let (sim, stats) = run1(
        Algorithm::Lazy,
        &[&[(100, WR)], &[(0, RD), (0, RD), (100, WR)]],
    );
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::I);
    assert_eq!(sim.line_state(CmpId(1), 0, LineAddr(100)), CoherState::D);
    // Reads from memory: only the two line-0 warmup reads' txn... line 0 is
    // read twice by core 1 (one ring txn, second is a cache hit) plus core
    // 0's line-100 write-allocate from memory.
    assert_eq!(stats.reads_from_memory, 1);
}

#[test]
fn dirty_eviction_writes_back() {
    // The L2 is 8-way with 1024 sets: 9 dirty lines in one set must evict
    // at least one, triggering a write-back.
    let lines: Vec<(u64, bool)> = (0..9).map(|i| (100 + i * 1024, WR)).collect();
    let (_, stats) = run1(Algorithm::Lazy, &[&lines]);
    assert!(stats.eviction_writebacks >= 1);
}

#[test]
fn clean_eviction_does_not_write_back() {
    let lines: Vec<(u64, bool)> = (0..9).map(|i| (100 + i * 1024, RD)).collect();
    let (_, stats) = run1(Algorithm::Lazy, &[&lines]);
    assert_eq!(stats.eviction_writebacks, 0, "SG evictions are silent");
}

#[test]
fn timeline_records_full_transaction_life() {
    use crate::timeline::TxnEvent;
    let machine = MachineConfig::isca2006(1);
    let streams: Vec<Box<dyn AccessStream + Send>> = (0..8)
        .map(|core| {
            let accesses = if core == 0 {
                vec![MemAccess::read(LineAddr(100), Cycles(10))]
            } else {
                vec![]
            };
            Box::new(VecStream::new(accesses)) as Box<dyn AccessStream + Send>
        })
        .collect();
    let mut sim = Simulator::new(
        machine,
        Algorithm::Lazy,
        PredictorSpec::None,
        energy_model_for(&PredictorSpec::None),
        streams,
        1,
    )
    .unwrap();
    sim.enable_timeline(4);
    sim.run();
    let txn = sim.timeline().transactions().next().expect("one txn");
    let events = sim.timeline().events(txn);
    let has = |pred: fn(&TxnEvent) -> bool| events.iter().any(|(_, e)| pred(e));
    assert!(has(|e| matches!(e, TxnEvent::Issued { .. })));
    assert!(has(|e| matches!(e, TxnEvent::SnoopFinished { .. })));
    assert!(has(|e| matches!(
        e,
        TxnEvent::MemoryStarted { prefetch: true, .. }
    )));
    assert!(has(|e| matches!(e, TxnEvent::Completed)));
    assert!(has(|e| matches!(e, TxnEvent::Retired)));
    // Timestamps are non-decreasing in record order.
    for pair in events.windows(2) {
        assert!(pair[0].0 <= pair[1].0);
    }
    // Lazy snoops all 7 nodes for a memory-bound read.
    let snoops = events
        .iter()
        .filter(|(_, e)| matches!(e, TxnEvent::SnoopFinished { .. }))
        .count();
    assert_eq!(snoops, 7);
}

#[test]
fn tagged_line_survives_reader_eviction() {
    // Core 0 dirties a line, core 1 reads it (T at core 0, SL at core 1).
    // When core 1's copy is evicted, core 0's T copy still serves reads.
    let reader: Vec<(u64, bool)> = std::iter::once((100u64, RD))
        .chain((0..9).map(|i| (200 + i * 1024, RD))) // flood one set
        .collect();
    let (sim, _) = run1(Algorithm::Lazy, &[&[(100, WR)], &reader]);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::T);
}

#[test]
fn exact_with_perfect_predictor_is_oracle() {
    // Exact actions + perfect prediction = the Oracle algorithm: same
    // snoop counts on the same trace.
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(400);
    let oracle = crate::experiments::run_workload(&profile, Algorithm::Oracle, None, 13).unwrap();
    let exact_perfect = crate::experiments::run_workload(
        &profile,
        Algorithm::Exact,
        Some(PredictorSpec::Perfect),
        13,
    )
    .unwrap();
    assert_eq!(oracle.read_snoops, exact_perfect.read_snoops);
    assert_eq!(oracle.read_ring_hops, exact_perfect.read_ring_hops);
}

#[test]
fn concurrent_same_cmp_reads_elect_one_local_master() {
    // Cores 0 and 1 share CMP 0; both read line 100 concurrently while
    // core 4 (cmp2) is the supplier. Only one may install SL.
    let (sim, stats) = run_script(
        Algorithm::Lazy,
        PredictorSpec::None,
        2,
        &[
            &[(0, RD), (0, RD), (100, RD)],
            &[(8, RD), (8, RD), (100, RD)],
            &[],
            &[],
            &[(100, RD)], // cmp2 warms the line first
        ],
        |_| {},
    );
    assert!(stats.reads_cache_supplied >= 2);
    let s0 = sim.line_state(CmpId(0), 0, LineAddr(100));
    let s1 = sim.line_state(CmpId(0), 1, LineAddr(100));
    let sl_count = [s0, s1].iter().filter(|&&s| s == CoherState::Sl).count();
    assert!(sl_count <= 1, "states: {s0} {s1}");
    assert!(s0.is_valid() && s1.is_valid());
}

#[test]
fn write_filtering_skips_copyless_nodes() {
    // A cold write miss: no node holds the line, so with the presence
    // filter on, all 7 invalidation snoops are (mostly) filtered away.
    let (sim, stats) = run_script(
        Algorithm::Lazy,
        PredictorSpec::None,
        1,
        &[&[(100, WR)]],
        |m| m.policy.write_filtering = true,
    );
    assert!(
        sim.write_snoops_filtered() >= 5,
        "filtered only {}",
        sim.write_snoops_filtered()
    );
    assert!(stats.write_snoops <= 2, "snooped {}", stats.write_snoops);
}

#[test]
fn write_filtering_never_skips_a_copy_holder() {
    // Cores 0..=2 cache the line; core 3 writes it long after every read
    // has completed (the writer idles on private hits first). Every
    // holder must be invalidated despite the filter.
    let mut writer: Vec<(u64, bool)> = vec![(16, RD); 300];
    writer.push((100, WR));
    let (sim, _) = run_script(
        Algorithm::Lazy,
        PredictorSpec::None,
        1,
        &[
            &[(100, RD)],
            &[(0, RD), (100, RD)],
            &[(8, RD), (8, RD), (100, RD)],
            &writer,
        ],
        |m| m.policy.write_filtering = true,
    );
    for n in 0..3 {
        assert_eq!(
            sim.line_state(CmpId(n), 0, LineAddr(100)),
            CoherState::I,
            "cmp{n} must be invalidated"
        );
    }
    assert_eq!(sim.line_state(CmpId(3), 0, LineAddr(100)), CoherState::D);
}

#[test]
fn write_filtering_preserves_results_on_full_workload() {
    // Same trace with and without the filter: identical coherence-visible
    // outcomes (supply counts), fewer write snoops, coherent at the end.
    let profile = flexsnoop_workload::profiles::specjbb().with_accesses(1_000);
    let streams = |seed| -> Vec<Box<dyn AccessStream + Send>> {
        profile
            .streams(seed)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect()
    };
    let run = |filtering: bool| {
        let mut machine = MachineConfig::isca2006(1);
        machine.policy.write_filtering = filtering;
        let mut sim = Simulator::new(
            machine,
            Algorithm::SupersetAgg,
            PredictorSpec::SUP_Y2K,
            energy_model_for(&PredictorSpec::SUP_Y2K),
            streams(21),
            1_000,
        )
        .unwrap();
        let stats = sim.run();
        sim.validate_coherence().expect("coherent");
        (stats, sim.write_snoops_filtered())
    };
    let (base, base_filtered) = run(false);
    let (filt, filt_filtered) = run(true);
    assert_eq!(base_filtered, 0);
    assert!(filt_filtered > 0);
    assert!(
        filt.write_snoops < base.write_snoops,
        "filtering must reduce write snoops ({} vs {})",
        filt.write_snoops,
        base.write_snoops
    );
    // Timing shifts may change collision interleavings slightly, but the
    // transaction volume must stay essentially identical.
    let ratio = filt.write_txns as f64 / base.write_txns as f64;
    assert!(
        (0.98..=1.02).contains(&ratio),
        "write txns diverged: {ratio}"
    );
}

/// §4.3.4's asymmetry, demonstrated end to end: injected FALSE POSITIVES
/// under a filtering algorithm only cost extra snoops — execution stays
/// correct.
#[test]
fn injected_false_positives_are_harmless() {
    use flexsnoop_metrics::EnergyModel;
    use flexsnoop_predictor::{
        FaultInjectingPredictor, FaultKind, SupersetPredictor, SupplierPredictor,
    };
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(600);
    let machine = MachineConfig::isca2006(1);
    let build = |faulty: bool| {
        let streams: Vec<Box<dyn AccessStream + Send>> = profile
            .streams(33)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        let predictors: Vec<Box<dyn SupplierPredictor + Send>> = (0..8)
            .map(|_| {
                if faulty {
                    Box::new(FaultInjectingPredictor::new(
                        SupersetPredictor::y2k(),
                        FaultKind::ForcePositive,
                        5,
                        u64::MAX,
                    )) as Box<dyn SupplierPredictor + Send>
                } else {
                    Box::new(SupersetPredictor::y2k()) as Box<dyn SupplierPredictor + Send>
                }
            })
            .collect();
        Simulator::with_predictors(
            machine,
            Algorithm::SupersetCon,
            predictors,
            EnergyModel::with_bloom_predictor(),
            streams,
            600,
        )
        .unwrap()
    };
    let mut honest = build(false);
    let honest_stats = honest.run();
    honest.validate_coherence().expect("honest run coherent");
    let mut faulty = build(true);
    let faulty_stats = faulty.run();
    faulty
        .validate_coherence()
        .expect("FP-injected run stays coherent");
    assert!(
        faulty_stats.read_snoops > honest_stats.read_snoops,
        "forced positives must add useless snoops ({} vs {})",
        faulty_stats.read_snoops,
        honest_stats.read_snoops
    );
    assert_eq!(
        honest_stats.reads_cache_supplied, faulty_stats.reads_cache_supplied,
        "supply outcomes unchanged"
    );
}

/// §4.3.4's dangerous direction: an injected FALSE NEGATIVE makes a
/// filtering algorithm skip the supplier. In hardware this is incorrect
/// execution; the simulator's fill-time guard converts it into the
/// squash-and-retry a correct implementation would need — observable as
/// extra collisions.
#[test]
fn injected_false_negative_forces_squash_retry() {
    use flexsnoop_metrics::EnergyModel;
    use flexsnoop_predictor::{
        FaultInjectingPredictor, FaultKind, PerfectPredictor, SupplierPredictor,
    };
    let machine = MachineConfig::isca2006(1);
    // Core 0 dirties line 100 (D at cmp0); core 4 then reads it. All
    // predictions are corrupted to "no supplier", so every node filters,
    // the read goes to memory, finds stale data (dirty copy exists), and
    // must squash-retry until the fault budget (3) is spent.
    let script: Vec<Vec<(u64, bool)>> = vec![
        vec![(100, WR)],
        vec![],
        vec![],
        vec![],
        vec![(0, RD), (0, RD), (0, RD), (100, RD)],
    ];
    let streams: Vec<Box<dyn AccessStream + Send>> = (0..8)
        .map(|c| {
            let accesses: Vec<MemAccess> = script
                .get(c)
                .map(|s| {
                    s.iter()
                        .map(|&(l, w)| MemAccess {
                            line: LineAddr(l),
                            write: w,
                            think: Cycles(10),
                        })
                        .collect()
                })
                .unwrap_or_default();
            Box::new(VecStream::new(accesses)) as Box<dyn AccessStream + Send>
        })
        .collect();
    let predictors: Vec<Box<dyn SupplierPredictor + Send>> = (0..8)
        .map(|_| {
            Box::new(FaultInjectingPredictor::new(
                PerfectPredictor::new(),
                FaultKind::ForceNegative,
                1,
                3,
            )) as Box<dyn SupplierPredictor + Send>
        })
        .collect();
    let mut sim = Simulator::with_predictors(
        machine,
        Algorithm::SupersetCon,
        predictors,
        EnergyModel::paper_baseline(),
        streams,
        4,
    )
    .unwrap();
    let stats = sim.run();
    sim.validate_coherence()
        .expect("guarded run stays coherent");
    assert!(
        stats.collisions > 0,
        "the stale-memory race must be caught and retried"
    );
    assert_eq!(
        sim.line_state(CmpId(4), 0, LineAddr(100)),
        CoherState::Sl,
        "the retry eventually gets the line from the dirty supplier"
    );
    assert!(stats.accuracy.false_negatives > 0, "faults were recorded");
}

#[test]
fn probe_counters_agree_with_run_stats() {
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(300);
    let mut sim = Simulator::for_workload(&profile, Algorithm::SupersetAgg, None, 11).unwrap();
    sim.enable_probe();
    let stats = sim.run();
    let report = sim.probe_report().expect("counting probe installed");
    // Every scheduler dispatch was observed.
    assert_eq!(report.events, stats.events);
    // Every ring hop fed one latency sample.
    assert_eq!(
        report.ring_hop_latency.count(),
        stats.read_ring_hops + stats.write_ring_hops
    );
    // Each hop takes at least the configured link latency.
    let hop = sim.config().ring.hop_latency.0;
    assert!(report.ring_hop_latency.min().unwrap() >= hop);
    // Predictor lookups at open requests match the accuracy tallies.
    assert_eq!(report.predictor_lookups, stats.accuracy.total());
    assert_eq!(
        report.predictor_positive,
        stats.accuracy.true_positives + stats.accuracy.false_positives
    );
    assert!(report.predictor_trains > 0, "training was reported");
    // Table 2 primitive decisions were recorded, and the queue was
    // observed non-trivially deep at least once.
    assert!(report.total_actions() > 0);
    assert!(report.queue_depth_high_water > 1);
}

#[test]
fn probe_observes_write_filtering() {
    let mut machine = MachineConfig::isca2006(1);
    machine.policy.write_filtering = true;
    let script: &[&[(u64, bool)]] = &[&[(10, RD), (20, WR)], &[(30, RD)]];
    let total = machine.total_cores();
    let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
    for c in 0..total {
        let accesses: Vec<MemAccess> = script
            .get(c)
            .map(|s| {
                s.iter()
                    .map(|&(line, write)| MemAccess {
                        line: LineAddr(line),
                        write,
                        think: Cycles(10),
                    })
                    .collect()
            })
            .unwrap_or_default();
        streams.push(Box::new(VecStream::new(accesses)));
    }
    let alg = Algorithm::SupersetAgg;
    let predictor = alg.default_predictor();
    let mut sim = Simulator::new(
        machine,
        alg,
        predictor,
        energy_model_for(&predictor),
        streams,
        2,
    )
    .expect("valid scenario");
    sim.enable_probe();
    let _ = sim.run();
    let report = sim.probe_report().unwrap();
    assert_eq!(
        report.write_filter_hits,
        sim.write_snoops_filtered(),
        "probe and simulator agree on elided write snoops"
    );
    assert!(
        report.write_filter_hits > 0,
        "an all-idle ring filters some invalidations"
    );
}

#[test]
fn probe_disabled_reports_nothing() {
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(50);
    let mut sim = Simulator::for_workload(&profile, Algorithm::Lazy, None, 11).unwrap();
    let _ = sim.run();
    assert!(sim.probe_report().is_none());
}

/// Like [`run_script`] but arms a fault plan (and recovery) before the
/// run, for the degraded-mode/probation scenarios. Returns the simulator
/// so callers can inspect timeout estimates and probe counters.
fn run_faulted_script(
    algorithm: Algorithm,
    script: &[&[(u64, bool)]],
    plan: crate::FaultPlan,
    tweak: impl FnOnce(&mut MachineConfig),
) -> (Simulator, RunStats) {
    let mut machine = MachineConfig::isca2006(1);
    tweak(&mut machine);
    let total = machine.total_cores();
    let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
    let mut limit = 0;
    for c in 0..total {
        let accesses: Vec<MemAccess> = script
            .get(c)
            .map(|s| {
                s.iter()
                    .map(|&(line, write)| MemAccess {
                        line: LineAddr(line),
                        write,
                        think: Cycles(10),
                    })
                    .collect()
            })
            .unwrap_or_default();
        limit = limit.max(accesses.len() as u64);
        streams.push(Box::new(VecStream::new(accesses)));
    }
    let predictor = algorithm.default_predictor();
    let mut sim = Simulator::new(
        machine,
        algorithm,
        predictor,
        energy_model_for(&predictor),
        streams,
        limit.max(1),
    )
    .expect("valid scenario");
    sim.enable_invariant_checks();
    sim.enable_probe();
    sim.set_fault_plan(plan);
    sim.set_recovery_enabled(true);
    let stats = sim.run();
    assert!(sim.violations().is_empty(), "{}", sim.violations()[0]);
    assert_eq!(sim.in_flight(), 0, "transactions stranded");
    sim.validate_coherence().expect("coherent final state");
    (sim, stats)
}

/// Drops the first four ring crossings: the opening write to line 100
/// times out past the retry cap and the line degrades to Lazy
/// forwarding. The three reads that follow ride a clean ring.
fn probation_script() -> (&'static [&'static [(u64, bool)]], crate::FaultPlan) {
    let script: &[&[(u64, bool)]] = &[&[(100, WR)], &[(100, RD)], &[(100, RD)], &[(100, RD)]];
    let mut plan = crate::FaultPlan::lossless();
    plan.drop = 1.0;
    plan.budget = 4;
    (script, plan)
}

#[test]
fn degraded_line_rearms_after_exactly_the_probation_window() {
    let (script, plan) = probation_script();
    // retry_cap = 3 (default): four consecutive drops of one
    // transaction's request push it to attempt 3, degrading the line.
    let (sim, stats) = run_faulted_script(Algorithm::SupersetCon, script, plan, |m| {
        m.recovery.probation_window = 3;
    });
    let r = &stats.robustness;
    assert_eq!(r.ring_drops, 4, "{r:?}");
    assert_eq!(r.degraded_entries, 1, "{r:?}");
    // Exactly three clean first-attempt circulations follow — the third
    // completes the window and re-arms the line.
    assert_eq!(r.probation_exits, 1, "{r:?}");
    assert_eq!(r.probation_resets, 0, "{r:?}");
    let probe = sim.probe_report().expect("probe attached");
    assert_eq!(probe.probation_exits, 1);
    assert_eq!(probe.degraded_entries, 1);
}

#[test]
fn one_short_of_the_probation_window_stays_degraded() {
    let (script, plan) = probation_script();
    // Same traffic, window of four: the three clean circulations are one
    // short, so the line must still be degraded at the end of the run.
    let (_, stats) = run_faulted_script(Algorithm::SupersetCon, script, plan, |m| {
        m.recovery.probation_window = 4;
    });
    let r = &stats.robustness;
    assert_eq!(r.degraded_entries, 1, "{r:?}");
    assert_eq!(r.probation_exits, 0, "{r:?}");
}

#[test]
fn probation_transitions_are_identical_across_queue_backends() {
    // The degrade → clean-circulations → re-arm sequence is protocol
    // state; the event-queue implementation must not perturb it.
    let (script, plan) = probation_script();
    let mut runs = Vec::new();
    for kind in [
        flexsnoop_engine::QueueKind::Heap,
        flexsnoop_engine::QueueKind::Bucketed,
    ] {
        let mut machine = MachineConfig::isca2006(1);
        machine.recovery.probation_window = 3;
        let total = machine.total_cores();
        let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
        for c in 0..total {
            let accesses: Vec<MemAccess> = script
                .get(c)
                .map(|s| {
                    s.iter()
                        .map(|&(line, write)| MemAccess {
                            line: LineAddr(line),
                            write,
                            think: Cycles(10),
                        })
                        .collect()
                })
                .unwrap_or_default();
            streams.push(Box::new(VecStream::new(accesses)));
        }
        let alg = Algorithm::SupersetCon;
        let predictor = alg.default_predictor();
        let mut sim = Simulator::new(
            machine,
            alg,
            predictor,
            energy_model_for(&predictor),
            streams,
            1,
        )
        .expect("valid scenario");
        sim.use_event_queue(kind);
        sim.enable_probe();
        sim.set_fault_plan(plan.clone());
        sim.set_recovery_enabled(true);
        let stats = sim.run();
        runs.push((stats, sim.probe_report().expect("probe attached")));
    }
    assert_eq!(
        runs[0], runs[1],
        "queue backend changed probation behaviour"
    );
}

// ----- node churn -----------------------------------------------------------

mod churn {
    use super::*;
    use crate::sim::ChurnWindow;
    use flexsnoop_engine::Cycle;

    /// 8 CMPs × 1 core; each script entry is `(line, write, think)`.
    fn build(script: &[&[(u64, bool, u64)]], windows: Vec<ChurnWindow>) -> Simulator {
        let machine = MachineConfig::isca2006(1);
        let total = machine.total_cores();
        let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
        let mut limit = 0;
        for c in 0..total {
            let accesses: Vec<MemAccess> = script
                .get(c)
                .map(|s| {
                    s.iter()
                        .map(|&(line, write, think)| MemAccess {
                            line: LineAddr(line),
                            write,
                            think: Cycles(think),
                        })
                        .collect()
                })
                .unwrap_or_default();
            limit = limit.max(accesses.len() as u64);
            streams.push(Box::new(VecStream::new(accesses)));
        }
        let alg = Algorithm::Lazy;
        let predictor = PredictorSpec::None;
        let mut sim = Simulator::new(
            machine,
            alg,
            predictor,
            energy_model_for(&predictor),
            streams,
            limit.max(1),
        )
        .expect("valid scenario");
        sim.set_churn_plan(windows).expect("valid churn plan");
        sim
    }

    fn window(node: usize, remove_at: u64, readd_at: u64, warm: bool) -> ChurnWindow {
        ChurnWindow {
            node: CmpId(node),
            remove_at: Cycle::new(remove_at),
            readd_at: Cycle::new(readd_at),
            warm,
        }
    }

    #[test]
    fn cold_churn_flushes_the_cmp_and_writes_dirty_lines_back() {
        // Core 0 dirties line 100 (state D) well before the window.
        let mut sim = build(&[&[(100, WR, 10)]], vec![window(0, 2_000, 3_000, false)]);
        let stats = sim.run();
        sim.validate_coherence().expect("coherent final state");
        assert_eq!(stats.robustness.churn_detaches, 1);
        assert_eq!(stats.robustness.churn_readds, 1);
        assert_eq!(
            sim.line_state(CmpId(0), 0, LineAddr(100)),
            CoherState::I,
            "cold churn must leave nothing resident"
        );
        assert_eq!(stats.eviction_writebacks, 1, "dirty line flushed to home");
    }

    #[test]
    fn warm_churn_demotes_the_supplier_but_keeps_the_copy() {
        let mut sim = build(&[&[(100, WR, 10)]], vec![window(0, 2_000, 3_000, true)]);
        let stats = sim.run();
        sim.validate_coherence().expect("coherent final state");
        assert_eq!(
            sim.line_state(CmpId(0), 0, LineAddr(100)),
            CoherState::Sl,
            "warm churn demotes D to Sl"
        );
        assert_eq!(stats.eviction_writebacks, 1, "dirty data written back");
    }

    #[test]
    fn clean_warm_churn_writes_nothing_back() {
        // A read fill installs Sg (clean supplier): demotion is free.
        let mut sim = build(&[&[(100, RD, 10)]], vec![window(0, 2_000, 3_000, true)]);
        let stats = sim.run();
        assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sl);
        assert_eq!(stats.eviction_writebacks, 0);
    }

    #[test]
    fn issues_on_a_detached_node_are_deferred_to_the_readd() {
        // Core 0's second access thinks long enough to land inside the
        // window; it must issue after the re-add, not be lost.
        let mut sim = build(
            &[&[(100, RD, 10), (200, RD, 2_000)]],
            vec![window(0, 1_000, 50_000, false)],
        );
        let stats = sim.run();
        sim.validate_coherence().expect("coherent final state");
        assert_eq!(stats.read_txns, 2, "deferred access still issued");
        assert_eq!(stats.robustness.unfinished_cores, 0);
        assert!(
            stats.exec_cycles >= Cycle::new(50_000),
            "the deferred issue ran after the re-add ({:?})",
            stats.exec_cycles
        );
        assert!(!sim.is_detached(CmpId(0)));
    }

    #[test]
    fn remote_read_to_a_purged_line_falls_back_to_memory() {
        // Core 0 caches line 100 as supplier; node 0 then churns out
        // cold; core 1 reads the line mid-window and must be served by
        // memory (a negative snoop at node 0, not a stranded request).
        let mut sim = build(
            &[&[(100, RD, 10)], &[(100, RD, 2_500)]],
            vec![window(0, 2_000, 10_000, false)],
        );
        let stats = sim.run();
        sim.validate_coherence().expect("coherent final state");
        assert_eq!(stats.read_txns, 2);
        assert_eq!(stats.reads_from_memory, 2, "no cache supply after purge");
        assert_eq!(stats.reads_cache_supplied, 0);
    }

    #[test]
    fn remote_read_to_a_demoted_line_falls_back_to_memory() {
        // Warm churn keeps the copy but demotes it to Sl, which never
        // supplies remote requests.
        let mut sim = build(
            &[&[(100, RD, 10)], &[(100, RD, 2_500)]],
            vec![window(0, 2_000, 10_000, true)],
        );
        let stats = sim.run();
        sim.validate_coherence().expect("coherent final state");
        assert_eq!(stats.reads_from_memory, 2);
        assert_eq!(stats.reads_cache_supplied, 0);
        assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sl);
    }

    #[test]
    fn churn_plan_validation_rejects_bad_windows() {
        let build_with = |windows: Vec<ChurnWindow>| {
            let machine = MachineConfig::isca2006(1);
            let total = machine.total_cores();
            let streams: Vec<Box<dyn AccessStream + Send>> = (0..total)
                .map(|_| Box::new(VecStream::new(Vec::new())) as _)
                .collect();
            let mut sim = Simulator::new(
                machine,
                Algorithm::Lazy,
                PredictorSpec::None,
                energy_model_for(&PredictorSpec::None),
                streams,
                1,
            )
            .unwrap();
            sim.set_churn_plan(windows)
        };
        assert!(build_with(vec![window(99, 10, 20, false)])
            .unwrap_err()
            .contains("node 99"));
        assert!(build_with(vec![window(0, 20, 20, false)])
            .unwrap_err()
            .contains("re-add after"));
        assert!(
            build_with(vec![window(0, 10, 100, false), window(0, 50, 200, true)])
                .unwrap_err()
                .contains("overlap")
        );
        // Adjacent windows on one node and overlapping windows on
        // different nodes are both fine.
        assert!(build_with(vec![window(0, 10, 100, false), window(0, 100, 200, true)]).is_ok());
        assert!(build_with(vec![window(0, 10, 100, false), window(1, 50, 200, true)]).is_ok());
    }

    #[test]
    fn churn_is_deterministic_across_queue_backends() {
        use flexsnoop_engine::QueueKind;
        let mut runs = Vec::new();
        for kind in [QueueKind::Heap, QueueKind::Bucketed] {
            let mut sim = build(
                &[
                    &[(100, WR, 10), (200, RD, 1_500), (100, RD, 3_000)],
                    &[(100, RD, 700), (300, WR, 1_200)],
                    &[(100, RD, 2_100)],
                ],
                vec![
                    window(0, 1_000, 4_000, false),
                    window(2, 2_000, 5_000, true),
                ],
            );
            sim.use_event_queue(kind);
            runs.push(sim.run());
        }
        assert_eq!(runs[0], runs[1], "queue backend changed churn behaviour");
    }
}
