//! The embedded-ring multiprocessor simulator.
//!
//! A discrete-event model of the paper's machine: in-order cores issuing a
//! deterministic access stream, private L1/L2 caches per core, the
//! seven-state ring snoop protocol (§2.2), the Table 2 message primitives,
//! per-node supplier predictors, home-node memory with optional prefetch,
//! and contention on ring links, CMP snoop ports, torus links and memory
//! controllers.
//!
//! # Model notes (vs. the paper)
//!
//! * Cores are in-order and blocking (one outstanding miss). The paper's
//!   out-of-order cores change absolute times, not the relative ordering of
//!   the snooping algorithms, which is driven by the memory system.
//! * Same-line transaction collisions are resolved at the requester by
//!   serializing the later transaction behind the earlier one (a
//!   squash-and-immediate-retry). The paper squashes mid-ring and retries;
//!   both orderings admit exactly one winner and charge the loser a retry
//!   delay.
//! * Exact-predictor downgrades take effect immediately (the state change
//!   is not given a latency); the induced write-back and re-read costs are
//!   fully modeled.

use std::collections::VecDeque;

use flexsnoop_engine::snap::{self, Fingerprint, SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::{
    segment_of, Cycle, Cycles, FxHashMap, FxHashSet, QueueKind, Resource, Scheduler,
    ShardedScheduler,
};
use flexsnoop_mem::{CacheGeometry, CmpCaches, CmpId, CoherState, InvalidateOutcome, LineAddr};
use flexsnoop_metrics::{EnergyCategory, EnergyModel};
use flexsnoop_net::{FaultPlan, FaultStats, RingConfig, RingNetwork, Torus, TorusConfig};
use flexsnoop_predictor::{
    BloomFilter, BloomSpec, LocalityTable, PredictorBank, PredictorSpec, SupplierPredictor,
    DEFAULT_LOCALITY_ENTRIES,
};
use flexsnoop_workload::{AccessStream, MemAccess, WorkloadProfile};

use flexsnoop_mem::invariants;

use crate::algorithm::{Algorithm, DynPolicy, SnoopAction};
use crate::arena::TxnArena;
use crate::config::{MachineConfig, TimeoutPolicy};
use crate::message::{MsgKind, ReplyInfo, RingMsg, SnoopScope, TxnId, TxnOp};
use crate::oracle::{ProtocolMutation, Violation};
use crate::probe::{CountingProbe, Probe, ProbeReport};
use crate::stats::RunStats;
use crate::timeline::{Timeline, TxnEvent};

fn kind_label(kind: &MsgKind) -> &'static str {
    match kind {
        MsgKind::Request => "Req",
        MsgKind::Reply(_) => "Rep",
        MsgKind::Combined(_) => "R/R",
    }
}

/// Per-node, per-transaction gateway state (Table 2's bookkeeping).
///
/// Stored sparsely in the simulator's `gateway` map, keyed by
/// `(transaction, node)`. A missing entry means the node has either not
/// seen the transaction yet or already finished with it (writing
/// [`NodeState::Finished`] removes the entry): only the handful of nodes
/// actively working on a transaction occupy memory, instead of a
/// `Vec<NodeState>` of machine size per transaction — the difference
/// between O(in-flight × touched) and O(in-flight × nodes) state on
/// million-node rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// The node chose `Forward`; a trailing reply (if any) is also passed
    /// through, marked as filtered.
    PassThrough,
    /// A snoop is in flight.
    Snooping {
        /// The incoming accumulator, present iff the request arrived as a
        /// combined R/R.
        acc: Option<ReplyInfo>,
        /// Whether the outgoing message is a combined R/R (Snoop Then
        /// Forward) or a bare reply (Forward Then Snoop).
        combine_out: bool,
        /// A trailing negative reply that arrived mid-snoop.
        buffered: Option<ReplyInfo>,
    },
    /// The snoop finished negative on a split request; waiting for the
    /// trailing reply to merge with. `any_copy` is the local outcome.
    AwaitReply { combine_out: bool, any_copy: bool },
    /// This node's part is done; any further (trailing) reply is stale
    /// information and is discarded (Table 2: "Discard snoop reply").
    /// Never stored: writing it removes the gateway entry.
    Finished,
}

/// Machine-wide copy counts for one resident line (the simulator's
/// `residency` map), maintained incrementally by every L2 state change so
/// memory-fill decisions are O(1) lookups instead of full-machine scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LineCopies {
    /// Valid copies across all cores' L2s.
    copies: u32,
    /// Copies in `E`, `D` or `T` — the states whose presence makes
    /// memory's own copy unusable for fills. A count (not a flag) so the
    /// totals stay exact even when injected protocol mutations violate
    /// the one-owner invariant.
    strong: u32,
}

/// Estimated model-state memory footprint of a built simulator
/// ([`Simulator::memory_footprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Total estimated bytes across caches, predictors, filters, network
    /// link FIFOs, ports and the dynamic protocol maps.
    pub total_bytes: u64,
    /// `total_bytes / nodes` — the scaling figure `bench --scale` tracks.
    pub bytes_per_node: u64,
}

/// How the requesting core gets the data of a ring write transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteData {
    /// Upgrade or a local copy exists: no remote data needed.
    Local,
    /// Data must come from a remote supplier or memory.
    Remote,
}

/// Per-requester ring round-trip estimator (Jacobson/Karels, integer
/// shifts so it is exactly reproducible):
///
/// ```text
/// err    = R − srtt
/// srtt  += err >> 3            (gain 1/8)
/// rttvar += (|err| − rttvar) >> 2   (gain 1/4)
/// RTO    = max(srtt + 4·rttvar, floor)
/// ```
///
/// Seeded from the unloaded circulation latency (`floor`), with an
/// initial variance of `floor/4` so the first windows carry the same
/// order of slack the static policy hard-codes. The clamp to `floor`
/// guarantees the estimate never undercuts physics no matter what the
/// congestion history looks like.
#[derive(Debug, Clone, Copy)]
struct RttEstimator {
    srtt: i64,
    rttvar: i64,
}

impl RttEstimator {
    fn new(floor: Cycles) -> Self {
        RttEstimator {
            srtt: floor.0 as i64,
            rttvar: (floor.0 / 4) as i64,
        }
    }

    fn sample(&mut self, rtt: Cycles) {
        let err = rtt.0 as i64 - self.srtt;
        self.srtt += err >> 3;
        self.rttvar += (err.abs() - self.rttvar) >> 2;
    }

    fn timeout(&self, floor: Cycles) -> Cycles {
        let rto = self.srtt.saturating_add(4 * self.rttvar).max(0) as u64;
        Cycles(rto.max(floor.0))
    }
}

#[derive(Debug)]
struct Txn {
    line: LineAddr,
    op: TxnOp,
    requester: CmpId,
    /// Global core id of the requester.
    core: usize,
    issue: Cycle,
    /// Nodes holding a gateway entry for this transaction, in insertion
    /// order. Drained to clean up the sparse gateway map on retirement or
    /// retry; duplicate-free because nodes are pushed only when their
    /// entry is freshly inserted.
    engaged: Vec<u32>,
    /// When cache-supplied data reached the requester.
    data_arrived: Option<Cycle>,
    /// The returned ring outcome.
    reply_info: Option<ReplyInfo>,
    /// Completion of the speculative home-node DRAM prefetch.
    prefetch_ready: Option<Cycle>,
    /// Write transactions: where the data comes from.
    write_data: WriteData,
    /// A remote cache has already sent the data (writes: first supplier
    /// invalidation wins).
    data_sent: bool,
    /// The core has been resumed (or never blocked: writes drain from a
    /// store buffer and do not stall the core).
    resumed: bool,
    /// Data events (`MemData` / `DataArrive`) scheduled for this
    /// transaction and not yet fired. A live transaction whose reply has
    /// returned is waiting on exactly these; with torus faults armed the
    /// recovery timer stands down only while one is pending — `resumed` or
    /// `data_arrived` may be stale leftovers of a superseded attempt and
    /// must not be trusted.
    data_pending: u32,
    /// Whether the issuing core blocks until this transaction completes
    /// (reads do; writes are fire-and-forget).
    blocking: bool,
    /// Memory fill state chosen when the negative reply returned.
    fill_state: CoherState,
    /// Current circulation attempt (0 = original issue). Only advances on
    /// an unreliable ring with recovery enabled.
    attempt: u32,
    /// Gateway departure time of the current attempt's request, the
    /// epoch of the round-trip sample its return will contribute.
    attempt_start: Cycle,
    /// Next emission sequence number for the current attempt.
    emit_seq: u32,
    /// Bitset of sequence numbers already delivered this attempt, for
    /// duplicate suppression. Empty (never allocated) on a lossless ring.
    seen_seqs: Vec<u64>,
    /// Current circulation scope. Always `Global` on a flat topology;
    /// hierarchical reads may start `Local` and escalate on a miss.
    scope: SnoopScope,
    /// The transaction has been re-issued by a timeout at least once:
    /// all its subsequent ring traffic is charged to recovery overhead.
    /// Escalations (locality mispredictions) do not set this.
    retried: bool,
}

impl Txn {
    fn seen(&self, seq: u32) -> bool {
        self.seen_seqs
            .get(seq as usize / 64)
            .is_some_and(|w| w & (1 << (seq % 64)) != 0)
    }

    fn mark_seen(&mut self, seq: u32) {
        let word = seq as usize / 64;
        if self.seen_seqs.len() <= word {
            self.seen_seqs.resize(word + 1, 0);
        }
        self.seen_seqs[word] |= 1 << (seq % 64);
    }
}

struct CoreState {
    stream: Box<dyn AccessStream + Send>,
    issued: u64,
    limit: u64,
    done: bool,
    /// Ring read transactions currently in flight from this core.
    outstanding_reads: usize,
    /// The core hit its outstanding-read limit and awaits a completion.
    stalled: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A core issues a memory access. `replay` marks a collided access
    /// being retried: the core (for writes) was already advanced at the
    /// original issue and must not be advanced again.
    CoreIssue {
        core: usize,
        access: MemAccess,
        replay: bool,
    },
    /// A ring message arrives at a node's gateway.
    RingArrive { msg: RingMsg, node: CmpId },
    /// A read-snoop operation completes at a node. `attempt` tags the
    /// circulation that started it; completions from superseded attempts
    /// are counted (the work happened) but drive no protocol state.
    SnoopDone {
        txn: TxnId,
        node: CmpId,
        attempt: u32,
    },
    /// A write-snoop (invalidation) completes at a node.
    WriteSnoopDone {
        txn: TxnId,
        node: CmpId,
        attempt: u32,
    },
    /// Cache-to-cache data reaches the requester.
    DataArrive { txn: TxnId },
    /// Memory data reaches the requester.
    MemData { txn: TxnId },
    /// The requester-side recovery timer for one circulation attempt
    /// expired (only scheduled on an unreliable ring with recovery on).
    Timeout { txn: TxnId, attempt: u32 },
    /// A CMP leaves the machine (node churn): its cores quiesce and its
    /// caches are flushed (`warm: false`) or demoted to non-supplier
    /// states (`warm: true`). See [`ChurnWindow`].
    ChurnDetach { node: CmpId, warm: bool },
    /// A churned-out CMP rejoins the machine and its cores resume.
    ChurnReadd { node: CmpId },
}

/// One scheduled hot-remove / re-add of a CMP (node churn).
///
/// At `remove_at` the node *detaches*: its cores stop issuing (accesses
/// already pulled from their streams are deferred, not lost) while its
/// gateway hardware keeps forwarding and snooping — the ring stays
/// closed. A **cold** removal (`warm: false`) flushes the CMP's caches:
/// dirty lines write back to their home node over the torus and every
/// copy is invalidated, so the node rejoins with nothing resident. A
/// **warm** removal keeps the caches but demotes any supplier-state copy
/// (`Sg`/`E`/`D`/`T`) to locally-shared `Sl` — writing dirty data back —
/// so no remote request can depend on the detached node for data; the
/// kept copies stay coherent because the gateway still applies write
/// invalidations. At `readd_at` the node re-attaches and its deferred
/// accesses issue.
///
/// In-flight transactions are never cancelled: snoop outcomes are read
/// from the live caches at snoop time, so a purged line simply produces
/// a negative snoop and the requester falls through to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnWindow {
    /// The CMP that leaves and rejoins.
    pub node: CmpId,
    /// Cycle at which the node detaches.
    pub remove_at: Cycle,
    /// Cycle at which the node re-attaches (must be after `remove_at`).
    pub readd_at: Cycle,
    /// Keep the caches across the window (demoted), instead of flushing.
    pub warm: bool,
}

/// The simulator's event queue: one global [`Scheduler`] by default, or a
/// [`ShardedScheduler`] with one timing wheel per ring segment
/// ([`Simulator::set_segments`]). Both pop in the same global
/// `(time, insertion seq)` order, so every segment count produces
/// bit-identical results; sharding exists to keep each wheel's working
/// set small at large node counts and to expose per-segment event streams
/// to the conservative parallel driver in `flexsnoop-engine`.
#[derive(Debug)]
enum SimSched {
    Single(Scheduler<Event>),
    Sharded(ShardedScheduler<Event>),
}

impl SimSched {
    fn build(kind: QueueKind, segments: usize) -> Self {
        if segments > 1 {
            SimSched::Sharded(ShardedScheduler::new(kind, segments))
        } else {
            SimSched::Single(Scheduler::with_queue(kind))
        }
    }

    fn segments(&self) -> usize {
        match self {
            SimSched::Single(_) => 1,
            SimSched::Sharded(s) => s.shard_count(),
        }
    }

    fn queue_kind(&self) -> QueueKind {
        match self {
            SimSched::Single(s) => s.queue_kind(),
            SimSched::Sharded(s) => s.queue_kind(),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            SimSched::Single(s) => s.now(),
            SimSched::Sharded(s) => s.now(),
        }
    }

    fn len(&self) -> usize {
        match self {
            SimSched::Single(s) => s.len(),
            SimSched::Sharded(s) => s.len(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            SimSched::Single(s) => s.is_empty(),
            SimSched::Sharded(s) => s.is_empty(),
        }
    }

    fn schedule_at(&mut self, shard: usize, at: Cycle, event: Event) {
        match self {
            SimSched::Single(s) => s.schedule_at(at, event),
            SimSched::Sharded(s) => s.schedule_at(shard, at, event),
        }
    }

    fn pop(&mut self) -> Option<(Cycle, Event)> {
        match self {
            SimSched::Single(s) => s.pop(),
            SimSched::Sharded(s) => s.pop().map(|(t, _shard, e)| (t, e)),
        }
    }

    fn peek_time(&self) -> Option<Cycle> {
        match self {
            SimSched::Single(s) => s.peek_time(),
            SimSched::Sharded(s) => s.peek_time(),
        }
    }

    fn restore_clock(&mut self, at: Cycle) {
        match self {
            SimSched::Single(s) => s.restore_clock(at),
            SimSched::Sharded(s) => s.restore_clock(at),
        }
    }
}

/// The full-machine simulator for one (algorithm, predictor, workload) run.
///
/// The typical flow — build from a workload profile, run to completion,
/// validate, read the statistics — mirrors `examples/quickstart.rs`:
///
/// ```
/// use flexsnoop::{Algorithm, Simulator};
/// use flexsnoop_workload::profiles;
///
/// # fn main() -> Result<(), String> {
/// let workload = profiles::specweb().with_accesses(150);
/// let mut stats = Vec::new();
/// for alg in [Algorithm::Lazy, Algorithm::SupersetAgg] {
///     let mut sim = Simulator::for_workload(&workload, alg, None, 42)?;
///     let s = sim.run();
///     sim.validate_coherence()?;
///     stats.push(s);
/// }
/// // The adaptive algorithm must not snoop more than Lazy's full walk.
/// assert!(stats[1].snoops_per_read() <= stats[0].snoops_per_read());
/// assert!(stats.iter().all(|s| s.read_txns > 0 && s.energy_nj() > 0.0));
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    cfg: MachineConfig,
    alg: Algorithm,
    sched: SimSched,
    cmps: Vec<CmpCaches>,
    predictors: PredictorBank,
    /// Per-group supplier-locality tables (hierarchical topologies only;
    /// empty when flat). Consulted at the requester to pick the initial
    /// circulation scope, trained by observed supplier positions,
    /// escalations and memory fills.
    locality: Vec<LocalityTable>,
    /// Per-node presence filters, allocated and maintained only when
    /// write filtering is on (empty otherwise — at ~1.2 KB per filter
    /// they would dominate memory on large rings): a counting Bloom over
    /// every valid line in the CMP's L2s. No false negatives, so a
    /// "definitely absent" answer makes skipping a write invalidation
    /// safe (§5.3 extension).
    presence: Vec<BloomFilter>,
    write_snoops_filtered: u64,
    ring: RingNetwork,
    torus: Torus,
    /// One shared intra-CMP bus per node: ring snoops and local
    /// cache-to-cache supplies arbitrate for it.
    snoop_ports: Vec<Resource>,
    mem_ports: Vec<Resource>,
    cores: Vec<CoreState>,
    txns: TxnArena<Txn>,
    /// Sparse per-`(transaction, node)` gateway state (see [`NodeState`]):
    /// absence means untouched-or-finished. Entries are created by
    /// [`Self::set_node_state`] and reclaimed through each transaction's
    /// `engaged` list on retirement and retry.
    gateway: FxHashMap<(TxnId, u32), NodeState>,
    /// Machine-wide copy counts per resident line (see [`LineCopies`]),
    /// kept in sync by every L2 state change so
    /// [`Self::memory_fill_state`] needs no O(nodes × cores) scan.
    residency: FxHashMap<LineAddr, LineCopies>,
    /// In-flight transaction counts per line: `(readers, writers)`.
    /// Read–read concurrency is benign (no state is modified that another
    /// read could observe inconsistently); any write serializes.
    line_busy: FxHashMap<LineAddr, (u32, u32)>,
    line_waiters: FxHashMap<LineAddr, VecDeque<(usize, MemAccess)>>,
    downgraded: FxHashSet<LineAddr>,
    /// Lines that exhausted their retry cap and now always use Lazy
    /// forwarding (degraded mode; only populated on an unreliable ring),
    /// mapped to their probation progress: consecutive clean (retry-free)
    /// circulations observed since the last timeout on the line. At
    /// `recovery.probation_window` the line re-arms its Table 3 algorithm.
    degraded_lines: FxHashMap<LineAddr, u32>,
    /// A non-lossless fault plan is armed on the ring: sequence numbers
    /// are assigned and checked, and (with `recovery`) timeouts guard
    /// every transaction's ring phase.
    unreliable: bool,
    /// The armed plan can drop torus data messages, so a returned ring
    /// reply no longer proves the data phase will finish: timeouts then
    /// guard the whole transaction, not just the ring circulation.
    torus_faulty: bool,
    /// Timeout/retry recovery is active (default). Disabled only by
    /// [`Self::set_recovery_enabled`] for the chaos harness's
    /// self-test: a lossy ring without retries loses transactions.
    recovery: bool,
    /// Armed node-churn windows ([`Self::set_churn_plan`]); like the
    /// fault plan, re-armed (not serialized) across snapshot restore.
    churn: Vec<ChurnWindow>,
    /// Per-node churn state: `true` while the CMP is detached. Core
    /// issues on a detached node are deferred to its re-add cycle.
    detached: Vec<bool>,
    /// Derived static ring-phase timeout (see
    /// [`crate::config::RecoveryParams`]): floor + queueing slack.
    timeout_base: Cycles,
    /// Unloaded circulation latency plus per-node processing — the
    /// physical lower bound no timeout estimate may undercut.
    timeout_floor: Cycles,
    /// Per-requester round-trip estimators
    /// ([`TimeoutPolicy::Adaptive`]); populated by
    /// [`Self::set_fault_plan`].
    rtt: Vec<RttEstimator>,
    stats: RunStats,
    timeline: Timeline,
    /// Observability sink (see [`crate::probe`]); `None` keeps every hook
    /// site down to one branch.
    probe: Option<Box<dyn Probe>>,
    /// Per-retirement invariant oracle (see [`crate::oracle`]): on when
    /// [`enable_invariant_checks`](Self::enable_invariant_checks) was
    /// called or the crate was built with `strict-invariants`.
    checks: bool,
    violations: Vec<Violation>,
    mutation: Option<ProtocolMutation>,
    active_cores: usize,
    /// The first [`run_until`](Self::run_until) call primed the cores;
    /// also set by a snapshot restore (the snapshot was taken mid-run).
    started: bool,
    finished: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("algorithm", &self.alg)
            .field("nodes", &self.cfg.nodes)
            .field("cores", &self.cores.len())
            .field("now", &self.sched.now())
            .field("in_flight_txns", &self.txns.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds a simulator from explicit parts.
    ///
    /// `streams` must contain one access stream per core
    /// (`machine.total_cores()`), and `limit` caps the accesses each core
    /// issues.
    ///
    /// # Errors
    ///
    /// Returns a message if the machine config is invalid, the stream
    /// count is wrong, or the predictor spec is illegal for the algorithm.
    pub fn new(
        machine: MachineConfig,
        algorithm: Algorithm,
        predictor: PredictorSpec,
        energy: EnergyModel,
        streams: Vec<Box<dyn AccessStream + Send>>,
        limit: u64,
    ) -> Result<Self, String> {
        machine.validate()?;
        if streams.len() != machine.total_cores() {
            return Err(format!(
                "expected {} streams, got {}",
                machine.total_cores(),
                streams.len()
            ));
        }
        if !algorithm.accepts_predictor(&predictor) {
            return Err(format!(
                "algorithm {algorithm} cannot use predictor {predictor}"
            ));
        }
        // The bank picks the most compact machine-wide layout that keeps
        // per-node semantics (flat shared tables for Subset, zero storage
        // for None) instead of one boxed predictor per node.
        let bank = predictor.build_bank(machine.nodes);
        Self::build(machine, algorithm, bank, energy, streams, limit)
    }

    /// Builds a simulator with caller-supplied per-node predictors (one
    /// per CMP), bypassing the [`PredictorSpec`] registry. This is the
    /// research entry point for custom predictor designs and for fault
    /// injection ([`flexsnoop_predictor::FaultInjectingPredictor`]); the
    /// caller is responsible for matching the algorithm's error-class
    /// expectations — a predictor with false negatives under a filtering
    /// algorithm reproduces exactly the §4.3.4 hardware-race hazard.
    ///
    /// # Errors
    ///
    /// Returns a message if the machine config is invalid or the stream or
    /// predictor counts are wrong.
    pub fn with_predictors(
        machine: MachineConfig,
        algorithm: Algorithm,
        predictors: Vec<Box<dyn SupplierPredictor + Send>>,
        energy: EnergyModel,
        streams: Vec<Box<dyn AccessStream + Send>>,
        limit: u64,
    ) -> Result<Self, String> {
        Self::build(
            machine,
            algorithm,
            PredictorBank::Boxed(predictors),
            energy,
            streams,
            limit,
        )
    }

    fn build(
        machine: MachineConfig,
        algorithm: Algorithm,
        predictors: PredictorBank,
        energy: EnergyModel,
        streams: Vec<Box<dyn AccessStream + Send>>,
        limit: u64,
    ) -> Result<Self, String> {
        machine.validate()?;
        if streams.len() != machine.total_cores() {
            return Err(format!(
                "expected {} streams, got {}",
                machine.total_cores(),
                streams.len()
            ));
        }
        if predictors.len() != machine.nodes {
            return Err(format!(
                "expected {} predictors, got {}",
                machine.nodes,
                predictors.len()
            ));
        }
        let l1 = CacheGeometry::from_capacity(
            machine.caches.l1_bytes,
            machine.caches.l1_ways,
            machine.caches.line_bytes,
        );
        let l2 = CacheGeometry::from_capacity(
            machine.caches.l2_bytes,
            machine.caches.l2_ways,
            machine.caches.line_bytes,
        );
        let cmps = (0..machine.nodes)
            .map(|_| CmpCaches::new(machine.cores_per_cmp, l1, l2))
            .collect();
        let presence = if machine.policy.write_filtering {
            (0..machine.nodes)
                .map(|_| BloomFilter::new(BloomSpec::y_filter()))
                .collect()
        } else {
            Vec::new()
        };
        let ring = RingNetwork::new(RingConfig {
            nodes: machine.nodes,
            rings: machine.ring.rings,
            hop_latency: machine.ring.hop_latency,
            link_service: machine.ring.link_service,
            hier: machine.ring.hier,
        });
        let locality = match machine.ring.hier {
            Some(h) => (0..h.groups)
                .map(|_| LocalityTable::new(DEFAULT_LOCALITY_ENTRIES))
                .collect(),
            None => Vec::new(),
        };
        let torus = Torus::new(TorusConfig::near_square(
            machine.nodes,
            machine.data_net.hop_latency,
            machine.data_net.router_latency,
            machine.data_net.link_service,
        ));
        let active_cores = streams.len();
        let cores = streams
            .into_iter()
            .map(|stream| CoreState {
                stream,
                issued: 0,
                limit,
                done: false,
                outstanding_reads: 0,
                stalled: false,
            })
            .collect();
        Ok(Self {
            alg: algorithm,
            sched: SimSched::Single(Scheduler::new()),
            cmps,
            predictors,
            locality,
            presence,
            write_snoops_filtered: 0,
            ring,
            torus,
            snoop_ports: (0..machine.nodes).map(|_| Resource::new()).collect(),
            mem_ports: (0..machine.nodes).map(|_| Resource::new()).collect(),
            cores,
            txns: TxnArena::new(),
            gateway: FxHashMap::default(),
            residency: FxHashMap::default(),
            line_busy: FxHashMap::default(),
            line_waiters: FxHashMap::default(),
            downgraded: FxHashSet::default(),
            degraded_lines: FxHashMap::default(),
            unreliable: false,
            torus_faulty: false,
            recovery: true,
            churn: Vec::new(),
            detached: vec![false; machine.nodes],
            timeout_base: Cycles(0),
            timeout_floor: Cycles(0),
            rtt: Vec::new(),
            stats: RunStats::new(energy),
            timeline: Timeline::disabled(),
            probe: None,
            checks: cfg!(feature = "strict-invariants"),
            violations: Vec::new(),
            mutation: None,
            active_cores,
            started: false,
            finished: false,
            cfg: machine,
        })
    }

    /// Convenience constructor: the paper machine sized for `profile`,
    /// with the algorithm's default predictor unless `predictor` overrides
    /// it.
    ///
    /// # Errors
    ///
    /// Returns a message if the profile's core count is not divisible by
    /// the node count or the configuration is otherwise invalid.
    pub fn for_workload(
        profile: &WorkloadProfile,
        algorithm: Algorithm,
        predictor: Option<PredictorSpec>,
        seed: u64,
    ) -> Result<Self, String> {
        Self::for_workload_on(profile, algorithm, predictor, seed, 8)
    }

    /// Like [`for_workload`](Self::for_workload) but with an explicit node
    /// count, for machine-scaling studies (the paper argues the embedded
    /// ring suits 8–16 node machines; §2.1.4).
    ///
    /// # Errors
    ///
    /// Returns a message if the profile's core count is not divisible by
    /// `nodes` or the configuration is otherwise invalid.
    pub fn for_workload_on(
        profile: &WorkloadProfile,
        algorithm: Algorithm,
        predictor: Option<PredictorSpec>,
        seed: u64,
        nodes: usize,
    ) -> Result<Self, String> {
        if nodes == 0 || !profile.cores.is_multiple_of(nodes) {
            return Err(format!(
                "workload cores ({}) must be a multiple of {nodes} nodes",
                profile.cores
            ));
        }
        let machine = MachineConfig {
            nodes,
            ..MachineConfig::isca2006(profile.cores / nodes)
        };
        let predictor = predictor.unwrap_or_else(|| algorithm.default_predictor());
        let energy = energy_model_for(&predictor);
        let streams: Vec<Box<dyn AccessStream + Send>> = profile
            .streams(seed)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        Self::new(
            machine,
            algorithm,
            predictor,
            energy,
            streams,
            profile.accesses_per_core,
        )
    }

    /// Like [`for_workload_on`](Self::for_workload_on) but arranging the
    /// `local × groups` nodes as a hierarchical multi-ring machine with
    /// the [`crate::config::default_hier`] bridge timing and a per-group
    /// locality table steering read circulations.
    ///
    /// # Errors
    ///
    /// Returns a message if the profile's core count is not divisible by
    /// `local * groups` or the configuration is otherwise invalid.
    pub fn for_workload_hier(
        profile: &WorkloadProfile,
        algorithm: Algorithm,
        predictor: Option<PredictorSpec>,
        seed: u64,
        local: usize,
        groups: usize,
    ) -> Result<Self, String> {
        let nodes = local * groups;
        if nodes == 0 || !profile.cores.is_multiple_of(nodes) {
            return Err(format!(
                "workload cores ({}) must be a multiple of {local}x{groups} nodes",
                profile.cores
            ));
        }
        let machine = MachineConfig {
            nodes,
            ring: crate::config::RingParams {
                hier: Some(crate::config::default_hier(local, groups)),
                ..MachineConfig::isca2006(1).ring
            },
            ..MachineConfig::isca2006(profile.cores / nodes)
        };
        let predictor = predictor.unwrap_or_else(|| algorithm.default_predictor());
        let energy = energy_model_for(&predictor);
        let streams: Vec<Box<dyn AccessStream + Send>> = profile
            .streams(seed)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        Self::new(
            machine,
            algorithm,
            predictor,
            energy,
            streams,
            profile.accesses_per_core,
        )
    }

    /// The algorithm under test.
    pub fn algorithm(&self) -> Algorithm {
        self.alg
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Statistics collected so far (complete after [`run`](Self::run)).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Enables per-transaction event recording for the first `limit` ring
    /// transactions (see [`crate::timeline::Timeline`]). Call before
    /// [`run`](Self::run).
    pub fn enable_timeline(&mut self, limit: usize) {
        self.timeline = Timeline::with_limit(limit);
    }

    /// Selects the event-queue implementation backing the scheduler. Both
    /// kinds dispatch events in the identical order, so results are
    /// bit-for-bit the same either way; only throughput differs. Call
    /// before [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn use_event_queue(&mut self, kind: QueueKind) {
        assert!(
            !self.finished && self.sched.is_empty(),
            "use_event_queue() must be called before run()"
        );
        self.sched = SimSched::build(kind, self.sched.segments());
    }

    /// Splits the event queue into `segments` per-ring-segment timing
    /// wheels (see [`ShardedScheduler`]). Every event is routed to the
    /// wheel of the node it acts on; pops interleave all wheels in global
    /// `(time, insertion)` order, so **any** segment count produces
    /// bit-identical results to the single-wheel default — only the
    /// per-wheel working-set size changes. Call before
    /// [`run`](Self::run); composes with
    /// [`use_event_queue`](Self::use_event_queue) in either order.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started, or if `segments` is
    /// zero or exceeds the node count.
    pub fn set_segments(&mut self, segments: usize) {
        assert!(
            !self.finished && self.sched.is_empty(),
            "set_segments() must be called before run()"
        );
        assert!(
            segments >= 1 && segments <= self.cfg.nodes,
            "segment count ({segments}) must be in 1..={}",
            self.cfg.nodes
        );
        self.sched = SimSched::build(self.sched.queue_kind(), segments);
    }

    /// The configured ring-segment (event-wheel) count.
    pub fn segments(&self) -> usize {
        self.sched.segments()
    }

    /// The recorded transaction timelines.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Installs the built-in counting probe (see [`crate::probe`]). Call
    /// before [`run`](Self::run); read the result with
    /// [`probe_report`](Self::probe_report) afterwards.
    pub fn enable_probe(&mut self) {
        self.probe = Some(Box::new(CountingProbe::new()));
    }

    /// Installs a caller-supplied observability sink. Call before
    /// [`run`](Self::run).
    pub fn set_probe(&mut self, probe: Box<dyn Probe>) {
        self.probe = Some(probe);
    }

    /// The aggregated probe counters, if a report-producing probe (such as
    /// the one installed by [`enable_probe`](Self::enable_probe)) is
    /// present.
    pub fn probe_report(&self) -> Option<ProbeReport> {
        self.probe.as_ref().and_then(|p| p.report())
    }

    /// Write-snoop invalidations skipped by the presence filter (only
    /// non-zero when `policy.write_filtering` is on).
    pub fn write_snoops_filtered(&self) -> u64 {
        self.write_snoops_filtered
    }

    /// Arms a ring [`FaultPlan`] (see [`flexsnoop_net::fault`]) and the
    /// timeout/retry recovery layer. A lossless plan leaves the simulator
    /// bit-for-bit identical to an unconfigured one. Call before
    /// [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            !self.finished && self.sched.is_empty(),
            "set_fault_plan() must be called before run()"
        );
        self.unreliable = !plan.is_lossless();
        self.torus_faulty = plan.torus_faults();
        self.torus.set_fault_plan(&plan);
        self.ring.set_fault_plan(plan);
        // Ring-phase worst case without contention: a full circulation
        // of hops plus per-node gateway + snoop processing. The static
        // policy pads this floor by the configured queueing slack; the
        // adaptive policy seeds a per-requester estimator from it
        // instead. A spurious timeout (pure congestion) is wasteful but
        // never incorrect: the retry is a fresh attempt and stale
        // deliveries are discarded. Later attempts widen the window
        // exponentially (see [`Self::timeout_window`]) so sustained
        // congestion cannot livelock the requester.
        let per_node = self.cfg.timing.snoop_time
            + self.cfg.timing.gateway_latency
            + self.cfg.timing.predictor_latency;
        self.timeout_floor =
            self.ring.unloaded_circulation_latency() + per_node * self.cfg.nodes as u64;
        self.timeout_base = self.timeout_floor + self.cfg.recovery.queueing_slack;
        self.rtt = vec![RttEstimator::new(self.timeout_floor); self.cfg.nodes];
    }

    /// Arms node-churn windows (see [`ChurnWindow`]): each detaches one
    /// CMP at `remove_at` and re-attaches it at `readd_at`. The detach
    /// and re-add events are scheduled up front when the run is primed,
    /// so their order relative to same-cycle traffic is fixed by
    /// insertion sequence and every queue backend replays it
    /// identically. Call before [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns a message if a window names a node outside the machine,
    /// re-adds at or before its removal, or overlaps another window on
    /// the same node.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn set_churn_plan(&mut self, windows: Vec<ChurnWindow>) -> Result<(), String> {
        assert!(
            !self.started && !self.finished && self.sched.is_empty(),
            "set_churn_plan() must be called before run()"
        );
        for w in &windows {
            if w.node.0 >= self.cfg.nodes {
                return Err(format!(
                    "churn window names node {} but the machine has {} nodes",
                    w.node.0, self.cfg.nodes
                ));
            }
            if w.remove_at >= w.readd_at {
                return Err(format!(
                    "churn window on node {} must re-add after it removes ({} >= {})",
                    w.node.0,
                    w.remove_at.as_u64(),
                    w.readd_at.as_u64()
                ));
            }
        }
        let mut spans: Vec<(usize, Cycle, Cycle)> = windows
            .iter()
            .map(|w| (w.node.0, w.remove_at, w.readd_at))
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if pair[0].0 == pair[1].0 && pair[1].1 < pair[0].2 {
                return Err(format!("churn windows on node {} overlap", pair[0].0));
            }
        }
        self.churn = windows;
        Ok(())
    }

    /// The armed churn windows (empty unless [`Self::set_churn_plan`]
    /// was called).
    pub fn churn_plan(&self) -> &[ChurnWindow] {
        &self.churn
    }

    /// Whether `node` is currently detached by a churn window.
    pub fn is_detached(&self, node: CmpId) -> bool {
        self.detached.get(node.0).copied().unwrap_or(false)
    }

    /// Timeout window for circulation `attempt` of a transaction issued
    /// at `requester`.
    ///
    /// The attempt-0 window comes from the configured
    /// [`TimeoutPolicy`]: the static base, or the requester's current
    /// round-trip estimate. It doubles per attempt: a window that only
    /// matched the uncongested round trip could expire before *every*
    /// circulation under sustained congestion (discarding each one as
    /// stale and retrying forever). Widening guarantees some attempt's
    /// window exceeds the actual transit time, because faults are
    /// budget-bounded and the workload is finite. The shift cap only
    /// avoids overflow; at 2^16 windows the queue has long since
    /// drained.
    fn timeout_window(&self, requester: CmpId, attempt: u32) -> Cycles {
        let base = match self.cfg.recovery.timeout_policy {
            TimeoutPolicy::Static => self.timeout_base,
            TimeoutPolicy::Adaptive => self.rtt[requester.0].timeout(self.timeout_floor),
        };
        Cycles(base.0.saturating_mul(1u64 << attempt.min(16)))
    }

    /// The current attempt-0 timeout estimate for transactions issued at
    /// `node`: the static base under [`TimeoutPolicy::Static`], the
    /// node's live round-trip estimate under [`TimeoutPolicy::Adaptive`].
    /// Zero until a fault plan is armed.
    pub fn timeout_estimate(&self, node: CmpId) -> Cycles {
        match self.cfg.recovery.timeout_policy {
            TimeoutPolicy::Static => self.timeout_base,
            TimeoutPolicy::Adaptive => self
                .rtt
                .get(node.0)
                .map_or(self.timeout_base, |e| e.timeout(self.timeout_floor)),
        }
    }

    /// The physical lower bound on any timeout estimate: unloaded
    /// circulation latency plus per-node processing. Zero until a fault
    /// plan is armed.
    pub fn timeout_floor(&self) -> Cycles {
        self.timeout_floor
    }

    /// Overrides the requester-timeout policy (fixed slack vs adaptive
    /// EWMA), for A/B studies on an otherwise identical configuration.
    /// Takes effect from the next timeout scheduling decision.
    pub fn set_timeout_policy(&mut self, policy: TimeoutPolicy) {
        self.cfg.recovery.timeout_policy = policy;
    }

    /// Enables or disables timeout/retry recovery (on by default). Only
    /// meaningful with a non-lossless fault plan; disabling it exists so
    /// the chaos harness can prove that faults without recovery really
    /// lose transactions (`--no-retry`).
    pub fn set_recovery_enabled(&mut self, on: bool) {
        self.recovery = on;
    }

    /// Ring transactions still in flight (non-zero after
    /// [`run`](Self::run) only when faults went unrecovered).
    pub fn in_flight(&self) -> usize {
        self.txns.len()
    }

    /// Events still pending in the scheduler. Zero after
    /// [`run_until`](Self::run_until) means the run is complete and
    /// [`finalize`](Self::finalize) may be called; callers slicing a run
    /// into preemptible chunks (the sweep service) use this to tell "hit
    /// the stop cycle" apart from "drained the queue". Note the queue is
    /// also empty *before* the first `run_until` call primes the cores.
    pub fn pending_events(&self) -> usize {
        self.sched.len()
    }

    /// Counters for ring faults injected so far (all zero when lossless).
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.ring.fault_stats();
        stats.torus_drops = self.torus.fault_drops();
        stats
    }

    /// Lines currently in degraded (Lazy-forwarding) mode.
    pub fn degraded_line_count(&self) -> usize {
        self.degraded_lines.len()
    }

    /// Predictions corrupted by armed
    /// [`flexsnoop_predictor::FaultInjectingPredictor`] wrappers, summed
    /// over all nodes.
    pub fn injected_prediction_faults(&self) -> u64 {
        self.predictors.injected_faults_total()
    }

    /// The coherence state of `line` in one core's L2 (for inspection and
    /// testing).
    pub fn line_state(&self, node: CmpId, core: usize, line: LineAddr) -> CoherState {
        self.cmps[node.0].l2(core).state_of(line)
    }

    /// Checks the global storage invariants of Figure 2(b) for every
    /// resident line: all pairs of copies must be compatible, which implies
    /// at most one supplier-state copy machine-wide.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, naming the line and states.
    pub fn validate_coherence(&self) -> Result<(), String> {
        invariants::check_all(&self.cmps)
    }

    /// Enables the per-retirement invariant oracle: after every transaction
    /// retires (and whenever a predictor-filtering decision skips a snoop),
    /// the affected line is re-checked against the Figure 2(b) invariants
    /// and any violation is recorded with the transaction and cycle that
    /// exposed it. Call before [`run`](Self::run). With the
    /// `strict-invariants` cargo feature the oracle is always on and panics
    /// at the first violation instead of recording it (unless the violation
    /// was provoked by an injected [`ProtocolMutation`]).
    pub fn enable_invariant_checks(&mut self) {
        self.checks = true;
    }

    /// Violations recorded by the invariant oracle, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The first violation the oracle detected, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Deliberately breaks one protocol rule (testing only), so tests can
    /// prove the oracle catches the corresponding bug class. Call before
    /// [`run`](Self::run).
    pub fn inject_mutation(&mut self, mutation: ProtocolMutation) {
        self.mutation = Some(mutation);
    }

    /// A canonical `(line, cmp, core, state)` snapshot of every resident L2
    /// line, for differential comparison between runs.
    pub fn state_snapshot(&self) -> Vec<(LineAddr, usize, usize, CoherState)> {
        invariants::state_snapshot(&self.cmps)
    }

    fn record_violation(&mut self, txn: TxnId, at: Cycle, line: LineAddr, what: String) {
        let v = Violation {
            txn,
            at,
            line,
            what,
        };
        if cfg!(feature = "strict-invariants") && self.mutation.is_none() {
            panic!("protocol invariant violated: {v}");
        }
        self.violations.push(v);
    }

    // ----- topology helpers -------------------------------------------------

    fn cmp_of(&self, core: usize) -> CmpId {
        CmpId(core / self.cfg.cores_per_cmp)
    }

    fn local_idx(&self, core: usize) -> usize {
        core % self.cfg.cores_per_cmp
    }

    // ----- driving the run --------------------------------------------------

    /// Runs the simulation to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self) -> RunStats {
        self.run_until(None);
        self.finalize()
    }

    /// Runs until the event queue drains or the next pending event is at
    /// or past `stop_at`, whichever comes first; returns the reached
    /// simulation time. The stopping point is a pure function of the
    /// event schedule — never of wall-clock or queue internals — so a
    /// [`save_snapshot`](Self::save_snapshot) taken here resumes
    /// bit-identically. Call [`finalize`](Self::finalize) after the final
    /// `run_until(None)` to close out the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the run was already finalized.
    pub fn run_until(&mut self, stop_at: Option<Cycle>) -> Cycle {
        assert!(!self.finished, "the run has already been finalized");
        if !self.started {
            self.started = true;
            // Prime every core with its first access.
            for core in 0..self.cores.len() {
                self.advance_core(core, Cycle::ZERO);
            }
            // Arm churn windows after the cores: a re-add's priming-time
            // insertion sequence precedes any event the run schedules
            // later, so deferred issues parked at `readd_at` always
            // dispatch after the node re-attached.
            for i in 0..self.churn.len() {
                let w = self.churn[i];
                self.schedule_event(
                    w.remove_at,
                    Event::ChurnDetach {
                        node: w.node,
                        warm: w.warm,
                    },
                );
                self.schedule_event(w.readd_at, Event::ChurnReadd { node: w.node });
            }
        }
        loop {
            if let Some(stop) = stop_at {
                match self.sched.peek_time() {
                    Some(t) if t < stop => {}
                    _ => break,
                }
            }
            let Some((now, ev)) = self.sched.pop() else {
                break;
            };
            self.stats.events += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                p.event_dispatched(self.sched.len());
            }
            self.dispatch(now, ev);
        }
        self.sched.now()
    }

    /// Closes out the run — checks for stranded cores, folds predictor
    /// and fault counters into the statistics — and returns them. Called
    /// automatically by [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if events are still pending or the run was already
    /// finalized.
    pub fn finalize(&mut self) -> RunStats {
        assert!(!self.finished, "the run has already been finalized");
        assert!(
            self.sched.is_empty(),
            "finalize() with events still pending; run_until(None) first"
        );
        self.finished = true;
        if self.active_cores > 0 {
            // Only a lossy ring without recovery may strand cores: a lost
            // message then hangs its transaction forever. Anywhere else
            // this is a model bug.
            assert!(
                self.unreliable && !self.recovery,
                "drained queue with cores unfinished"
            );
            self.stats.robustness.unfinished_cores = self.active_cores as u64;
        }
        self.stats.exec_cycles = self.sched.now();
        let fault_stats = self.ring.fault_stats();
        self.stats.robustness.ring_drops = fault_stats.drops;
        self.stats.robustness.ring_duplicates = fault_stats.duplicates;
        self.stats.robustness.ring_delays = fault_stats.delays;
        self.stats.robustness.partition_blocked = fault_stats.partition_blocked;
        self.stats.robustness.torus_drops = self.torus.fault_drops();
        self.stats.robustness.injected_prediction_faults = self.injected_prediction_faults();
        self.stats.robustness.bridge_drops = fault_stats.bridge_drops;
        // Fold predictor activity into the energy account.
        for node in 0..self.predictors.len() {
            let c = self.predictors.counters(node);
            self.stats
                .energy
                .add(EnergyCategory::PredictorLookup, c.lookups);
            self.stats
                .energy
                .add(EnergyCategory::PredictorTrain, c.trainings);
            if let Some(probe) = self.probe.as_deref_mut() {
                probe.predictor_trained(c.trainings);
            }
        }
        // Locality tables are predictor hardware too: charge their
        // activity to the same energy categories.
        for table in &self.locality {
            let c = table.counters();
            self.stats
                .energy
                .add(EnergyCategory::PredictorLookup, c.lookups);
            self.stats
                .energy
                .add(EnergyCategory::PredictorTrain, c.trainings);
        }
        if self.probe.is_some() {
            let fp = self.memory_footprint();
            let rss = crate::probe::peak_rss_bytes().unwrap_or(0);
            if let Some(probe) = self.probe.as_deref_mut() {
                probe.footprint(fp.bytes_per_node, fp.total_bytes, rss);
            }
        }
        self.stats.clone()
    }

    /// Schedules `ev` on the event wheel of the ring segment that will
    /// act on it (a no-op choice with a single wheel). Every event
    /// producer funnels through here so segment routing stays in one
    /// place.
    fn schedule_event(&mut self, at: Cycle, ev: Event) {
        let shard = match self.sched.segments() {
            1 => 0,
            segments => segment_of(self.event_node(&ev), self.cfg.nodes, segments),
        };
        self.sched.schedule_at(shard, at, ev);
    }

    /// The node whose ring segment owns `ev`: where the event's handler
    /// reads and writes node-local state. Requester-side events for a
    /// transaction that already retired (possible only for stale
    /// wake-ups) default to node 0; their handlers discard them.
    fn event_node(&self, ev: &Event) -> usize {
        match *ev {
            Event::CoreIssue { core, .. } => core / self.cfg.cores_per_cmp,
            Event::RingArrive { node, .. } => node.0,
            Event::SnoopDone { node, .. } | Event::WriteSnoopDone { node, .. } => node.0,
            Event::ChurnDetach { node, .. } | Event::ChurnReadd { node } => node.0,
            Event::DataArrive { txn } | Event::MemData { txn } | Event::Timeout { txn, .. } => {
                self.txns.get(txn).map_or(0, |t| t.requester.0)
            }
        }
    }

    /// Pulls the next access for `core` and schedules its issue, or marks
    /// the core done.
    fn advance_core(&mut self, core: usize, at: Cycle) {
        let c = &mut self.cores[core];
        if c.issued >= c.limit {
            if !c.done {
                c.done = true;
                self.active_cores -= 1;
            }
            return;
        }
        match c.stream.next_access() {
            Some(access) => {
                c.issued += 1;
                self.schedule_event(
                    at + access.think,
                    Event::CoreIssue {
                        core,
                        access,
                        replay: false,
                    },
                );
            }
            None => {
                c.done = true;
                self.active_cores -= 1;
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, ev: Event) {
        match ev {
            Event::CoreIssue {
                core,
                access,
                replay,
            } => self.on_core_issue(core, access, replay, now),
            Event::RingArrive { msg, node } => self.on_ring_arrive(msg, node, now),
            Event::SnoopDone { txn, node, attempt } => self.on_snoop_done(txn, node, attempt, now),
            Event::WriteSnoopDone { txn, node, attempt } => {
                self.on_write_snoop_done(txn, node, attempt, now)
            }
            Event::DataArrive { txn } => self.on_data_arrive(txn, now),
            Event::MemData { txn } => self.on_mem_data(txn, now),
            Event::Timeout { txn, attempt } => self.on_timeout(txn, attempt, now),
            Event::ChurnDetach { node, warm } => self.on_churn_detach(node, warm, now),
            Event::ChurnReadd { node } => self.on_churn_readd(node),
        }
    }

    // ----- core-side handling ----------------------------------------------

    fn on_core_issue(&mut self, core: usize, access: MemAccess, replay: bool, now: Cycle) {
        let node = self.cmp_of(core);
        if self.detached[node.0] {
            // The node is churned out and its cores are quiesced: park
            // the access (verbatim) at the re-add cycle. The matching
            // ChurnReadd event carries an earlier insertion sequence, so
            // the deferred issue dispatches on an attached node.
            let readd = self
                .churn
                .iter()
                .filter(|w| w.node == node && w.readd_at >= now)
                .map(|w| w.readd_at)
                .min()
                .expect("detached node has no pending re-add");
            self.schedule_event(
                readd,
                Event::CoreIssue {
                    core,
                    access,
                    replay,
                },
            );
            return;
        }
        if access.write {
            self.handle_write(core, access, replay, now);
        } else {
            self.handle_read(core, access, replay, now);
        }
    }

    /// Hot-removes a CMP (see [`ChurnWindow`]). Cold: flush — write back
    /// every dirty line to its home over the torus, invalidate every
    /// copy. Warm: demote — supplier-state copies step down to `Sl`
    /// (writing back if dirty) so the machine never depends on the
    /// detached node for data, while clean sharers stay resident.
    /// Either way the predictor bank and presence filters are kept in
    /// sync through the usual mutation helpers, so other nodes stop
    /// predicting this node as a supplier immediately.
    fn on_churn_detach(&mut self, node: CmpId, warm: bool, now: Cycle) {
        self.detached[node.0] = true;
        self.stats.robustness.churn_detaches += 1;
        for line in self.cmps[node.0].resident_lines() {
            let supplier = self.cmps[node.0].supplier_of(line);
            if let Some((_, st)) = supplier {
                if st.is_dirty() {
                    // Churn write-backs are program traffic, like capacity
                    // evictions — not charged to the snoop-energy account.
                    self.stats.eviction_writebacks += 1;
                    let home = CmpId(line.home_node(self.cfg.nodes));
                    let _ = self.torus.send(node, home, now);
                }
            }
            if warm {
                if let Some((core, st)) = supplier {
                    let (new, _) = st.after_downgrade();
                    self.transition(node, core, line, new);
                }
            } else {
                self.invalidate_cmp(node, line);
            }
        }
    }

    /// Re-attaches a churned-out CMP; the deferred core issues parked at
    /// this cycle dispatch right after (they were scheduled later, so
    /// they pop later).
    fn on_churn_readd(&mut self, node: CmpId) {
        self.detached[node.0] = false;
        self.stats.robustness.churn_readds += 1;
    }

    /// Returns a load-queue slot after a read completes (or a replayed
    /// read turns out to hit locally), unstalling the core if it was
    /// waiting for one.
    fn release_read_slot(&mut self, core: usize, at: Cycle) {
        let c = &mut self.cores[core];
        c.outstanding_reads = c.outstanding_reads.saturating_sub(1);
        if c.stalled {
            c.stalled = false;
            self.advance_core(core, at);
        }
    }

    fn handle_read(&mut self, core: usize, access: MemAccess, replay: bool, now: Cycle) {
        use flexsnoop_mem::cmp::LocalLookup;
        let node = self.cmp_of(core);
        let local = self.local_idx(core);
        let line = access.line;
        // A replayed read already holds a load-queue slot; if it now hits
        // locally it completes here, so the slot is released (which also
        // resumes the core). Fresh hits just advance the core.
        let finish = |sim: &mut Self, at: Cycle| {
            if replay {
                sim.release_read_slot(core, at);
            } else {
                sim.advance_core(core, at);
            }
        };
        match self.cmps[node.0].local_lookup(local, line) {
            LocalLookup::OwnL1(_) => {
                self.stats.l1_hits += 1;
                finish(self, now + self.cfg.timing.l1_rt);
            }
            LocalLookup::OwnL2(_) => {
                self.stats.l2_hits += 1;
                finish(self, now + self.cfg.timing.l2_rt);
            }
            LocalLookup::Peer { peer, state } => {
                self.stats.local_peer_hits += 1;
                // Peer supplies within the CMP over the shared intra-CMP
                // bus, which ring snoops also arbitrate for.
                let grant = self.snoop_ports[node.0].acquire(now, self.cfg.timing.snoop_occupancy);
                self.transition(node, peer, line, state.after_local_supply());
                self.fill_line(node, local, line, CoherState::S);
                finish(self, grant.start + self.cfg.timing.cmp_bus_rt);
            }
            LocalLookup::Miss => {
                self.start_txn(core, access, TxnOp::Read, WriteData::Remote, replay, now)
            }
        }
    }

    fn handle_write(&mut self, core: usize, access: MemAccess, replay: bool, now: Cycle) {
        use flexsnoop_mem::cmp::LocalLookup;
        let node = self.cmp_of(core);
        let local = self.local_idx(core);
        let line = access.line;
        match self.cmps[node.0].local_lookup(local, line) {
            LocalLookup::OwnL1(st) | LocalLookup::OwnL2(st) if st.writable_silently() => {
                self.stats.silent_write_hits += 1;
                if st != CoherState::D {
                    self.transition(node, local, line, CoherState::D);
                }
                if !replay {
                    let rt = if matches!(
                        self.cmps[node.0].local_lookup(local, line),
                        LocalLookup::OwnL1(_)
                    ) {
                        self.cfg.timing.l1_rt
                    } else {
                        self.cfg.timing.l2_rt
                    };
                    self.advance_core(core, now + rt);
                }
            }
            LocalLookup::OwnL1(_) | LocalLookup::OwnL2(_) | LocalLookup::Peer { .. } => {
                // Upgrade (own shared copy) or local data available (peer):
                // the ring transaction only needs to invalidate remote copies.
                self.start_txn(core, access, TxnOp::Write, WriteData::Local, replay, now);
            }
            LocalLookup::Miss => {
                self.start_txn(core, access, TxnOp::Write, WriteData::Remote, replay, now)
            }
        }
    }

    /// Starts a ring transaction, or queues the access if the line already
    /// has one in flight (collision serialization).
    fn start_txn(
        &mut self,
        core: usize,
        access: MemAccess,
        op: TxnOp,
        write_data: WriteData,
        replay: bool,
        now: Cycle,
    ) {
        let line = access.line;
        let blocking = op == TxnOp::Read;
        if !blocking && !replay {
            // Stores retire into a store buffer; the core moves on while the
            // invalidation circulates (per-line ordering is still enforced
            // by the line-busy serialization below).
            self.advance_core(core, now + self.cfg.timing.l2_rt);
        }
        if blocking && !replay {
            // Reads occupy a load-queue slot; the core keeps issuing until
            // the outstanding-read limit is reached (MLP model).
            let limit = self.cfg.policy.max_outstanding_reads;
            let c = &mut self.cores[core];
            c.outstanding_reads += 1;
            if c.outstanding_reads < limit {
                self.advance_core(core, now + self.cfg.timing.l2_rt);
            } else {
                self.cores[core].stalled = true;
            }
        }
        let (readers, writers) = self.line_busy.get(&line).copied().unwrap_or((0, 0));
        let conflict = match op {
            TxnOp::Read => writers > 0,
            TxnOp::Write => readers > 0 || writers > 0,
        };
        if conflict {
            self.stats.collisions += 1;
            self.line_waiters
                .entry(line)
                .or_default()
                .push_back((core, access));
            return;
        }
        let requester = self.cmp_of(core);
        match op {
            TxnOp::Read => self.stats.read_txns += 1,
            TxnOp::Write => self.stats.write_txns += 1,
        }
        let slot = self.line_busy.entry(line).or_insert((0, 0));
        match op {
            TxnOp::Read => slot.0 += 1,
            TxnOp::Write => slot.1 += 1,
        }
        // Hierarchical reads consult the requester group's locality
        // table: a local prediction lets the snoop circulate inside the
        // group only (escalating on a miss); writes always invalidate
        // machine-wide. Flat topologies have no table and stay Global.
        let scope = if op == TxnOp::Read && !self.locality.is_empty() {
            let group = self.ring.group_of(requester);
            let local = self.locality[group].predict_local(line);
            if let Some(p) = self.probe.as_deref_mut() {
                p.locality_lookup(local);
            }
            if local {
                SnoopScope::Local
            } else {
                SnoopScope::Global
            }
        } else {
            SnoopScope::Global
        };
        let leave = now + self.cfg.timing.gateway_latency;
        let id = self.txns.insert(Txn {
            line,
            op,
            requester,
            core,
            issue: now,
            engaged: Vec::new(),
            data_arrived: None,
            reply_info: None,
            prefetch_ready: None,
            write_data,
            data_sent: false,
            resumed: false,
            data_pending: 0,
            blocking,
            fill_state: CoherState::Sg,
            attempt: 0,
            attempt_start: leave,
            emit_seq: 0,
            seen_seqs: Vec::new(),
            scope,
            retried: false,
        });
        self.timeline
            .record(id, now, TxnEvent::Issued { node: requester });
        let msg = RingMsg {
            txn: id,
            line,
            op,
            requester,
            kind: MsgKind::Combined(ReplyInfo::start()),
            attempt: 0,
            seq: 0,
            scope,
            via_global: false,
        };
        self.send_ring(msg, requester, leave, op);
        if self.unreliable && self.recovery {
            self.schedule_event(
                leave + self.timeout_window(requester, 0),
                Event::Timeout {
                    txn: id,
                    attempt: 0,
                },
            );
        }
    }

    // ----- ring transport ----------------------------------------------------

    /// Sends `msg` over the ring link leaving `from` at `leave`, charging
    /// energy and counting the hop.
    ///
    /// On a hierarchical topology a global-scope message leaving a bridge
    /// it reached over the *local* ring departs on the **global** link to
    /// the next group's bridge (`via_global` is set for the arrival
    /// handler); everything else — local-scope circulations, non-bridge
    /// nodes, and the switch hop a bridge makes after a global arrival —
    /// stays on the local ring. Flat topologies have no bridges, so the
    /// routing collapses to the plain successor hop.
    fn send_ring(&mut self, mut msg: RingMsg, from: CmpId, leave: Cycle, op: TxnOp) {
        if self.unreliable {
            // Stamp the current attempt and a fresh emission sequence
            // number so arrivals can discard duplicates and superseded
            // circulations.
            if let Some(t) = self.txns.get_mut(msg.txn) {
                msg.attempt = t.attempt;
                msg.seq = t.emit_seq;
                t.emit_seq += 1;
                if t.retried {
                    // Every hop of a timeout-retried transaction is
                    // recovery overhead (the report's fault-aware energy
                    // split charges these separately).
                    self.stats.retry_ring_hops += 1;
                }
            }
        }
        self.timeline.record(
            msg.txn,
            leave,
            TxnEvent::Forwarded {
                node: from,
                kind: kind_label(&msg.kind),
            },
        );
        let go_global =
            msg.scope == SnoopScope::Global && !msg.via_global && self.ring.is_bridge(from);
        let ring_id = self.ring.ring_for(msg.line);
        let out = if go_global {
            msg.via_global = true;
            self.stats.bridge_hops += 1;
            self.ring.send_global_hop_outcome(ring_id, from, leave)
        } else {
            msg.via_global = false;
            self.ring.send_hop_outcome(ring_id, from, leave)
        };
        // The flit crossed (or occupied) the link either way: hops and
        // link energy are charged even when the fault plan eats it.
        match op {
            TxnOp::Read => self.stats.read_ring_hops += 1,
            TxnOp::Write => self.stats.write_ring_hops += 1,
        }
        self.stats.energy.add(EnergyCategory::RingLink, 1);
        if let Some(fault) = out.fault {
            if let Some(p) = self.probe.as_deref_mut() {
                p.ring_fault(fault);
            }
        }
        let node = if go_global {
            self.ring.global_next(from)
        } else {
            self.ring.next_node(from)
        };
        if go_global {
            if let (Some(p), Some(arrival)) = (self.probe.as_deref_mut(), out.arrival) {
                p.bridge_hop(arrival - leave);
            }
        }
        match out.arrival {
            Some(arrival) => {
                if let Some(p) = self.probe.as_deref_mut() {
                    p.ring_hop(arrival - leave);
                }
                self.schedule_event(arrival, Event::RingArrive { msg, node });
            }
            None => {
                self.timeline
                    .record(msg.txn, leave, TxnEvent::Dropped { node: from });
            }
        }
        if let Some(dup_at) = out.duplicate {
            match op {
                TxnOp::Read => self.stats.read_ring_hops += 1,
                TxnOp::Write => self.stats.write_ring_hops += 1,
            }
            self.stats.energy.add(EnergyCategory::RingLink, 1);
            if let Some(p) = self.probe.as_deref_mut() {
                p.ring_hop(dup_at - leave);
            }
            self.schedule_event(dup_at, Event::RingArrive { msg, node });
        }
    }

    /// Gatekeeper for deliveries on an unreliable ring: discards messages
    /// for retired transactions, messages from superseded attempts, and
    /// injected duplicates (an `(attempt, seq)` pair seen before).
    ///
    /// `node` is where the delivery landed: a stale *reply* reaching the
    /// requester means the superseded circulation actually completed, so
    /// the retry that superseded it was spurious — the hindsight signal
    /// the adaptive timeout policy is built to minimize.
    fn accept_delivery(&mut self, msg: &RingMsg, node: CmpId) -> bool {
        let spurious = match self.txns.get_mut(msg.txn) {
            None => false,
            Some(txn) if msg.attempt != txn.attempt => {
                msg.attempt < txn.attempt
                    && node == msg.requester
                    && matches!(msg.kind, MsgKind::Reply(_) | MsgKind::Combined(_))
            }
            Some(txn) => {
                if txn.seen(msg.seq) {
                    self.stats.robustness.duplicates_suppressed += 1;
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.delivery_suppressed(false);
                    }
                    return false;
                }
                txn.mark_seen(msg.seq);
                return true;
            }
        };
        self.stats.robustness.stale_deliveries += 1;
        if let Some(p) = self.probe.as_deref_mut() {
            p.delivery_suppressed(true);
        }
        if spurious {
            self.stats.robustness.spurious_retries += 1;
            // The scheduler clock is the dispatch time of the arrival
            // being judged (`accept_delivery` is always called from an
            // event handler).
            self.stats.robustness.last_spurious_retry_cycle = self.sched.now().as_u64();
            if let Some(p) = self.probe.as_deref_mut() {
                p.spurious_retry();
            }
        }
        false
    }

    /// Observability for one torus data message the fault plan ate (the
    /// authoritative count is folded from the torus itself at run end).
    fn note_torus_drop(&mut self) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.torus_fault();
        }
    }

    /// Bookkeeping for a `MemData` / `DataArrive` event just scheduled for
    /// `txn_id`; see [`Txn::data_pending`].
    fn note_data_scheduled(&mut self, txn_id: TxnId) {
        if let Some(txn) = self.txns.get_mut(txn_id) {
            txn.data_pending += 1;
        }
    }

    /// Counterpart of [`Simulator::note_data_scheduled`], at event firing.
    fn note_data_fired(&mut self, txn_id: TxnId) {
        if let Some(txn) = self.txns.get_mut(txn_id) {
            txn.data_pending = txn.data_pending.saturating_sub(1);
        }
    }

    /// The recovery timer for one circulation attempt fired. If the
    /// transaction already resolved or a newer attempt owns it, this is
    /// a no-op; otherwise the attempt is abandoned and the request is
    /// re-issued after an exponential backoff. Past the retry cap the
    /// line additionally enters degraded (Lazy-forwarding) mode,
    /// removing the predictor-filtering hazard from the retried
    /// circulations (§4.3.4's safe fallback).
    ///
    /// On a ring-only fault plan a returned reply stands the timer down:
    /// the data phase rides the lossless torus and always finishes. With
    /// torus faults armed the awaited data itself may have been dropped,
    /// so the timer only stands down while a data event is actually
    /// scheduled (`data_pending > 0` — such an event always retires the
    /// transaction when it fires); otherwise the whole transaction — ring
    /// phase and data phase — is retried from scratch. `resumed` and
    /// `data_arrived` are deliberately not consulted: both can be stale
    /// leftovers of a superseded attempt and would stand the timer down
    /// with nothing left in flight to finish the transaction.
    fn on_timeout(&mut self, txn_id: TxnId, attempt: u32, now: Cycle) {
        let Some(txn) = self.txns.get(txn_id) else {
            return; // retired: the attempt completed before the timer fired
        };
        if txn.attempt != attempt {
            return;
        }
        let had_reply = txn.reply_info.is_some();
        if had_reply && (!self.torus_faulty || txn.data_pending > 0) {
            return;
        }
        let line = txn.line;
        let op = txn.op;
        let requester = txn.requester;
        self.stats.robustness.timeouts += 1;
        self.stats.robustness.last_timeout_cycle = now.as_u64();
        if let Some(p) = self.probe.as_deref_mut() {
            p.timeout_fired(attempt);
        }
        self.timeline
            .record(txn_id, now, TxnEvent::TimedOut { attempt });
        if attempt >= self.cfg.recovery.retry_cap && !self.degraded_lines.contains_key(&line) {
            self.degraded_lines.insert(line, 0);
            self.stats.robustness.degraded_entries += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                p.degraded_mode_entered();
            }
        } else if let Some(clean) = self.degraded_lines.get_mut(&line) {
            // A fault burst interrupts probation: clean-circulation
            // progress restarts from zero.
            if *clean > 0 {
                *clean = 0;
                self.stats.robustness.probation_resets += 1;
                if let Some(p) = self.probe.as_deref_mut() {
                    p.probation_reset();
                }
            }
        }
        let new_attempt = attempt + 1;
        let backoff = {
            let base = self.cfg.recovery.backoff_base.0;
            let shift = (new_attempt - 1).min(16);
            Cycles(
                base.saturating_mul(1u64 << shift)
                    .min(self.cfg.recovery.backoff_cap.0),
            )
        };
        let leave = now + backoff + self.cfg.timing.gateway_latency;
        let txn = self.txns.get_mut(txn_id).expect("txn checked above");
        txn.attempt = new_attempt;
        txn.attempt_start = leave;
        txn.emit_seq = 0;
        txn.seen_seqs.clear();
        // Retries always circulate globally: recovery must reach every
        // potential supplier, and their ring hops are charged to the
        // recovery-overhead energy bucket.
        txn.scope = SnoopScope::Global;
        txn.retried = true;
        if had_reply {
            // Data-phase retry: the ring answered but the torus lost the
            // data. Re-run the whole transaction; any straggler data from
            // the old attempt is real (memory or a supplier sent it) and
            // a double fill is benign.
            txn.reply_info = None;
            txn.data_sent = false;
        }
        // The new circulation restarts Table 2's per-node bookkeeping;
        // deliveries and snoop completions of the old one are discarded by
        // their stale attempt tag.
        for node in txn.engaged.drain(..) {
            self.gateway.remove(&(txn_id, node));
        }
        self.stats.robustness.retries += 1;
        if let Some(p) = self.probe.as_deref_mut() {
            p.retry_issued(new_attempt);
        }
        self.timeline.record(
            txn_id,
            now,
            TxnEvent::Retried {
                attempt: new_attempt,
            },
        );
        let msg = RingMsg {
            txn: txn_id,
            line,
            op,
            requester,
            kind: MsgKind::Combined(ReplyInfo::start()),
            attempt: new_attempt,
            seq: 0,
            scope: SnoopScope::Global,
            via_global: false,
        };
        self.send_ring(msg, requester, leave, op);
        self.schedule_event(
            leave + self.timeout_window(requester, new_attempt),
            Event::Timeout {
                txn: txn_id,
                attempt: new_attempt,
            },
        );
    }

    /// A local-scope circulation returned to the requester without
    /// finding a supplier. The locality prediction was wrong (or the
    /// line lives in memory): abandon the local attempt and re-issue a
    /// full global circulation so every potential supplier is still
    /// visited — the paper's correctness guarantee. This is not a fault
    /// retry: `retried` stays false and no robustness counters move,
    /// but the attempt number bumps so any stale per-attempt events of
    /// the local lap are discarded on unreliable rings.
    fn escalate(&mut self, txn_id: TxnId, now: Cycle) {
        let txn = self.txns.get(txn_id).expect("escalating a live txn");
        let line = txn.line;
        let requester = txn.requester;
        let op = txn.op;
        self.stats.escalations += 1;
        if let Some(p) = self.probe.as_deref_mut() {
            p.escalation();
        }
        let group = self.ring.group_of(requester);
        self.locality[group].train(line, false);
        self.timeline.record(txn_id, now, TxnEvent::Escalated);
        let leave = now + self.cfg.timing.gateway_latency;
        let txn = self.txns.get_mut(txn_id).expect("txn checked above");
        txn.scope = SnoopScope::Global;
        txn.attempt += 1;
        txn.attempt_start = leave;
        txn.emit_seq = 0;
        txn.seen_seqs.clear();
        txn.reply_info = None;
        let attempt = txn.attempt;
        for node in txn.engaged.drain(..) {
            self.gateway.remove(&(txn_id, node));
        }
        let msg = RingMsg {
            txn: txn_id,
            line,
            op,
            requester,
            kind: MsgKind::Combined(ReplyInfo::start()),
            attempt,
            seq: 0,
            scope: SnoopScope::Global,
            via_global: false,
        };
        self.send_ring(msg, requester, leave, op);
        if self.unreliable && self.recovery {
            self.schedule_event(
                leave + self.timeout_window(requester, attempt),
                Event::Timeout {
                    txn: txn_id,
                    attempt,
                },
            );
        }
    }

    fn on_ring_arrive(&mut self, msg: RingMsg, node: CmpId, now: Cycle) {
        if self.unreliable && !self.accept_delivery(&msg, node) {
            return;
        }
        self.timeline.record(
            msg.txn,
            now,
            TxnEvent::Arrived {
                node,
                kind: kind_label(&msg.kind),
            },
        );
        if msg.via_global {
            // Global-ring arrival (hierarchical topologies only): the
            // receiving gateway acts as a pure switch and puts the
            // message onto its local ring without snooping — the node is
            // snooped when the local walk reaches it over a local link.
            // This holds even at the requester (a bridge requester's
            // tour passes its own gateway over the global ring before
            // the closing local walk): termination is always a
            // local-link arrival at the requester.
            self.send_ring(msg, node, now + self.cfg.timing.gateway_latency, msg.op);
            return;
        }
        if node == msg.requester {
            self.on_ring_return(msg, now);
            return;
        }
        // Home-node prefetch: the gateway sees every passing read message.
        if self.cfg.memory.home_prefetch && msg.op == TxnOp::Read {
            let home = CmpId(msg.line.home_node(self.cfg.nodes));
            if node == home {
                if let Some(txn) = self.txns.get(msg.txn) {
                    if txn.prefetch_ready.is_none() {
                        let grant = self.mem_ports[home.0].acquire(now, self.cfg.memory.occupancy);
                        let ready = grant.start
                            + self.cfg.memory.dram_latency
                            + self.cfg.memory.controller_overhead;
                        if let Some(txn) = self.txns.get_mut(msg.txn) {
                            txn.prefetch_ready = Some(ready);
                        }
                        self.timeline.record(
                            msg.txn,
                            now,
                            TxnEvent::MemoryStarted {
                                home,
                                prefetch: true,
                            },
                        );
                    }
                }
            }
        }
        match msg.op {
            TxnOp::Read => self.on_read_arrive(msg, node, now),
            TxnOp::Write => self.on_write_arrive(msg, node, now),
        }
    }

    // ----- read transactions at intermediate nodes ---------------------------

    fn on_read_arrive(&mut self, msg: RingMsg, node: CmpId, now: Cycle) {
        match msg.kind {
            MsgKind::Reply(info) => self.on_trailing_reply(msg, node, info, now),
            MsgKind::Combined(info) if info.found => {
                // A positive combined R/R is a reply in transit: forward
                // without snooping (paper §2.2).
                self.set_node_state(msg.txn, node, NodeState::Finished);
                self.send_ring(
                    msg,
                    node,
                    now + self.cfg.timing.gateway_latency,
                    TxnOp::Read,
                );
            }
            MsgKind::Request | MsgKind::Combined(_) => {
                self.on_open_request(msg, node, now);
            }
        }
    }

    /// An open (outcome-unknown) read request-carrier arrives: consult the
    /// predictor, pick the primitive, and execute it.
    fn on_open_request(&mut self, msg: RingMsg, node: CmpId, now: Cycle) {
        let line = msg.line;
        let acc = match msg.kind {
            MsgKind::Combined(info) => Some(info),
            _ => None,
        };
        let mut proc = self.cfg.timing.gateway_latency;
        let action = if self.unreliable && self.degraded_lines.contains_key(&line) {
            // Degraded mode (retry cap exhausted once for this line):
            // always snoop-then-forward, Lazy's always-correct primitive,
            // so no prediction can filter past a supplier while the ring
            // is actively losing messages. Probation (see
            // [`Self::try_retire`]) lifts this once the line strings
            // together enough clean circulations.
            SnoopAction::SnoopThenForward
        } else if self.alg.uses_predictor() {
            proc += self.cfg.timing.predictor_latency;
            let predicted = self.predictors.predict(node.0, line);
            let actual = self.cmps[node.0].supplier_of(line).is_some();
            self.stats.accuracy.record(predicted, actual);
            if let Some(p) = self.probe.as_deref_mut() {
                p.predictor_lookup(predicted);
            }
            self.timeline.record(
                msg.txn,
                now,
                TxnEvent::Predicted {
                    node,
                    positive: predicted,
                },
            );
            let over_budget = self.energy_over_budget(now);
            let action = self.alg.action(predicted, over_budget);
            // Oracle hook: filtering (plain Forward) past a node that holds
            // the supplier is the §4.3.4 hazard — legal only for predictors
            // with no false negatives (Superset family, Exact, Oracle), so
            // an occurrence is a protocol violation, not a mere miss.
            if self.checks && actual && action == SnoopAction::Forward {
                self.record_violation(
                    msg.txn,
                    now,
                    line,
                    format!(
                        "{}: snoop filtered at cmp{} despite a resident supplier \
                         (predictor false negative)",
                        self.alg, node.0
                    ),
                );
            }
            action
        } else {
            self.alg.action(false, false)
        };
        if let Some(p) = self.probe.as_deref_mut() {
            p.snoop_action(action);
        }
        match action {
            SnoopAction::Forward => {
                match acc {
                    Some(mut info) => {
                        info.mark_filtered();
                        self.set_node_state(msg.txn, node, NodeState::Finished);
                        let out = RingMsg {
                            kind: MsgKind::Combined(info),
                            ..msg
                        };
                        self.send_ring(out, node, now + proc, TxnOp::Read);
                    }
                    None => {
                        // Split request: pass it on; the trailing reply will
                        // be marked as filtered when it comes through.
                        self.set_node_state(msg.txn, node, NodeState::PassThrough);
                        let out = RingMsg {
                            kind: MsgKind::Request,
                            ..msg
                        };
                        self.send_ring(out, node, now + proc, TxnOp::Read);
                    }
                }
            }
            SnoopAction::ForwardThenSnoop => {
                let out = RingMsg {
                    kind: MsgKind::Request,
                    ..msg
                };
                self.send_ring(out, node, now + proc, TxnOp::Read);
                self.begin_snoop(msg.txn, node, now + proc, false, acc, msg.attempt);
            }
            SnoopAction::SnoopThenForward => {
                self.begin_snoop(msg.txn, node, now + proc, true, acc, msg.attempt);
            }
        }
    }

    fn begin_snoop(
        &mut self,
        txn: TxnId,
        node: CmpId,
        start: Cycle,
        combine_out: bool,
        acc: Option<ReplyInfo>,
        attempt: u32,
    ) {
        self.set_node_state(
            txn,
            node,
            NodeState::Snooping {
                acc,
                combine_out,
                buffered: None,
            },
        );
        self.timeline
            .record(txn, start, TxnEvent::SnoopStarted { node });
        let grant = self.snoop_ports[node.0].acquire(start, self.cfg.timing.snoop_occupancy);
        self.schedule_event(
            grant.start + self.cfg.timing.snoop_time,
            Event::SnoopDone { txn, node, attempt },
        );
    }

    fn on_snoop_done(&mut self, txn_id: TxnId, node: CmpId, attempt: u32, now: Cycle) {
        self.stats.read_snoops += 1;
        self.stats.energy.add(EnergyCategory::Snoop, 1);
        let Some(txn) = self.txns.get(txn_id) else {
            return; // transaction already retired (stale snoop)
        };
        if self.unreliable && attempt != txn.attempt {
            // The snoop belongs to a superseded circulation: the tag check
            // keeps it from feeding the predictor, supplying data, or
            // emitting messages. The work (and its energy) still happened.
            return;
        }
        let line = txn.line;
        let requester = txn.requester;
        let state = self.gateway.get(&(txn_id, node.0 as u32)).copied();
        let result = self.cmps[node.0].snoop(line);
        if self.alg.uses_predictor() {
            self.predictors
                .feedback(node.0, line, result.supplier.is_some());
        }
        let Some(NodeState::Snooping {
            acc,
            combine_out,
            buffered,
        }) = state
        else {
            // No gateway entry: a positive trailing reply was already
            // forwarded mid-snoop and finished this node; nothing remains
            // to do (the snoop energy is already counted). An injected
            // mutation legitimately leaves stray suppliers around, so the
            // protocol-cleanliness assert stands down then — the
            // invariant oracle is what reports the breakage.
            debug_assert_eq!(state, None);
            debug_assert!(self.mutation.is_some() || result.supplier.is_none());
            return;
        };
        self.timeline.record(
            txn_id,
            now,
            TxnEvent::SnoopFinished {
                node,
                supplier: result.supplier.is_some(),
            },
        );
        if let Some((supplier_core, st)) = result.supplier {
            // Supply the line: data via the torus, positive outcome on the
            // ring.
            if self.mutation != Some(ProtocolMutation::SkipSupplierDowngrade) {
                self.transition(node, supplier_core, line, st.after_remote_supply());
            }
            if !self.locality.is_empty() {
                // Ground truth for the requester group's locality table:
                // the supplier was (not) inside the requester's ring.
                let group = self.ring.group_of(requester);
                let was_local = self.ring.group_of(node) == group;
                self.locality[group].train(line, was_local);
            }
            self.stats.reads_cache_supplied += 1;
            self.timeline
                .record(txn_id, now, TxnEvent::DataSent { node });
            // Faultable: a read supply leaves the supplier's copy intact
            // (it only moved to a shared supplier state), so a retried
            // circulation finds it again and re-requests the data.
            match self.torus.send_outcome(node, requester, now) {
                Some(data_at) => {
                    self.schedule_event(data_at, Event::DataArrive { txn: txn_id });
                    self.note_data_scheduled(txn_id);
                }
                None => self.note_torus_drop(),
            }
            let mut info = acc.unwrap_or_else(ReplyInfo::start);
            info.merge_snoop(true, true);
            self.finish_node(txn_id, node, info, combine_out, now);
        } else {
            let any_copy = result.any_copy;
            match acc {
                Some(mut info) => {
                    info.merge_snoop(false, any_copy);
                    self.finish_node(txn_id, node, info, combine_out, now);
                }
                None => match buffered {
                    Some(mut info) => {
                        info.merge_snoop(false, any_copy);
                        self.finish_node(txn_id, node, info, combine_out, now);
                    }
                    None => {
                        self.set_node_state(
                            txn_id,
                            node,
                            NodeState::AwaitReply {
                                combine_out,
                                any_copy,
                            },
                        );
                    }
                },
            }
        }
    }

    /// Emits this node's outgoing message for a read transaction and marks
    /// the node finished.
    fn finish_node(
        &mut self,
        txn_id: TxnId,
        node: CmpId,
        info: ReplyInfo,
        combine_out: bool,
        now: Cycle,
    ) {
        self.set_node_state(txn_id, node, NodeState::Finished);
        let Some(txn) = self.txns.get(txn_id) else {
            return;
        };
        let kind = if combine_out {
            MsgKind::Combined(info)
        } else {
            MsgKind::Reply(info)
        };
        let msg = RingMsg {
            txn: txn_id,
            line: txn.line,
            op: txn.op,
            requester: txn.requester,
            kind,
            attempt: 0, // restamped by send_ring on an unreliable ring
            seq: 0,
            scope: txn.scope,
            via_global: false,
        };
        self.send_ring(
            msg,
            node,
            now + self.cfg.timing.gateway_latency,
            TxnOp::Read,
        );
    }

    /// A trailing reply arrives at an intermediate node.
    fn on_trailing_reply(&mut self, msg: RingMsg, node: CmpId, info: ReplyInfo, now: Cycle) {
        if self.txns.get(msg.txn).is_none() {
            return;
        }
        let state = self.gateway.get(&(msg.txn, node.0 as u32)).copied();
        match state {
            Some(NodeState::PassThrough) => {
                let mut info = info;
                info.mark_filtered();
                let out = RingMsg {
                    kind: MsgKind::Reply(info),
                    ..msg
                };
                self.send_ring(
                    out,
                    node,
                    now + self.cfg.timing.gateway_latency,
                    TxnOp::Read,
                );
            }
            Some(NodeState::Snooping {
                acc, combine_out, ..
            }) => {
                debug_assert!(acc.is_none(), "combined arrival cannot trail a reply");
                if info.found {
                    // A supplier upstream: our pending snoop cannot also be
                    // the supplier, so forward the good news immediately.
                    self.finish_node(msg.txn, node, info, combine_out, now);
                } else {
                    self.set_node_state(
                        msg.txn,
                        node,
                        NodeState::Snooping {
                            acc,
                            combine_out,
                            buffered: Some(info),
                        },
                    );
                }
            }
            Some(NodeState::AwaitReply {
                combine_out,
                any_copy,
            }) => {
                let mut info = info;
                info.merge_snoop(false, any_copy);
                self.finish_node(msg.txn, node, info, combine_out, now);
            }
            Some(NodeState::Finished) => unreachable!("Finished is never stored"),
            None => {
                // No gateway entry. Either this node already finished —
                // e.g. a Forward-Then-Snoop node whose snoop found the
                // supplier emits its positive reply immediately, so the
                // upstream trailing reply reaches it after the fact and
                // is stale information (Table 2: "Discard snoop reply") —
                // or, on an unreliable ring only, the leading request was
                // dropped mid-circulation and this orphaned reply reached
                // a node that never saw it; downstream nodes are useless
                // to it either way and the requester's timeout recovers
                // the transaction. Both cases: discard.
            }
        }
    }

    // ----- write transactions at intermediate nodes ---------------------------

    fn on_write_arrive(&mut self, msg: RingMsg, node: CmpId, now: Cycle) {
        match msg.kind {
            MsgKind::Reply(info) => self.on_write_trailing_reply(msg, node, info, now),
            MsgKind::Request | MsgKind::Combined(_) => {
                let acc = msg.kind.info();
                let mut proc = self.cfg.timing.gateway_latency;
                // §5.3 extension: with a presence filter, a node that
                // provably holds no copy forwards the invalidation without
                // snooping (it cannot hold data to invalidate or supply).
                if self.cfg.policy.write_filtering {
                    proc += self.cfg.timing.predictor_latency;
                    self.stats.energy.add(EnergyCategory::PredictorLookup, 1);
                    let absent = !self.presence[node.0].may_contain(msg.line);
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.write_filter(absent);
                    }
                    if absent {
                        debug_assert!(!self.cmps[node.0].has_copy(msg.line));
                        self.write_snoops_filtered += 1;
                        match acc {
                            Some(info) => {
                                let out = RingMsg {
                                    kind: MsgKind::Combined(info),
                                    ..msg
                                };
                                self.set_node_state(msg.txn, node, NodeState::Finished);
                                self.send_ring(out, node, now + proc, TxnOp::Write);
                            }
                            None => {
                                self.set_node_state(msg.txn, node, NodeState::PassThrough);
                                let out = RingMsg {
                                    kind: MsgKind::Request,
                                    ..msg
                                };
                                self.send_ring(out, node, now + proc, TxnOp::Write);
                            }
                        }
                        return;
                    }
                }
                // Writes otherwise snoop (invalidate) at every node; the
                // only choice is whether the message is decoupled (§5.3).
                if self.alg.decouples_writes() {
                    let out = RingMsg {
                        kind: MsgKind::Request,
                        ..msg
                    };
                    self.send_ring(out, node, now + proc, TxnOp::Write);
                    self.begin_write_snoop(msg.txn, node, now + proc, false, acc, msg.attempt);
                } else {
                    self.begin_write_snoop(msg.txn, node, now + proc, true, acc, msg.attempt);
                }
            }
        }
    }

    fn begin_write_snoop(
        &mut self,
        txn: TxnId,
        node: CmpId,
        start: Cycle,
        combine_out: bool,
        acc: Option<ReplyInfo>,
        attempt: u32,
    ) {
        self.set_node_state(
            txn,
            node,
            NodeState::Snooping {
                acc,
                combine_out,
                buffered: None,
            },
        );
        self.timeline
            .record(txn, start, TxnEvent::SnoopStarted { node });
        let grant = self.snoop_ports[node.0].acquire(start, self.cfg.timing.snoop_occupancy);
        self.schedule_event(
            grant.start + self.cfg.timing.snoop_time,
            Event::WriteSnoopDone { txn, node, attempt },
        );
    }

    fn on_write_snoop_done(&mut self, txn_id: TxnId, node: CmpId, attempt: u32, now: Cycle) {
        self.stats.write_snoops += 1;
        self.stats.energy.add(EnergyCategory::Snoop, 1);
        let Some(txn) = self.txns.get(txn_id) else {
            return;
        };
        if self.unreliable && attempt != txn.attempt {
            return; // superseded circulation: count the work, change nothing
        }
        let line = txn.line;
        let requester = txn.requester;
        let needs_data = txn.write_data == WriteData::Remote && !txn.data_sent;
        let state = self.gateway.get(&(txn_id, node.0 as u32)).copied();
        // Invalidate every copy in this CMP; a supplier-state copy donates
        // the data if the writer still needs it.
        let dropped = if self.mutation == Some(ProtocolMutation::SkipWriteInvalidation) {
            InvalidateOutcome {
                copies: 0,
                had_supplier: false,
                strong_copies: 0,
            }
        } else {
            self.invalidate_cmp(node, line)
        };
        let had_supplier = dropped.had_supplier;
        self.timeline.record(
            txn_id,
            now,
            TxnEvent::SnoopFinished {
                node,
                supplier: had_supplier,
            },
        );
        let mut sent_data = false;
        if needs_data && had_supplier {
            // Deliberately NOT faultable: the invalidation just destroyed
            // the (possibly dirty) supplier copy, so this donation is the
            // only holder of the data — losing it is unrecoverable without
            // a value-level ack protocol. Same for writebacks.
            let data_at = self.torus.send(node, requester, now);
            self.schedule_event(data_at, Event::DataArrive { txn: txn_id });
            if let Some(txn) = self.txns.get_mut(txn_id) {
                txn.data_sent = true;
                txn.data_pending += 1;
            }
            sent_data = true;
        }
        let Some(NodeState::Snooping {
            acc,
            combine_out,
            buffered,
        }) = state
        else {
            // Entry already removed: this node finished via the trailing
            // reply path; the invalidation above still had to run.
            debug_assert_eq!(state, None);
            return;
        };
        let any_copy = dropped.copies > 0;
        let mut info = match (acc, buffered) {
            (Some(i), _) => i,
            (None, Some(i)) => i,
            (None, None) => {
                // Split write: the trailing reply has not arrived yet.
                self.set_node_state(
                    txn_id,
                    node,
                    NodeState::AwaitReply {
                        combine_out,
                        any_copy: sent_data, // reused as "found" marker below
                    },
                );
                return;
            }
        };
        info.merge_snoop(sent_data, any_copy);
        self.finish_write_node(txn_id, node, info, combine_out, now);
    }

    fn finish_write_node(
        &mut self,
        txn_id: TxnId,
        node: CmpId,
        info: ReplyInfo,
        combine_out: bool,
        now: Cycle,
    ) {
        self.set_node_state(txn_id, node, NodeState::Finished);
        let Some(txn) = self.txns.get(txn_id) else {
            return;
        };
        let kind = if combine_out {
            MsgKind::Combined(info)
        } else {
            MsgKind::Reply(info)
        };
        let msg = RingMsg {
            txn: txn_id,
            line: txn.line,
            op: TxnOp::Write,
            requester: txn.requester,
            kind,
            attempt: 0, // restamped by send_ring on an unreliable ring
            seq: 0,
            scope: txn.scope,
            via_global: false,
        };
        self.send_ring(
            msg,
            node,
            now + self.cfg.timing.gateway_latency,
            TxnOp::Write,
        );
    }

    fn on_write_trailing_reply(&mut self, msg: RingMsg, node: CmpId, info: ReplyInfo, now: Cycle) {
        if self.txns.get(msg.txn).is_none() {
            return;
        }
        let state = self.gateway.get(&(msg.txn, node.0 as u32)).copied();
        match state {
            Some(NodeState::Snooping {
                acc, combine_out, ..
            }) => {
                // The invalidation ack cannot be skipped: buffer until the
                // local snoop completes.
                self.set_node_state(
                    msg.txn,
                    node,
                    NodeState::Snooping {
                        acc,
                        combine_out,
                        buffered: Some(info),
                    },
                );
            }
            Some(NodeState::AwaitReply {
                combine_out,
                any_copy: sent_data,
            }) => {
                let mut info = info;
                info.found |= sent_data;
                self.finish_write_node(msg.txn, node, info, combine_out, now);
            }
            Some(NodeState::Finished) => unreachable!("Finished is never stored"),
            Some(NodeState::PassThrough) => {
                // This node filtered the write (presence says no copy);
                // pass the trailing reply through untouched.
                let out = RingMsg {
                    kind: MsgKind::Reply(info),
                    ..msg
                };
                self.send_ring(
                    out,
                    node,
                    now + self.cfg.timing.gateway_latency,
                    TxnOp::Write,
                );
            }
            None => {
                // Already finished here (stale information), or orphaned
                // by a dropped leading request (see the read-side twin
                // above): discard; a timeout re-issues the write if the
                // circulation really was lost.
            }
        }
    }

    // ----- messages returning to the requester --------------------------------

    fn on_ring_return(&mut self, msg: RingMsg, now: Cycle) {
        let info = match msg.kind {
            MsgKind::Request => return, // wait for the trailing reply
            MsgKind::Reply(i) | MsgKind::Combined(i) => i,
        };
        let Some(txn) = self.txns.get_mut(msg.txn) else {
            return;
        };
        txn.reply_info = Some(info);
        if self.unreliable {
            // One completed circulation = one round-trip observation for
            // this requester's timeout estimator (fed in both policies so
            // static-vs-adaptive runs report comparable sample counts).
            let rtt = now - txn.attempt_start;
            let requester = txn.requester;
            self.rtt[requester.0].sample(rtt);
            self.stats.robustness.rtt_samples += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                let estimate = self.rtt[requester.0].timeout(self.timeout_floor);
                p.rtt_sampled(rtt, estimate);
            }
        }
        match msg.op {
            TxnOp::Read => self.on_read_reply_returned(msg.txn, info, now),
            TxnOp::Write => self.on_write_reply_returned(msg.txn, info, now),
        }
    }

    fn on_read_reply_returned(&mut self, txn_id: TxnId, info: ReplyInfo, now: Cycle) {
        if info.found {
            // Data is on its way (or already arrived and resumed the core).
            self.try_retire(txn_id, now);
            return;
        }
        if self
            .txns
            .get(txn_id)
            .is_some_and(|t| t.scope == SnoopScope::Local)
        {
            // A local circulation came back empty-handed: the supplier —
            // if one exists — is in another ring. Escalate before
            // touching memory so a memory fill only ever follows a full
            // circulation (preserving `proves_exclusive` for E fills).
            self.escalate(txn_id, now);
            return;
        }
        // Negative response: fetch from memory (paper §2.2).
        self.stats.reads_from_memory += 1;
        if !self.locality.is_empty() {
            // No cache supplier anywhere: train the requester group
            // remote so the line keeps circulating globally until a
            // local supply proves otherwise.
            let t = self.txns.get(txn_id).expect("txn exists");
            let (requester, line) = (t.requester, t.line);
            let group = self.ring.group_of(requester);
            self.locality[group].train(line, false);
        }
        let txn = self.txns.get_mut(txn_id).expect("txn exists");
        txn.fill_state = if self.cfg.policy.exclusive_fill && info.proves_exclusive() {
            CoherState::E
        } else {
            CoherState::Sg
        };
        let line = txn.line;
        let requester = txn.requester;
        let home = CmpId(line.home_node(self.cfg.nodes));
        let prefetch = txn.prefetch_ready;
        // Figure 9 scope: ordinary memory reads are program traffic, not
        // snoop energy; only re-reads caused by Exact's downgrades count.
        if self.downgraded.remove(&line) {
            self.stats.downgrade_rereads += 1;
            self.stats.energy.add(EnergyCategory::MemRead, 1);
        }
        // Every leg of the memory path is an idempotent torus message:
        // a retried circulation simply re-walks it, so all are faultable.
        let data_at = match prefetch {
            Some(ready) => {
                // The home node anticipated this read; data leaves as soon
                // as both the DRAM access and the decision are available.
                let leave = now.max(ready);
                self.torus.send_outcome(home, requester, leave)
            }
            None => match self.torus.send_outcome(requester, home, now) {
                Some(at_home) => {
                    self.timeline.record(
                        txn_id,
                        at_home,
                        TxnEvent::MemoryStarted {
                            home,
                            prefetch: false,
                        },
                    );
                    let grant = self.mem_ports[home.0].acquire(at_home, self.cfg.memory.occupancy);
                    let done = grant.start
                        + self.cfg.memory.dram_latency
                        + self.cfg.memory.controller_overhead;
                    self.torus.send_outcome(home, requester, done)
                }
                None => None,
            },
        };
        match data_at {
            Some(at) => {
                self.schedule_event(at, Event::MemData { txn: txn_id });
                self.note_data_scheduled(txn_id);
            }
            None => self.note_torus_drop(),
        }
    }

    fn on_write_reply_returned(&mut self, txn_id: TxnId, info: ReplyInfo, now: Cycle) {
        let txn = self.txns.get(txn_id).expect("txn exists");
        let node = txn.requester;
        let core = txn.core;
        let line = txn.line;
        let local = self.local_idx(core);
        let write_data = txn.write_data;
        let data_arrived = txn.data_arrived;
        match write_data {
            WriteData::Local => {
                // Upgrade or local copy: all remote copies are now invalid;
                // clear other local copies and own the line dirty.
                self.complete_write_fill(node, local, line);
                self.resume_core(txn_id, now);
                self.try_retire(txn_id, now);
            }
            WriteData::Remote => {
                if info.found {
                    // A remote cache donated the data.
                    if data_arrived.is_some() {
                        self.complete_write_fill(node, local, line);
                        self.resume_core(txn_id, now);
                        self.try_retire(txn_id, now);
                    }
                    // else: DataArrive will complete the write.
                } else {
                    // Write-allocate from memory.
                    let home = CmpId(line.home_node(self.cfg.nodes));
                    let prefetch = self.txns.get(txn_id).and_then(|t| t.prefetch_ready);
                    if self.downgraded.remove(&line) {
                        self.stats.downgrade_rereads += 1;
                        self.stats.energy.add(EnergyCategory::MemRead, 1);
                    }
                    // Same idempotent memory path as the read side: every
                    // leg is faultable; a timeout re-drives the write.
                    let data_at = match prefetch {
                        Some(ready) => self.torus.send_outcome(home, node, now.max(ready)),
                        None => match self.torus.send_outcome(node, home, now) {
                            Some(at_home) => {
                                let grant = self.mem_ports[home.0]
                                    .acquire(at_home, self.cfg.memory.occupancy);
                                let done = grant.start
                                    + self.cfg.memory.dram_latency
                                    + self.cfg.memory.controller_overhead;
                                self.torus.send_outcome(home, node, done)
                            }
                            None => None,
                        },
                    };
                    match data_at {
                        Some(at) => {
                            self.schedule_event(at, Event::MemData { txn: txn_id });
                            self.note_data_scheduled(txn_id);
                        }
                        None => self.note_torus_drop(),
                    }
                }
            }
        }
    }

    /// Installs the written line dirty in the writer's L2, clearing any
    /// other copy in the writer's CMP.
    fn complete_write_fill(&mut self, node: CmpId, local: usize, line: LineAddr) {
        // Clear every local copy (including a stale own copy), then own it.
        self.invalidate_cmp(node, line);
        self.fill_line(node, local, line, CoherState::D);
    }

    fn on_data_arrive(&mut self, txn_id: TxnId, now: Cycle) {
        let Some(txn) = self.txns.get_mut(txn_id) else {
            return;
        };
        txn.data_pending = txn.data_pending.saturating_sub(1);
        txn.data_arrived = Some(now);
        self.timeline.record(txn_id, now, TxnEvent::DataArrived);
        let op = txn.op;
        let node = txn.requester;
        let core = txn.core;
        let line = txn.line;
        let reply_returned = txn.reply_info.is_some();
        let local = self.local_idx(core);
        match op {
            TxnOp::Read => {
                // The paper: the processor may use cache-supplied data as
                // soon as it arrives (§2.2). The requester becomes the
                // CMP's Local Master — unless a concurrent read by a peer
                // in the same CMP already brought the line in (read–read
                // concurrency), in which case this copy is plain S (only
                // one SL per CMP; Figure 2b).
                let state = if self.cmps[node.0].has_copy(line) {
                    CoherState::S
                } else {
                    CoherState::Sl
                };
                self.fill_line(node, local, line, state);
                self.resume_core(txn_id, now);
                self.try_retire(txn_id, now);
            }
            TxnOp::Write => {
                if reply_returned {
                    self.complete_write_fill(node, local, line);
                    self.resume_core(txn_id, now);
                    self.try_retire(txn_id, now);
                }
                // else: completion happens when the reply returns.
            }
        }
    }

    fn on_mem_data(&mut self, txn_id: TxnId, now: Cycle) {
        self.note_data_fired(txn_id);
        let Some(txn) = self.txns.get(txn_id) else {
            return;
        };
        let node = txn.requester;
        let core = txn.core;
        let line = txn.line;
        let local = self.local_idx(core);
        match txn.op {
            TxnOp::Read => {
                match self.memory_fill_state(node, line, txn.fill_state) {
                    Some(fill) => self.fill_line(node, local, line, fill),
                    None => {
                        // A dirty or exclusive copy appeared while this read
                        // was in flight (a concurrent transaction won the
                        // race): the memory data is unusable. This is the
                        // collision-squash case — retire the transaction
                        // and retry the read, which will now find the
                        // supplier.
                        self.stats.collisions += 1;
                        if let Some(t) = self.txns.get_mut(txn_id) {
                            t.resumed = true; // the retry resumes the core
                        }
                        self.try_retire(txn_id, now);
                        // `replay: true`: the original issue already took
                        // the load-queue slot; the retry must not recount.
                        self.schedule_event(
                            now + Cycles(1),
                            Event::CoreIssue {
                                core,
                                access: MemAccess::read(line, Cycles::ZERO),
                                replay: true,
                            },
                        );
                        return;
                    }
                }
            }
            TxnOp::Write => {
                self.complete_write_fill(node, local, line);
            }
        }
        self.resume_core(txn_id, now);
        self.try_retire(txn_id, now);
    }

    /// Decides the install state for a memory fill at `node`, accounting
    /// for copies created by transactions that raced with this one.
    ///
    /// Returns `None` if a dirty or exclusive copy exists (memory data is
    /// stale or the fill would violate exclusivity): the read must retry.
    ///
    /// Answered from the incremental [`Self::residency`] counters in O(1);
    /// debug builds cross-check against the full-machine scan this
    /// replaced.
    fn memory_fill_state(
        &self,
        node: CmpId,
        line: LineAddr,
        proven: CoherState,
    ) -> Option<CoherState> {
        let res = self.residency.get(&line).copied().unwrap_or_default();
        let fill = if res.strong > 0 {
            None
        } else if res.copies == 0 {
            Some(proven) // SG, or E when the ring proved exclusivity
        } else if self.cmps[node.0].has_copy(line) {
            // A racing SL in this CMP also forbids another local master.
            Some(CoherState::S)
        } else {
            Some(CoherState::Sl)
        };
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            fill,
            self.memory_fill_state_scan(node, line, proven),
            "residency counters drifted from cache state for {line}"
        );
        fill
    }

    /// The original full-machine scan, kept as ground truth for the
    /// counter-based fast path in debug builds.
    #[cfg(debug_assertions)]
    fn memory_fill_state_scan(
        &self,
        node: CmpId,
        line: LineAddr,
        proven: CoherState,
    ) -> Option<CoherState> {
        let mut any_copy = false;
        let mut local_copy = false;
        for (n, cmp) in self.cmps.iter().enumerate() {
            for c in 0..cmp.cores() {
                let st = cmp.l2(c).state_of(line);
                if !st.is_valid() {
                    continue;
                }
                if matches!(st, CoherState::E | CoherState::D | CoherState::T) {
                    return None;
                }
                any_copy = true;
                if n == node.0 {
                    local_copy = true;
                }
            }
        }
        Some(if !any_copy {
            proven
        } else if local_copy {
            CoherState::S
        } else {
            CoherState::Sl
        })
    }

    /// Resumes the requesting core (once) and records the latency.
    fn resume_core(&mut self, txn_id: TxnId, now: Cycle) {
        let Some(txn) = self.txns.get_mut(txn_id) else {
            return;
        };
        if txn.resumed {
            return;
        }
        txn.resumed = true;
        let core = txn.core;
        let issued_at = txn.issue;
        let blocking = txn.blocking;
        if txn.op == TxnOp::Read {
            self.stats.read_latency.record((now - issued_at).as_u64());
        }
        self.timeline.record(txn_id, now, TxnEvent::Completed);
        if blocking {
            self.release_read_slot(core, now);
        }
    }

    /// Retires the transaction once the ring reply has returned and the
    /// core has been resumed; releases the line and wakes collided waiters.
    fn try_retire(&mut self, txn_id: TxnId, now: Cycle) {
        let Some(txn) = self.txns.get(txn_id) else {
            return;
        };
        if txn.reply_info.is_none() || !txn.resumed {
            return;
        }
        let line = txn.line;
        let op = txn.op;
        let attempt = txn.attempt;
        // Two-level accounting: a read that retires still at Local scope
        // completed inside its group; anything else circled the global
        // ring at least once. Writes always circulate globally and are
        // not counted here.
        if !self.locality.is_empty() && op == TxnOp::Read {
            match txn.scope {
                SnoopScope::Local => self.stats.local_circulations += 1,
                SnoopScope::Global => self.stats.global_circulations += 1,
            }
        }
        self.timeline.record(txn_id, now, TxnEvent::Retired);
        // Probation: a retry-free retirement on a degraded line is one
        // clean circulation; a full window of them re-arms the Table 3
        // algorithm for the line. Retired retries neither count nor
        // reset — their timeouts already reset the counter.
        if self.unreliable && attempt == 0 {
            if let Some(clean) = self.degraded_lines.get_mut(&line) {
                *clean += 1;
                if *clean >= self.cfg.recovery.probation_window {
                    self.degraded_lines.remove(&line);
                    self.stats.robustness.probation_exits += 1;
                    self.stats.robustness.last_probation_exit_cycle = now.as_u64();
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.probation_exited();
                    }
                }
            }
        }
        // Oracle hook: at retirement the line's copies must satisfy the
        // Figure 2(b) invariants again (mid-flight windows are over).
        if self.checks {
            if let Err(what) = invariants::check_line(&self.cmps, line) {
                self.record_violation(txn_id, now, line, what);
            }
        }
        if let Some(done) = self.txns.remove(txn_id) {
            for node in done.engaged {
                self.gateway.remove(&(txn_id, node));
            }
        }
        if let Some(slot) = self.line_busy.get_mut(&line) {
            match op {
                TxnOp::Read => slot.0 = slot.0.saturating_sub(1),
                TxnOp::Write => slot.1 = slot.1.saturating_sub(1),
            }
            if *slot == (0, 0) {
                self.line_busy.remove(&line);
            }
        }
        // Wake every waiter; each replays its access and re-checks the
        // conflict rule (some may immediately re-queue).
        if let Some(waiters) = self.line_waiters.remove(&line) {
            for (core, access) in waiters {
                self.schedule_event(
                    now + Cycles(1),
                    Event::CoreIssue {
                        core,
                        access,
                        replay: true,
                    },
                );
            }
        }
    }

    /// Writes one node's gateway state for `txn` into the sparse map.
    /// `Finished` removes the entry (absence ≡ finished-or-untouched);
    /// a fresh insert is recorded on the transaction's `engaged` list so
    /// retirement and retries clean up in O(entries touched). No-op for
    /// retired transactions, so stale events cannot leak entries.
    fn set_node_state(&mut self, txn: TxnId, node: CmpId, state: NodeState) {
        let Some(t) = self.txns.get_mut(txn) else {
            return;
        };
        let key = (txn, node.0 as u32);
        if state == NodeState::Finished {
            self.gateway.remove(&key);
        } else if self.gateway.insert(key, state).is_none() {
            t.engaged.push(node.0 as u32);
        }
    }

    // ----- state mutation with predictor maintenance --------------------------

    /// Fills `line` into a core's L2, handling the victim (write-back,
    /// predictor) and predictor gain (with Exact downgrades).
    fn fill_line(&mut self, node: CmpId, local: usize, line: LineAddr, state: CoherState) {
        if self.cfg.policy.write_filtering {
            self.presence[node.0].insert(line);
        }
        let old = self.cmps[node.0].l2(local).state_of(line);
        if let Some(victim) = self.cmps[node.0].fill(local, line, state) {
            self.residency_change(victim.line, victim.state, CoherState::I);
            if self.cfg.policy.write_filtering {
                self.presence[node.0].remove(victim.line);
            }
            if victim.state.is_supplier() {
                self.predictor_lost(node, victim.line);
            }
            if victim.needs_writeback() {
                // Ordinary capacity write-backs are program traffic and are
                // not charged to the snoop-energy account (Figure 9 scope).
                self.stats.eviction_writebacks += 1;
                let home = CmpId(victim.line.home_node(self.cfg.nodes));
                let now = self.sched.now();
                let _ = self.torus.send(node, home, now);
            }
        }
        self.residency_change(line, old, state);
        if state.is_supplier() {
            self.predictor_gained(node, line);
        }
    }

    /// Changes the state of a resident line, keeping the predictor in sync.
    fn transition(&mut self, node: CmpId, local: usize, line: LineAddr, new: CoherState) {
        let old = self.cmps[node.0].l2(local).state_of(line);
        debug_assert!(old.is_valid(), "transition on invalid line {line}");
        if old == new {
            return;
        }
        self.cmps[node.0].set_state(local, line, new);
        self.residency_change(line, old, new);
        match (old.is_supplier(), new.is_supplier()) {
            (false, true) => self.predictor_gained(node, line),
            (true, false) => self.predictor_lost(node, line),
            _ => {}
        }
    }

    /// Invalidates every copy of `line` in a CMP, keeping the predictor in
    /// sync; returns what was dropped (counts only — no allocation, this
    /// runs once per write snoop).
    fn invalidate_cmp(&mut self, node: CmpId, line: LineAddr) -> InvalidateOutcome {
        let dropped = self.cmps[node.0].invalidate_all_counted(line);
        if dropped.copies > 0 {
            let entry = self
                .residency
                .get_mut(&line)
                .expect("invalidated copies were never counted");
            entry.copies -= dropped.copies;
            entry.strong -= dropped.strong_copies;
            if entry.copies == 0 {
                self.residency.remove(&line);
            }
        }
        if self.cfg.policy.write_filtering {
            for _ in 0..dropped.copies {
                self.presence[node.0].remove(line);
            }
        }
        if dropped.had_supplier {
            self.predictor_lost(node, line);
        }
        dropped
    }

    /// Maintains the machine-wide [`Self::residency`] counters across one
    /// L2 state change of `line` (old → new at a single core).
    fn residency_change(&mut self, line: LineAddr, old: CoherState, new: CoherState) {
        let strong = |s: CoherState| matches!(s, CoherState::E | CoherState::D | CoherState::T);
        let d_copies = new.is_valid() as i32 - old.is_valid() as i32;
        let d_strong = strong(new) as i32 - strong(old) as i32;
        if d_copies == 0 && d_strong == 0 {
            return;
        }
        let entry = self.residency.entry(line).or_default();
        entry.copies = entry
            .copies
            .checked_add_signed(d_copies)
            .expect("residency copy count drifted");
        entry.strong = entry
            .strong
            .checked_add_signed(d_strong)
            .expect("residency strong count drifted");
        if entry.copies == 0 {
            self.residency.remove(&line);
        }
    }

    fn predictor_gained(&mut self, node: CmpId, line: LineAddr) {
        if let Some(victim) = self.predictors.supplier_gained(node.0, line) {
            self.perform_downgrade(node, victim);
        }
    }

    fn predictor_lost(&mut self, node: CmpId, line: LineAddr) {
        self.predictors.supplier_lost(node.0, line);
    }

    /// Executes an Exact-predictor downgrade (paper §4.3.3): the victim
    /// line leaves its supplier state; dirty victims are written back.
    ///
    /// The predictor has already dropped its entry, so the cache state is
    /// changed directly (not through [`transition`](Self::transition),
    /// which would double-remove).
    fn perform_downgrade(&mut self, node: CmpId, line: LineAddr) {
        let Some((core, st)) = self.cmps[node.0].supplier_of(line) else {
            return; // raced with an invalidation; nothing to downgrade
        };
        let (new, writeback) = st.after_downgrade();
        self.cmps[node.0].set_state(core, line, new);
        self.residency_change(line, st, new);
        self.stats.downgrades += 1;
        self.stats.energy.add(EnergyCategory::Downgrade, 1);
        self.downgraded.insert(line);
        if writeback {
            self.stats.downgrade_writebacks += 1;
            self.stats.energy.add(EnergyCategory::MemWrite, 1);
            let home = CmpId(line.home_node(self.cfg.nodes));
            let now = self.sched.now();
            let _ = self.torus.send(node, home, now);
        }
    }

    // ----- memory accounting ---------------------------------------------------

    /// Estimates the heap footprint of the model state: caches,
    /// predictors, presence filters, ring/torus link FIFOs, per-node
    /// ports, and the dynamic protocol maps at their current capacity. An
    /// estimate (not an allocator census) — `bench --scale` reports it as
    /// bytes/node to track how per-node cost grows with ring size.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let caches: u64 = self.cmps.iter().map(|c| c.footprint_bytes()).sum();
        let presence: u64 = self
            .presence
            .iter()
            .map(|b| b.storage_bits() as u64 / 8)
            .sum();
        let ports = ((self.snoop_ports.capacity() + self.mem_ports.capacity())
            * size_of::<Resource>()) as u64;
        let dynamic = (self.gateway.capacity() * (size_of::<((TxnId, u32), NodeState)>() + 16)
            + self.residency.capacity() * (size_of::<(LineAddr, LineCopies)>() + 16)
            + self.rtt.capacity() * size_of::<RttEstimator>()) as u64;
        let locality: u64 = self.locality.iter().map(|t| t.footprint_bytes()).sum();
        let total = caches
            + presence
            + ports
            + dynamic
            + locality
            + self.predictors.footprint_bytes()
            + self.ring.footprint_bytes()
            + self.torus.footprint_bytes();
        MemoryFootprint {
            total_bytes: total,
            bytes_per_node: total / self.cfg.nodes.max(1) as u64,
        }
    }

    // ----- dynamic governor ----------------------------------------------------

    /// Whether the dynamic Superset governor considers the energy budget
    /// exceeded at `now`.
    fn energy_over_budget(&self, now: Cycle) -> bool {
        if let Algorithm::SupersetDyn(DynPolicy::EnergyBudget(nj_per_kcycle)) = self.alg {
            if now == Cycle::ZERO {
                return false;
            }
            let budget = nj_per_kcycle * now.as_u64() as f64 / 1000.0;
            self.stats.energy.total_nj() > budget
        } else {
            false
        }
    }

    // ----- checkpoint / restore ---------------------------------------------

    /// Hashes every configuration input that shapes the dynamic state a
    /// snapshot carries: the machine parameters, the algorithm, and the
    /// per-core access limits. Deliberately *excluded* are the event-queue
    /// backend, the segment count (snapshots re-route events through
    /// `schedule_event`, so they are portable across both) and the
    /// fault plan (a resumed run may widen the fault budget — the basis of
    /// the chaos shrinker's snapshot bisection).
    ///
    /// Public because the sweep service (`flexsnoop-serve`) keys its
    /// results cache on this value: two simulators with equal
    /// fingerprints run the same machine under the same algorithm, and
    /// the excluded inputs (backend, segments) are exactly the ones the
    /// segment-identity tests prove result-neutral. Inputs the snapshot
    /// codec treats as constructor data — the workload identity, the
    /// predictor spec, the seed — are *not* covered and must be mixed in
    /// by the caller when the key has to distinguish them.
    pub fn config_fingerprint(&self) -> u64 {
        let c = &self.cfg;
        let mut f = Fingerprint::new();
        for v in [
            c.nodes,
            c.cores_per_cmp,
            c.caches.l1_bytes,
            c.caches.l1_ways,
            c.caches.l2_bytes,
            c.caches.l2_ways,
            c.caches.line_bytes,
        ] {
            f.push_u64(v as u64);
        }
        for v in [
            c.timing.l1_rt,
            c.timing.l2_rt,
            c.timing.cmp_bus_rt,
            c.timing.snoop_time,
            c.timing.snoop_occupancy,
            c.timing.gateway_latency,
            c.timing.predictor_latency,
            c.memory.dram_latency,
            c.memory.controller_overhead,
            c.memory.occupancy,
            c.ring.hop_latency,
            c.ring.link_service,
            c.data_net.hop_latency,
            c.data_net.router_latency,
            c.data_net.link_service,
            c.recovery.queueing_slack,
            c.recovery.backoff_base,
            c.recovery.backoff_cap,
        ] {
            f.push_u64(v.as_u64());
        }
        f.push_u8(c.memory.home_prefetch as u8);
        f.push_u64(c.ring.rings as u64);
        f.push_u8(c.policy.exclusive_fill as u8);
        f.push_u64(c.policy.max_outstanding_reads as u64);
        f.push_u8(c.policy.write_filtering as u8);
        f.push_u8(match c.recovery.timeout_policy {
            TimeoutPolicy::Static => 0,
            TimeoutPolicy::Adaptive => 1,
        });
        f.push_u64(c.recovery.retry_cap as u64);
        f.push_u64(c.recovery.probation_window as u64);
        // Hierarchy folds in only when configured, so every flat-ring
        // fingerprint is byte-identical to what it was before the
        // hierarchical extension existed (cache keys, committed
        // artifacts, and flat snapshots all stay valid).
        if let Some(h) = c.ring.hier {
            f.push_u64(h.local as u64);
            f.push_u64(h.groups as u64);
            f.push_u64(h.bridge_latency.as_u64());
            f.push_u64(h.bridge_service.as_u64());
        }
        f.push_str(&self.alg.to_string());
        f.push_u64(self.cores.len() as u64);
        for core in &self.cores {
            f.push_u64(core.limit);
        }
        f.finish()
    }

    /// Serializes the complete dynamic state of a mid-run simulation into
    /// a sealed, versioned byte stream: every pending event with its
    /// global dispatch order, the caches, predictors, presence filters,
    /// network link and port schedules, core cursors (including each
    /// access stream's RNG), in-flight transactions with their arena
    /// generations, the sparse gateway map, residency and collision
    /// tables, recovery state (RTT estimators, degraded-line probation),
    /// and the statistics so far. The timeline recorder and probe sink
    /// are *not* captured — a restored run re-attaches its own (that is
    /// what lets the differential harness rewind with recording enabled).
    ///
    /// Call between [`run_until`](Self::run_until) slices. Restoring
    /// ([`Self::restore_snapshot`]) onto a freshly built simulator of the
    /// same configuration and then running to completion produces
    /// bit-identical [`RunStats`] to the uninterrupted run, regardless of
    /// either side's event-queue backend or segment count.
    ///
    /// Takes `&mut self` because the event queue must be drained to
    /// observe its global pop order; the queue is rebuilt in place and
    /// the simulation can keep running as if nothing happened.
    ///
    /// # Panics
    ///
    /// Panics if the run was already finalized.
    pub fn save_snapshot(&mut self) -> Vec<u8> {
        assert!(!self.finished, "cannot snapshot a finalized run");
        let mut w = SnapWriter::new();
        w.put_u64(self.config_fingerprint());
        w.put_bool(self.started);
        w.put_usize(self.cmps.len());
        for c in &self.cmps {
            c.save_into(&mut w);
        }
        self.predictors.save_into(&mut w);
        w.put_usize(self.presence.len());
        for b in &self.presence {
            b.save_into(&mut w);
        }
        w.put_u64(self.write_snoops_filtered);
        self.ring.save_into(&mut w);
        self.torus.save_into(&mut w);
        w.put_usize(self.snoop_ports.len());
        for p in &self.snoop_ports {
            p.save_into(&mut w);
        }
        w.put_usize(self.mem_ports.len());
        for p in &self.mem_ports {
            p.save_into(&mut w);
        }
        w.put_usize(self.cores.len());
        for c in &self.cores {
            c.stream.save_into(&mut w);
            w.put_u64(c.issued);
            w.put_bool(c.done);
            w.put_usize(c.outstanding_reads);
            w.put_bool(c.stalled);
        }
        self.txns.save_into_with(&mut w, save_txn);
        // Hash maps iterate in arbitrary order; serialize sorted by key so
        // identical states produce identical bytes.
        let mut gateway: Vec<_> = self.gateway.iter().collect();
        gateway.sort_by_key(|&(&k, _)| k);
        w.put_usize(gateway.len());
        for (&(txn, node), st) in gateway {
            txn.save_into(&mut w);
            w.put_u32(node);
            save_node_state(st, &mut w);
        }
        let mut residency: Vec<_> = self.residency.iter().collect();
        residency.sort_by_key(|&(l, _)| l.0);
        w.put_usize(residency.len());
        for (line, copies) in residency {
            w.put_u64(line.0);
            copies.save_into(&mut w);
        }
        let mut busy: Vec<_> = self.line_busy.iter().collect();
        busy.sort_by_key(|&(l, _)| l.0);
        w.put_usize(busy.len());
        for (line, &(readers, writers)) in busy {
            w.put_u64(line.0);
            w.put_u32(readers);
            w.put_u32(writers);
        }
        let mut waiters: Vec<_> = self.line_waiters.iter().collect();
        waiters.sort_by_key(|&(l, _)| l.0);
        w.put_usize(waiters.len());
        for (line, queue) in waiters {
            w.put_u64(line.0);
            w.put_usize(queue.len());
            for (core, access) in queue {
                w.put_usize(*core);
                access.save_into(&mut w);
            }
        }
        let mut downgraded: Vec<_> = self.downgraded.iter().collect();
        downgraded.sort_by_key(|l| l.0);
        w.put_usize(downgraded.len());
        for line in downgraded {
            w.put_u64(line.0);
        }
        let mut degraded: Vec<_> = self.degraded_lines.iter().collect();
        degraded.sort_by_key(|&(l, _)| l.0);
        w.put_usize(degraded.len());
        for (line, &clean) in degraded {
            w.put_u64(line.0);
            w.put_u32(clean);
        }
        w.put_bool(self.unreliable);
        w.put_bool(self.torus_faulty);
        w.put_bool(self.recovery);
        w.put_bool(!self.churn.is_empty());
        w.put_usize(self.detached.len());
        for &d in &self.detached {
            w.put_bool(d);
        }
        w.put_cycles(self.timeout_base);
        w.put_cycles(self.timeout_floor);
        w.put_usize(self.rtt.len());
        for e in &self.rtt {
            e.save_into(&mut w);
        }
        w.put_usize(self.locality.len());
        for table in &self.locality {
            table.save_into(&mut w);
        }
        self.stats.save_into(&mut w);
        w.put_bool(self.checks);
        w.put_usize(self.violations.len());
        for v in &self.violations {
            v.save_into(&mut w);
        }
        w.put_bool(self.mutation.is_some());
        if let Some(m) = &self.mutation {
            m.save_into(&mut w);
        }
        w.put_usize(self.active_cores);
        // The event queue comes last (restore needs the transaction table
        // to route events to segments). Observing the global pop order
        // requires draining; record the clock first — popping advances it.
        let now0 = self.sched.now();
        w.put_cycle(now0);
        let mut events = Vec::with_capacity(self.sched.len());
        while let Some((t, ev)) = self.sched.pop() {
            events.push((t, ev));
        }
        w.put_usize(events.len());
        for (t, ev) in &events {
            w.put_cycle(*t);
            save_event(ev, &mut w);
        }
        // Rebuild the queue and put everything back, restoring the pops.
        self.sched = SimSched::build(self.sched.queue_kind(), self.sched.segments());
        for (t, ev) in events {
            self.schedule_event(t, ev);
        }
        self.sched.restore_clock(now0);
        snap::seal(w.into_bytes())
    }

    /// Restores a [`save_snapshot`](Self::save_snapshot) stream onto this
    /// simulator, which must be freshly built with the same machine
    /// configuration, algorithm, predictor layout and per-core streams —
    /// and, if the snapshot was taken with a fault plan armed, the same
    /// plan (or one widened via `FaultPlan::with_budget`) armed via
    /// [`set_fault_plan`](Self::set_fault_plan) *before* restoring.
    /// Queue backend and segment count are free choices: events re-route
    /// through the live queue's scheduling path on the way in.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if the stream is malformed, was produced by
    /// a different schema version, or does not match this simulator's
    /// configuration fingerprint or fault-plan arming.
    ///
    /// # Panics
    ///
    /// Panics if this simulator has already started running.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        assert!(
            !self.started && !self.finished && self.sched.is_empty(),
            "restore_snapshot() needs a freshly built simulator"
        );
        let payload = snap::unseal(bytes)?;
        let mut r = SnapReader::new(payload);
        let expected = self.config_fingerprint();
        let found = r.get_u64()?;
        if found != expected {
            return Err(SnapError::FingerprintMismatch { found, expected });
        }
        let started = r.get_bool()?;
        if r.get_usize()? != self.cmps.len() {
            return Err(SnapError::Corrupt("CMP count does not match config"));
        }
        for c in &mut self.cmps {
            c.restore_from(&mut r)?;
        }
        self.predictors.restore_from(&mut r)?;
        if r.get_usize()? != self.presence.len() {
            return Err(SnapError::Corrupt(
                "presence-filter count does not match config",
            ));
        }
        for b in &mut self.presence {
            b.restore_from(&mut r)?;
        }
        self.write_snoops_filtered = r.get_u64()?;
        self.ring.restore_from(&mut r)?;
        self.torus.restore_from(&mut r)?;
        if r.get_usize()? != self.snoop_ports.len() {
            return Err(SnapError::Corrupt("snoop-port count does not match config"));
        }
        for p in &mut self.snoop_ports {
            p.restore_from(&mut r)?;
        }
        if r.get_usize()? != self.mem_ports.len() {
            return Err(SnapError::Corrupt(
                "memory-port count does not match config",
            ));
        }
        for p in &mut self.mem_ports {
            p.restore_from(&mut r)?;
        }
        if r.get_usize()? != self.cores.len() {
            return Err(SnapError::Corrupt("core count does not match config"));
        }
        for c in &mut self.cores {
            c.stream.restore_from(&mut r)?;
            c.issued = r.get_u64()?;
            c.done = r.get_bool()?;
            c.outstanding_reads = r.get_usize()?;
            c.stalled = r.get_bool()?;
        }
        self.txns.restore_from_with(&mut r, load_txn)?;
        self.gateway.clear();
        for _ in 0..r.get_usize()? {
            let txn = TxnId(r.get_u64()?);
            let node = r.get_u32()?;
            let st = load_node_state(&mut r)?;
            self.gateway.insert((txn, node), st);
        }
        self.residency.clear();
        for _ in 0..r.get_usize()? {
            let line = LineAddr(r.get_u64()?);
            let mut copies = LineCopies::default();
            copies.restore_from(&mut r)?;
            self.residency.insert(line, copies);
        }
        self.line_busy.clear();
        for _ in 0..r.get_usize()? {
            let line = LineAddr(r.get_u64()?);
            let readers = r.get_u32()?;
            let writers = r.get_u32()?;
            self.line_busy.insert(line, (readers, writers));
        }
        self.line_waiters.clear();
        for _ in 0..r.get_usize()? {
            let line = LineAddr(r.get_u64()?);
            let n = r.get_usize()?;
            let mut queue = VecDeque::with_capacity(n);
            for _ in 0..n {
                let core = r.get_usize()?;
                queue.push_back((core, load_access(&mut r)?));
            }
            self.line_waiters.insert(line, queue);
        }
        self.downgraded.clear();
        for _ in 0..r.get_usize()? {
            self.downgraded.insert(LineAddr(r.get_u64()?));
        }
        self.degraded_lines.clear();
        for _ in 0..r.get_usize()? {
            let line = LineAddr(r.get_u64()?);
            let clean = r.get_u32()?;
            self.degraded_lines.insert(line, clean);
        }
        // The fault plan is armed on the restore target before restoring
        // (it is not part of the snapshot); verify the arming agrees with
        // what the snapshot was taken under.
        let unreliable = r.get_bool()?;
        let torus_faulty = r.get_bool()?;
        let recovery = r.get_bool()?;
        if unreliable != self.unreliable
            || torus_faulty != self.torus_faulty
            || recovery != self.recovery
        {
            return Err(SnapError::Corrupt(
                "fault-plan arming does not match the snapshot",
            ));
        }
        // Churn windows are likewise re-armed (set_churn_plan) before
        // restoring: pending detach/re-add events in the snapshot's
        // queue and deferred issues both assume the plan is present.
        let churned = r.get_bool()?;
        if churned == self.churn.is_empty() {
            return Err(SnapError::Corrupt(
                "churn-plan arming does not match the snapshot",
            ));
        }
        if r.get_usize()? != self.detached.len() {
            return Err(SnapError::Corrupt(
                "detached-node count does not match config",
            ));
        }
        for d in &mut self.detached {
            *d = r.get_bool()?;
        }
        self.timeout_base = r.get_cycles()?;
        self.timeout_floor = r.get_cycles()?;
        if r.get_usize()? != self.rtt.len() {
            return Err(SnapError::Corrupt(
                "round-trip estimator count does not match the armed fault plan",
            ));
        }
        for e in &mut self.rtt {
            e.restore_from(&mut r)?;
        }
        if r.get_usize()? != self.locality.len() {
            return Err(SnapError::Corrupt(
                "locality-table count does not match config",
            ));
        }
        for table in &mut self.locality {
            table.restore_from(&mut r)?;
        }
        self.stats.restore_from(&mut r)?;
        self.checks = r.get_bool()? || cfg!(feature = "strict-invariants");
        self.violations.clear();
        for _ in 0..r.get_usize()? {
            let mut v = Violation {
                txn: TxnId(0),
                at: Cycle::ZERO,
                line: LineAddr(0),
                what: String::new(),
            };
            v.restore_from(&mut r)?;
            self.violations.push(v);
        }
        self.mutation = if r.get_bool()? {
            let mut m = ProtocolMutation::SkipSupplierDowngrade;
            m.restore_from(&mut r)?;
            Some(m)
        } else {
            None
        };
        self.active_cores = r.get_usize()?;
        let now0 = r.get_cycle()?;
        for _ in 0..r.get_usize()? {
            let t = r.get_cycle()?;
            let ev = load_event(&mut r)?;
            self.schedule_event(t, ev);
        }
        self.sched.restore_clock(now0);
        self.started = started;
        r.expect_eof()
    }
}

// ----- checkpoint codecs for sim-private types ------------------------------

impl Snapshot for RttEstimator {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_i64(self.srtt);
        w.put_i64(self.rttvar);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.srtt = r.get_i64()?;
        self.rttvar = r.get_i64()?;
        Ok(())
    }
}

impl Snapshot for LineCopies {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u32(self.copies);
        w.put_u32(self.strong);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.copies = r.get_u32()?;
        self.strong = r.get_u32()?;
        Ok(())
    }
}

fn load_access(r: &mut SnapReader<'_>) -> Result<MemAccess, SnapError> {
    let mut a = MemAccess::read(LineAddr(0), Cycles(0));
    a.restore_from(r)?;
    Ok(a)
}

fn load_msg(r: &mut SnapReader<'_>) -> Result<RingMsg, SnapError> {
    let mut m = RingMsg {
        txn: TxnId(0),
        line: LineAddr(0),
        op: TxnOp::Read,
        requester: CmpId(0),
        kind: MsgKind::Request,
        attempt: 0,
        seq: 0,
        scope: SnoopScope::Global,
        via_global: false,
    };
    m.restore_from(r)?;
    Ok(m)
}

fn save_opt_cycle(c: &Option<Cycle>, w: &mut SnapWriter) {
    w.put_bool(c.is_some());
    if let Some(c) = c {
        w.put_cycle(*c);
    }
}

fn load_opt_cycle(r: &mut SnapReader<'_>) -> Result<Option<Cycle>, SnapError> {
    Ok(if r.get_bool()? {
        Some(r.get_cycle()?)
    } else {
        None
    })
}

fn save_opt_info(i: &Option<ReplyInfo>, w: &mut SnapWriter) {
    w.put_bool(i.is_some());
    if let Some(i) = i {
        i.save_into(w);
    }
}

fn load_opt_info(r: &mut SnapReader<'_>) -> Result<Option<ReplyInfo>, SnapError> {
    Ok(if r.get_bool()? {
        let mut i = ReplyInfo::start();
        i.restore_from(r)?;
        Some(i)
    } else {
        None
    })
}

fn save_node_state(st: &NodeState, w: &mut SnapWriter) {
    match *st {
        NodeState::PassThrough => w.put_u8(0),
        NodeState::Snooping {
            acc,
            combine_out,
            buffered,
        } => {
            w.put_u8(1);
            save_opt_info(&acc, w);
            w.put_bool(combine_out);
            save_opt_info(&buffered, w);
        }
        NodeState::AwaitReply {
            combine_out,
            any_copy,
        } => {
            w.put_u8(2);
            w.put_bool(combine_out);
            w.put_bool(any_copy);
        }
        // Writing Finished removes the gateway entry; it is never stored.
        NodeState::Finished => unreachable!("Finished never occupies the gateway map"),
    }
}

fn load_node_state(r: &mut SnapReader<'_>) -> Result<NodeState, SnapError> {
    Ok(match r.get_u8()? {
        0 => NodeState::PassThrough,
        1 => NodeState::Snooping {
            acc: load_opt_info(r)?,
            combine_out: r.get_bool()?,
            buffered: load_opt_info(r)?,
        },
        2 => NodeState::AwaitReply {
            combine_out: r.get_bool()?,
            any_copy: r.get_bool()?,
        },
        _ => return Err(SnapError::Corrupt("gateway-state tag out of range")),
    })
}

fn save_txn(t: &Txn, w: &mut SnapWriter) {
    w.put_u64(t.line.0);
    t.op.save_into(w);
    w.put_usize(t.requester.0);
    w.put_usize(t.core);
    w.put_cycle(t.issue);
    w.put_usize(t.engaged.len());
    for &n in &t.engaged {
        w.put_u32(n);
    }
    save_opt_cycle(&t.data_arrived, w);
    save_opt_info(&t.reply_info, w);
    save_opt_cycle(&t.prefetch_ready, w);
    w.put_u8(match t.write_data {
        WriteData::Local => 0,
        WriteData::Remote => 1,
    });
    w.put_bool(t.data_sent);
    w.put_bool(t.resumed);
    w.put_u32(t.data_pending);
    w.put_bool(t.blocking);
    t.fill_state.save_into(w);
    w.put_u32(t.attempt);
    w.put_cycle(t.attempt_start);
    w.put_u32(t.emit_seq);
    w.put_usize(t.seen_seqs.len());
    for &word in &t.seen_seqs {
        w.put_u64(word);
    }
    t.scope.save_into(w);
    w.put_bool(t.retried);
}

fn load_txn(r: &mut SnapReader<'_>) -> Result<Txn, SnapError> {
    let line = LineAddr(r.get_u64()?);
    let mut op = TxnOp::Read;
    op.restore_from(r)?;
    let requester = CmpId(r.get_usize()?);
    let core = r.get_usize()?;
    let issue = r.get_cycle()?;
    let mut engaged = Vec::with_capacity(r.get_usize()?);
    for _ in 0..engaged.capacity() {
        engaged.push(r.get_u32()?);
    }
    let data_arrived = load_opt_cycle(r)?;
    let reply_info = load_opt_info(r)?;
    let prefetch_ready = load_opt_cycle(r)?;
    let write_data = match r.get_u8()? {
        0 => WriteData::Local,
        1 => WriteData::Remote,
        _ => return Err(SnapError::Corrupt("write-data tag out of range")),
    };
    let data_sent = r.get_bool()?;
    let resumed = r.get_bool()?;
    let data_pending = r.get_u32()?;
    let blocking = r.get_bool()?;
    let mut fill_state = CoherState::ALL[0];
    fill_state.restore_from(r)?;
    let attempt = r.get_u32()?;
    let attempt_start = r.get_cycle()?;
    let emit_seq = r.get_u32()?;
    let mut seen_seqs = Vec::with_capacity(r.get_usize()?);
    for _ in 0..seen_seqs.capacity() {
        seen_seqs.push(r.get_u64()?);
    }
    let mut scope = SnoopScope::Global;
    scope.restore_from(r)?;
    let retried = r.get_bool()?;
    Ok(Txn {
        line,
        op,
        requester,
        core,
        issue,
        engaged,
        data_arrived,
        reply_info,
        prefetch_ready,
        write_data,
        data_sent,
        resumed,
        data_pending,
        blocking,
        fill_state,
        attempt,
        attempt_start,
        emit_seq,
        seen_seqs,
        scope,
        retried,
    })
}

fn save_event(ev: &Event, w: &mut SnapWriter) {
    match *ev {
        Event::CoreIssue {
            core,
            access,
            replay,
        } => {
            w.put_u8(0);
            w.put_usize(core);
            access.save_into(w);
            w.put_bool(replay);
        }
        Event::RingArrive { msg, node } => {
            w.put_u8(1);
            msg.save_into(w);
            w.put_usize(node.0);
        }
        Event::SnoopDone { txn, node, attempt } => {
            w.put_u8(2);
            txn.save_into(w);
            w.put_usize(node.0);
            w.put_u32(attempt);
        }
        Event::WriteSnoopDone { txn, node, attempt } => {
            w.put_u8(3);
            txn.save_into(w);
            w.put_usize(node.0);
            w.put_u32(attempt);
        }
        Event::DataArrive { txn } => {
            w.put_u8(4);
            txn.save_into(w);
        }
        Event::MemData { txn } => {
            w.put_u8(5);
            txn.save_into(w);
        }
        Event::Timeout { txn, attempt } => {
            w.put_u8(6);
            txn.save_into(w);
            w.put_u32(attempt);
        }
        Event::ChurnDetach { node, warm } => {
            w.put_u8(7);
            w.put_usize(node.0);
            w.put_bool(warm);
        }
        Event::ChurnReadd { node } => {
            w.put_u8(8);
            w.put_usize(node.0);
        }
    }
}

fn load_event(r: &mut SnapReader<'_>) -> Result<Event, SnapError> {
    Ok(match r.get_u8()? {
        0 => Event::CoreIssue {
            core: r.get_usize()?,
            access: load_access(r)?,
            replay: r.get_bool()?,
        },
        1 => Event::RingArrive {
            msg: load_msg(r)?,
            node: CmpId(r.get_usize()?),
        },
        2 => Event::SnoopDone {
            txn: TxnId(r.get_u64()?),
            node: CmpId(r.get_usize()?),
            attempt: r.get_u32()?,
        },
        3 => Event::WriteSnoopDone {
            txn: TxnId(r.get_u64()?),
            node: CmpId(r.get_usize()?),
            attempt: r.get_u32()?,
        },
        4 => Event::DataArrive {
            txn: TxnId(r.get_u64()?),
        },
        5 => Event::MemData {
            txn: TxnId(r.get_u64()?),
        },
        6 => Event::Timeout {
            txn: TxnId(r.get_u64()?),
            attempt: r.get_u32()?,
        },
        7 => Event::ChurnDetach {
            node: CmpId(r.get_usize()?),
            warm: r.get_bool()?,
        },
        8 => Event::ChurnReadd {
            node: CmpId(r.get_usize()?),
        },
        _ => return Err(SnapError::Corrupt("event tag out of range")),
    })
}

/// Builds the energy model matching a predictor's structure class.
pub fn energy_model_for(spec: &PredictorSpec) -> EnergyModel {
    match spec {
        PredictorSpec::None | PredictorSpec::Perfect => EnergyModel::paper_baseline(),
        PredictorSpec::Subset { .. } | PredictorSpec::Exact { .. } => {
            EnergyModel::with_cache_predictor()
        }
        PredictorSpec::Superset { .. } => EnergyModel::with_bloom_predictor(),
    }
}

#[cfg(test)]
mod rtt_tests {
    use super::RttEstimator;
    use flexsnoop_engine::Cycles;

    #[test]
    fn seeded_estimator_matches_static_order_of_slack() {
        // Fresh estimator: srtt = floor, rttvar = floor/4, so the first
        // window is floor + 4·(floor/4) = 2·floor — the same ~two
        // circulations of headroom the static slack hard-codes.
        let floor = Cycles(320);
        let e = RttEstimator::new(floor);
        assert_eq!(e.timeout(floor), Cycles(640));
    }

    #[test]
    fn estimate_never_undercuts_the_floor() {
        // Feed absurdly short samples (faster than the unloaded ring —
        // impossible physically, but the estimator must not trust them).
        let floor = Cycles(300);
        let mut e = RttEstimator::new(floor);
        for _ in 0..1_000 {
            e.sample(Cycles(1));
        }
        assert!(e.timeout(floor) >= floor, "estimate fell below physics");
    }

    #[test]
    fn congestion_raises_and_calm_lowers_the_estimate() {
        let floor = Cycles(300);
        let mut e = RttEstimator::new(floor);
        for _ in 0..64 {
            e.sample(Cycles(2_000));
        }
        let congested = e.timeout(floor);
        assert!(
            congested >= Cycles(2_000),
            "estimator ignored sustained congestion: {congested:?}"
        );
        for _ in 0..256 {
            e.sample(Cycles(320));
        }
        let calm = e.timeout(floor);
        assert!(calm < congested, "estimator never relaxed: {calm:?}");
        assert!(calm >= floor);
    }

    #[test]
    fn integer_arithmetic_is_exactly_reproducible() {
        let floor = Cycles(311);
        let mut a = RttEstimator::new(floor);
        let mut b = RttEstimator::new(floor);
        for i in 0..100u64 {
            let s = Cycles(250 + (i * 97) % 900);
            a.sample(s);
            b.sample(s);
        }
        assert_eq!(a.timeout(floor), b.timeout(floor));
    }
}
