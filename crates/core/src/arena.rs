//! A generational slab arena for in-flight transactions.
//!
//! The simulator touches its transaction table on nearly every event, and
//! the set of *live* transactions is small (bounded by cores × outstanding
//! misses) even though billions of ids are issued over a run. A
//! `HashMap<TxnId, Txn>` pays a hash + probe on every access and
//! reallocates buckets as the map churns; this slab instead indexes a
//! `Vec` directly with the slot packed into the [`TxnId`] (low 32 bits)
//! and recycles slots through a LIFO free list, so lookups are one bounds
//! check plus one generation compare.
//!
//! Generations make recycled slots safe: removing a transaction bumps the
//! slot's generation, so a stale id (same slot, older generation) can
//! never alias the transaction that later reuses the slot —
//! [`TxnArena::get`] simply returns `None` for it, exactly like a
//! `HashMap` lookup for a removed key.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter};

use crate::message::TxnId;

/// One arena slot: its current generation plus the value, if occupied.
#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab keyed by [`TxnId`].
///
/// Ids are issued by [`insert`](Self::insert) in a deterministic order
/// (the free list is LIFO, so replaying the same insert/remove sequence
/// yields the same ids — required for bit-identical simulations).
#[derive(Debug, Clone, Default)]
pub struct TxnArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> TxnArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TxnArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (inserted, not yet removed) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `value`, returning the id that now refers to it.
    ///
    /// Reuses the most recently freed slot if one exists (LIFO), keeping
    /// the slab as dense as the peak live population.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX` slots.
    #[inline]
    pub fn insert(&mut self, value: T) -> TxnId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let entry = &mut self.slots[slot as usize];
            debug_assert!(entry.value.is_none(), "free list pointed at a live slot");
            entry.value = Some(value);
            TxnId::from_parts(slot, entry.generation)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("txn arena overflow");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            TxnId::from_parts(slot, 0)
        }
    }

    /// Looks up a live entry; `None` if the id was removed (or never
    /// issued by this arena).
    #[inline]
    pub fn get(&self, id: TxnId) -> Option<&T> {
        let entry = self.slots.get(id.slot() as usize)?;
        if entry.generation != id.generation() {
            return None;
        }
        entry.value.as_ref()
    }

    /// Mutable lookup; `None` if the id was removed.
    #[inline]
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut T> {
        let entry = self.slots.get_mut(id.slot() as usize)?;
        if entry.generation != id.generation() {
            return None;
        }
        entry.value.as_mut()
    }

    /// Removes and returns the entry, freeing its slot for reuse.
    ///
    /// Removing an already-removed id is a no-op returning `None`, so
    /// idempotent cleanup paths need no extra liveness check.
    #[inline]
    pub fn remove(&mut self, id: TxnId) -> Option<T> {
        let entry = self.slots.get_mut(id.slot() as usize)?;
        if entry.generation != id.generation() {
            return None;
        }
        let value = entry.value.take()?;
        // Bump the generation so any stale copy of this id stops resolving.
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        Some(value)
    }

    /// Serializes the whole slab — every slot's generation, each live
    /// value through `enc`, and the free list *in order* — so a restored
    /// arena issues future ids in exactly the sequence the original would
    /// have (the LIFO free list is part of observable behavior).
    pub fn save_into_with(&self, w: &mut SnapWriter, mut enc: impl FnMut(&T, &mut SnapWriter)) {
        w.put_usize(self.slots.len());
        for slot in &self.slots {
            w.put_u32(slot.generation);
            w.put_bool(slot.value.is_some());
            if let Some(v) = &slot.value {
                enc(v, w);
            }
        }
        w.put_usize(self.free.len());
        for &f in &self.free {
            w.put_u32(f);
        }
    }

    /// Restores a slab serialized by
    /// [`save_into_with`](Self::save_into_with), decoding each live value
    /// through `dec`. Replaces this arena's entire contents.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if the stream is malformed or the free list
    /// is inconsistent with the slots (a free entry pointing at a live or
    /// out-of-range slot).
    pub fn restore_from_with(
        &mut self,
        r: &mut SnapReader<'_>,
        mut dec: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        let n_slots = r.get_usize()?;
        let mut slots = Vec::with_capacity(n_slots);
        let mut live = 0;
        for _ in 0..n_slots {
            let generation = r.get_u32()?;
            let value = if r.get_bool()? {
                live += 1;
                Some(dec(r)?)
            } else {
                None
            };
            slots.push(Slot { generation, value });
        }
        let n_free = r.get_usize()?;
        if n_free != n_slots - live {
            return Err(SnapError::Corrupt("free-list length disagrees with slots"));
        }
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let f = r.get_u32()?;
            match slots.get(f as usize) {
                Some(slot) if slot.value.is_none() => free.push(f),
                _ => return Err(SnapError::Corrupt("free list points at a live slot")),
            }
        }
        self.slots = slots;
        self.free = free;
        self.live = live;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let mut a = TxnArena::new();
        let id = a.insert("hello");
        assert_eq!(a.get(id), Some(&"hello"));
        assert_eq!(a.len(), 1);
        assert_eq!(id.slot(), 0);
        assert_eq!(id.generation(), 0);
    }

    #[test]
    fn remove_frees_and_stale_id_misses() {
        let mut a = TxnArena::new();
        let id = a.insert(7u32);
        assert_eq!(a.remove(id), Some(7));
        assert!(a.is_empty());
        // The stale id must not see whatever reuses the slot.
        let id2 = a.insert(8u32);
        assert_eq!(id2.slot(), id.slot(), "LIFO free list reuses the slot");
        assert_ne!(id2, id, "generation differs");
        assert_eq!(a.get(id), None);
        assert_eq!(a.get_mut(id), None);
        assert_eq!(a.remove(id), None, "double remove is a no-op");
        assert_eq!(a.get(id2), Some(&8));
    }

    #[test]
    fn lifo_reuse_is_deterministic() {
        let mut a = TxnArena::new();
        let ids: Vec<TxnId> = (0..4).map(|i| a.insert(i)).collect();
        a.remove(ids[1]);
        a.remove(ids[3]);
        // LIFO: slot 3 comes back first, then slot 1, then fresh slot 4.
        assert_eq!(a.insert(10).slot(), 3);
        assert_eq!(a.insert(11).slot(), 1);
        assert_eq!(a.insert(12).slot(), 4);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut a = TxnArena::new();
        let id = a.insert(vec![1, 2]);
        a.get_mut(id).unwrap().push(3);
        assert_eq!(a.get(id), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn unknown_slot_is_none() {
        let a: TxnArena<u8> = TxnArena::new();
        assert_eq!(a.get(TxnId::from_parts(5, 0)), None);
    }

    #[test]
    fn snapshot_round_trip_preserves_future_id_sequence() {
        let mut a = TxnArena::new();
        let ids: Vec<TxnId> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(ids[0]);
        a.remove(ids[2]);
        a.remove(ids[4]);

        let mut w = SnapWriter::new();
        a.save_into_with(&mut w, |v, w| w.put_u32(*v));
        let bytes = w.into_bytes();
        let mut b: TxnArena<u32> = TxnArena::new();
        let mut r = SnapReader::new(&bytes);
        b.restore_from_with(&mut r, |r| r.get_u32())
            .expect("restore");
        r.expect_eof().expect("clean end");

        assert_eq!(b.len(), a.len());
        assert_eq!(b.get(ids[1]), Some(&1));
        assert_eq!(b.get(ids[0]), None, "stale id stays stale");
        // Future ids must come out in the same order from both arenas.
        for _ in 0..6 {
            assert_eq!(a.insert(9), b.insert(9));
        }
    }

    #[test]
    fn snapshot_restore_rejects_corrupt_free_list() {
        let mut a = TxnArena::new();
        let id = a.insert(1u32);
        let mut w = SnapWriter::new();
        a.save_into_with(&mut w, |v, w| w.put_u32(*v));
        // Hand-craft a stream whose free list points at the live slot 0.
        let mut w2 = SnapWriter::new();
        w2.put_usize(1);
        w2.put_u32(id.generation());
        w2.put_bool(true);
        w2.put_u32(1);
        w2.put_usize(1); // free list of length 1 — but the only slot is live
        w2.put_u32(0);
        let bytes = w2.into_bytes();
        let mut b: TxnArena<u32> = TxnArena::new();
        let mut r = SnapReader::new(&bytes);
        assert!(b.restore_from_with(&mut r, |r| r.get_u32()).is_err());
    }

    #[test]
    fn id_round_trips_parts() {
        let id = TxnId::from_parts(0xdead_beef, 0x1234_5678);
        assert_eq!(id.slot(), 0xdead_beef);
        assert_eq!(id.generation(), 0x1234_5678);
    }
}
