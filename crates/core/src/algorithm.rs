//! The Flexible Snooping algorithms (paper §3–§4).
//!
//! On each snoop-request arrival a node's gateway consults its Supplier
//! Predictor and performs one of three primitives (Table 2):
//!
//! * [`SnoopAction::SnoopThenForward`] — snoop; then emit a single
//!   *combined request/reply* message.
//! * [`SnoopAction::ForwardThenSnoop`] — forward the request immediately;
//!   snoop in parallel; emit/merge a trailing *snoop reply*.
//! * [`SnoopAction::Forward`] — pass the message through without snooping
//!   (filtering).
//!
//! [`Algorithm`] maps each of the paper's seven evaluated algorithms (plus
//! the dynamic Con/Agg extension of §6.1.5) to its prediction-conditional
//! action, its default predictor, and its write-decoupling class (§5.3).

use std::fmt;

use flexsnoop_predictor::PredictorSpec;

/// The three primitive operations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopAction {
    /// Snoop the CMP, then send a combined request/reply.
    SnoopThenForward,
    /// Forward the request at once, snoop in parallel, reply trails.
    ForwardThenSnoop,
    /// Forward without snooping.
    Forward,
}

/// Governor for the dynamic Superset variant (extension of §6.1.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynPolicy {
    /// Always take the aggressive action (equivalent to Superset Agg).
    PerformanceFirst,
    /// Always take the conservative action (equivalent to Superset Con).
    EnergyFirst,
    /// Aggressive while measured snoop energy stays under the budget, in
    /// nanojoules per thousand cycles; conservative once it is exceeded.
    EnergyBudget(f64),
}

/// A snooping algorithm: how a node reacts to a read snoop request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Snoop at every node before forwarding (the §2.2 baseline).
    Lazy,
    /// Forward at every node before snooping (Barroso & Dubois).
    Eager,
    /// Unimplementable reference: snoop only at the supplier. Realized as
    /// Exact actions driven by a perfect predictor.
    Oracle,
    /// Subset predictor: positive → snoop-then-forward, negative →
    /// forward-then-snoop (never filters; no false positives to exploit).
    Subset,
    /// Superset predictor, conservative: positive → snoop-then-forward,
    /// negative → forward (filter).
    SupersetCon,
    /// Superset predictor, aggressive: positive → forward-then-snoop,
    /// negative → forward (filter).
    SupersetAgg,
    /// Exact predictor (downgrades): positive → snoop-then-forward,
    /// negative → forward.
    Exact,
    /// Extension: Superset predictor with the Con/Agg positive action
    /// chosen dynamically by a governor (paper §6.1.5 envisions this).
    SupersetDyn(DynPolicy),
}

impl Algorithm {
    /// The seven algorithms evaluated in the paper, in figure order.
    pub const PAPER_SET: [Algorithm; 7] = [
        Algorithm::Lazy,
        Algorithm::Eager,
        Algorithm::Oracle,
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ];

    /// The action a node takes for a read snoop request, given the
    /// predictor's answer. `energy_over_budget` only matters for the
    /// dynamic variant.
    pub fn action(&self, predicted_supplier: bool, energy_over_budget: bool) -> SnoopAction {
        use Algorithm::*;
        use SnoopAction::*;
        match (self, predicted_supplier) {
            (Lazy, _) => SnoopThenForward,
            (Eager, _) => ForwardThenSnoop,
            (Oracle, true) | (Exact, true) => SnoopThenForward,
            (Oracle, false) | (Exact, false) => Forward,
            (Subset, true) => SnoopThenForward,
            (Subset, false) => ForwardThenSnoop,
            (SupersetCon, true) => SnoopThenForward,
            (SupersetCon, false) => Forward,
            (SupersetAgg, true) => ForwardThenSnoop,
            (SupersetAgg, false) => Forward,
            (SupersetDyn(policy), true) => match policy {
                DynPolicy::PerformanceFirst => ForwardThenSnoop,
                DynPolicy::EnergyFirst => SnoopThenForward,
                DynPolicy::EnergyBudget(_) => {
                    if energy_over_budget {
                        SnoopThenForward
                    } else {
                        ForwardThenSnoop
                    }
                }
            },
            (SupersetDyn(_), false) => Forward,
        }
    }

    /// Whether this algorithm consults a Supplier Predictor at all.
    pub fn uses_predictor(&self) -> bool {
        !matches!(self, Algorithm::Lazy | Algorithm::Eager)
    }

    /// The predictor the paper pairs with this algorithm in §6.1
    /// (the 2K-entry configurations).
    pub fn default_predictor(&self) -> PredictorSpec {
        match self {
            Algorithm::Lazy | Algorithm::Eager => PredictorSpec::None,
            Algorithm::Oracle => PredictorSpec::Perfect,
            Algorithm::Subset => PredictorSpec::SUB2K,
            Algorithm::SupersetCon | Algorithm::SupersetAgg | Algorithm::SupersetDyn(_) => {
                PredictorSpec::SUP_Y2K
            }
            Algorithm::Exact => PredictorSpec::EXA2K,
        }
    }

    /// Whether a predictor spec is legal for this algorithm (the paper's
    /// taxonomy depends on the predictor's error class).
    pub fn accepts_predictor(&self, spec: &PredictorSpec) -> bool {
        match self {
            Algorithm::Lazy | Algorithm::Eager => matches!(spec, PredictorSpec::None),
            Algorithm::Oracle => matches!(spec, PredictorSpec::Perfect),
            Algorithm::Subset => {
                matches!(spec, PredictorSpec::Subset { .. } | PredictorSpec::Perfect)
            }
            Algorithm::SupersetCon | Algorithm::SupersetAgg | Algorithm::SupersetDyn(_) => {
                matches!(
                    spec,
                    PredictorSpec::Superset { .. } | PredictorSpec::Perfect
                )
            }
            Algorithm::Exact => {
                matches!(spec, PredictorSpec::Exact { .. } | PredictorSpec::Perfect)
            }
        }
    }

    /// Whether this algorithm decouples **write** snoop messages into
    /// request + reply for parallel invalidation (paper §5.3: the classes
    /// that decouple reads — Eager, Subset, Superset Agg — plus Oracle).
    pub fn decouples_writes(&self) -> bool {
        match self {
            Algorithm::Eager | Algorithm::Subset | Algorithm::SupersetAgg | Algorithm::Oracle => {
                true
            }
            Algorithm::Lazy | Algorithm::SupersetCon | Algorithm::Exact => false,
            // The dynamic variant spends most of its time in Agg mode;
            // the paper would build the decoupled datapath.
            Algorithm::SupersetDyn(_) => true,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Algorithm::Lazy => "Lazy",
            Algorithm::Eager => "Eager",
            Algorithm::Oracle => "Oracle",
            Algorithm::Subset => "Subset",
            Algorithm::SupersetCon => "SupersetCon",
            Algorithm::SupersetAgg => "SupersetAgg",
            Algorithm::Exact => "Exact",
            Algorithm::SupersetDyn(_) => "SupersetDyn",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::SnoopAction::*;
    use super::*;

    #[test]
    fn table3_actions() {
        // Paper Table 3, row by row.
        assert_eq!(Algorithm::Subset.action(true, false), SnoopThenForward);
        assert_eq!(Algorithm::Subset.action(false, false), ForwardThenSnoop);
        assert_eq!(Algorithm::SupersetCon.action(true, false), SnoopThenForward);
        assert_eq!(Algorithm::SupersetCon.action(false, false), Forward);
        assert_eq!(Algorithm::SupersetAgg.action(true, false), ForwardThenSnoop);
        assert_eq!(Algorithm::SupersetAgg.action(false, false), Forward);
        assert_eq!(Algorithm::Exact.action(true, false), SnoopThenForward);
        assert_eq!(Algorithm::Exact.action(false, false), Forward);
    }

    #[test]
    fn baselines_ignore_prediction() {
        for p in [true, false] {
            assert_eq!(Algorithm::Lazy.action(p, false), SnoopThenForward);
            assert_eq!(Algorithm::Eager.action(p, false), ForwardThenSnoop);
        }
    }

    #[test]
    fn oracle_mirrors_exact_with_perfect_prediction() {
        assert_eq!(Algorithm::Oracle.action(true, false), SnoopThenForward);
        assert_eq!(Algorithm::Oracle.action(false, false), Forward);
        assert!(Algorithm::Oracle.accepts_predictor(&PredictorSpec::Perfect));
        assert!(!Algorithm::Oracle.accepts_predictor(&PredictorSpec::SUB2K));
    }

    #[test]
    fn predictor_pairings_follow_the_taxonomy() {
        assert!(Algorithm::Subset.accepts_predictor(&PredictorSpec::SUB512));
        assert!(!Algorithm::Subset.accepts_predictor(&PredictorSpec::SUP_Y2K));
        assert!(Algorithm::SupersetCon.accepts_predictor(&PredictorSpec::SUP_N2K));
        assert!(!Algorithm::SupersetCon.accepts_predictor(&PredictorSpec::EXA2K));
        assert!(Algorithm::Exact.accepts_predictor(&PredictorSpec::EXA8K));
        assert!(Algorithm::Lazy.accepts_predictor(&PredictorSpec::None));
        assert!(!Algorithm::Lazy.accepts_predictor(&PredictorSpec::SUB2K));
    }

    #[test]
    fn default_predictors_are_the_2k_configs() {
        assert_eq!(Algorithm::Subset.default_predictor(), PredictorSpec::SUB2K);
        assert_eq!(
            Algorithm::SupersetAgg.default_predictor(),
            PredictorSpec::SUP_Y2K
        );
        assert_eq!(Algorithm::Exact.default_predictor(), PredictorSpec::EXA2K);
        assert_eq!(Algorithm::Lazy.default_predictor(), PredictorSpec::None);
    }

    #[test]
    fn write_decoupling_classes_match_section_5_3() {
        assert!(!Algorithm::Lazy.decouples_writes());
        assert!(!Algorithm::SupersetCon.decouples_writes());
        assert!(!Algorithm::Exact.decouples_writes());
        assert!(Algorithm::Eager.decouples_writes());
        assert!(Algorithm::Subset.decouples_writes());
        assert!(Algorithm::SupersetAgg.decouples_writes());
        assert!(Algorithm::Oracle.decouples_writes());
    }

    #[test]
    fn dynamic_variant_switches_on_budget() {
        let alg = Algorithm::SupersetDyn(DynPolicy::EnergyBudget(10.0));
        assert_eq!(alg.action(true, false), ForwardThenSnoop);
        assert_eq!(alg.action(true, true), SnoopThenForward);
        assert_eq!(alg.action(false, true), Forward);
        let perf = Algorithm::SupersetDyn(DynPolicy::PerformanceFirst);
        assert_eq!(perf.action(true, true), ForwardThenSnoop);
        let eco = Algorithm::SupersetDyn(DynPolicy::EnergyFirst);
        assert_eq!(eco.action(true, false), SnoopThenForward);
    }

    #[test]
    fn every_paper_algorithm_accepts_its_default() {
        for alg in Algorithm::PAPER_SET {
            assert!(
                alg.accepts_predictor(&alg.default_predictor()),
                "{alg} rejects its own default predictor"
            );
        }
    }
}
